//! # uplan-corpus — a persistent, TED-metric-indexed store of unified plans
//!
//! The paper's headline applications — plan-coverage-guided testing (QPG)
//! and cross-version / cross-DBMS plan analysis — all accumulate *large
//! populations* of plans and ask two questions of them: "have I seen this
//! exact plan?" and "have I seen anything *like* it?". This crate answers
//! both at campaign scale:
//!
//! * **Exact identity** is fingerprint dedup, shared with the rest of the
//!   workspace through [`uplan_core::fingerprint::FingerprintSet`] (the one
//!   "have I seen this plan?" implementation).
//! * **Similarity** is tree edit distance. TED with unit costs is a true
//!   metric, so each shard keeps its distinct plans in a
//!   [`bktree::BkTree`] and answers radius and k-nearest-neighbor queries
//!   with triangle-inequality pruning — a counted ~10–100× fewer TED
//!   evaluations than a brute-force scan at 10k plans (see the `corpus/*`
//!   benches and the scan-vs-index tests, which compare evaluation
//!   *counts*, not timings).
//! * **Scale** is sharding: a [`ShardedCorpus`] splits fingerprint space by
//!   prefix into independent `FingerprintSet` + BK-tree shards, so a
//!   fuzzing campaign's ingest fans out across threads without locks
//!   ([`ShardedCorpus::ingest_parallel`]) while queries fan out across
//!   shards and merge by distance. Ingest is *deterministic under
//!   parallelism*: any thread count produces byte-identical corpora,
//!   because shard routing is a pure function of the fingerprint and each
//!   shard sees its plans in stream order.
//! * **Persistence** is the versioned binary codec of
//!   [`uplan_core::formats::binary`] (one shared symbol table for the whole
//!   corpus) with a JSON-lines fallback for interchange; [`ShardedCorpus::load`]
//!   sniffs the magic bytes and accepts either. Version ≥ 2 documents can
//!   carry the BK-index topology ([`ShardedCorpus::save_indexed`]), in
//!   which case loading reconstructs the metric index with **zero** TED
//!   evaluations; v1 documents (and index-free ones) rebuild it. Saves
//!   default to the checksummed v3 layout, so a corrupted or truncated
//!   file fails *detectably* — and [`ShardedCorpus::load_salvage`]
//!   recovers the longest verified prefix of plans instead of losing the
//!   corpus, reporting exactly what was dropped ([`SalvageReport`]).
//!
//! The store is the substrate the testing loop observes plans through
//! (`uplan-testing`'s QPG), the `repro corpus` CLI manages, and
//! cross-version fleet work builds on. [`PlanCorpus`] is the historical
//! name and remains the alias everything else in the workspace uses.

pub mod bktree;
pub mod features;
pub mod query;
pub mod segment;
pub mod service;
mod shard;

use std::collections::{BinaryHeap, HashSet};
use std::path::Path;
use std::sync::{Arc, OnceLock};

use uplan_core::fingerprint::{fingerprint_with, Fingerprint, FingerprintOptions};
use uplan_core::formats::binary::{
    self, BinaryDecoder, BinaryEncoder, FeatureSection, IndexSection, ShardTopology, BINARY_MAGIC,
    MAX_INDEX_SHARDS,
};
use uplan_core::formats::unified;
use uplan_core::ted::{BoundedTed, TedPlan, TedScratch};
use uplan_core::{Error, Result, UnifiedPlan};

use features::{features_of, l1_distance, FeatureVector, FEATURE_DIM};
use shard::CorpusShard;

/// Global-registry handles for the store side of the corpus: how many
/// plans have been observed process-wide and how batched ingest spreads
/// them over shards.
struct CorpusMetrics {
    /// `uplan_corpus_observed_total` — plans offered to any corpus
    /// (novel or duplicate).
    observed: Arc<uplan_obs::Counter>,
    /// `uplan_corpus_shard_ingest_plans` — plans routed per non-empty
    /// shard per parallel ingest (the shard-balance distribution).
    shard_ingest: Arc<uplan_obs::Histogram>,
}

fn corpus_metrics() -> &'static CorpusMetrics {
    static METRICS: OnceLock<CorpusMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = uplan_obs::global();
        CorpusMetrics {
            observed: registry.counter(
                "uplan_corpus_observed_total",
                "plans offered to a corpus, novel or duplicate",
            ),
            shard_ingest: registry.histogram(
                "uplan_corpus_shard_ingest_plans",
                "plans routed to each non-empty shard per parallel ingest",
            ),
        }
    })
}

pub use query::{QueryError, QueryKind, QueryOutcome, QueryRequest, QueryResponse};
pub use segment::{
    segment_file, AppendReport, CompactReport, SegmentCensus, SegmentSalvageReport, SegmentStore,
    MANIFEST_FILE,
};
pub use service::{
    CorpusService, CorpusSnapshot, MergeReport, ServiceError, SnapshotReader,
    DEFAULT_PENDING_CAPACITY,
};

/// Default shard count of a corpus.
///
/// Sharding trades query evaluations for ingest parallelism: every shard
/// is one more BK root a fanned-out query must visit, so per-query TED
/// counts grow roughly linearly in the shard count while BK-phase ingest
/// scales up to it. Four keeps metric queries ≥10× cheaper than scans even
/// on small (1k-plan) populations — the tier-1 counted-evals gate — while
/// covering the thread counts of commodity CI runners. Campaigns on wider
/// machines can raise it per corpus ([`ShardedCorpus::with_shards`], CLI
/// `--shards`); the pruning ratio recovers with population size (~44× for
/// one shard at 10k plans).
pub const DEFAULT_SHARDS: usize = 4;

/// Result rows of a metric query: `(plan id, TED distance)`.
pub type Matches = Vec<(usize, u32)>;

/// A metric query's outcome, carrying the evaluation count the index is
/// judged by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricQuery {
    /// Matching plans as `(plan id, distance)`; radius queries sort by id,
    /// k-NN queries by ascending distance.
    pub matches: Matches,
    /// Number of tree-edit-distance evaluations *started* answering. The
    /// count is invariant under the early-exit kernel: a bounded
    /// evaluation that exits early still counts — which is what makes
    /// kernel-on and kernel-off traversals comparable eval-for-eval.
    pub ted_evals: u64,
    /// Of `ted_evals`, how many exited early (the bounded kernel proved
    /// distance > bound without finishing the dynamic program).
    /// `ted_evals - partial_evals` is the full-evaluation count approx
    /// mode is gated on.
    pub partial_evals: u64,
    /// Plans the approximate pre-filter shortlisted for exact re-ranking;
    /// zero for exact-mode queries (no pre-filter ran).
    pub candidates_considered: u64,
}

/// Aggregate corpus statistics (`repro corpus stats`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusStats {
    /// Plans observed by this corpus instance, including fingerprint
    /// duplicates (session-local — not persisted; a reloaded corpus
    /// reports `observed == distinct`).
    pub observed: u64,
    /// Distinct plans stored (fingerprint-deduplicated).
    pub distinct: usize,
    /// Observations that were fingerprint duplicates (session-local, see
    /// `observed`).
    pub duplicates: u64,
    /// Total operations across distinct plans.
    pub operations: usize,
    /// Deepest stored plan tree.
    pub max_depth: usize,
}

/// One near-duplicate cluster: a leader plan and the members within the
/// clustering radius of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Plan id of the cluster leader (the lowest unclaimed id at its turn).
    pub leader: usize,
    /// `(plan id, TED distance to leader)`, leader first at distance 0.
    pub members: Vec<(usize, u32)>,
}

/// What a lenient load ([`ShardedCorpus::load_salvage`]) recovered from a
/// possibly damaged corpus file (`repro corpus salvage`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// Plans the file declared: the binary header's plan count, or the
    /// number of non-empty lines of a JSONL file.
    pub declared: u64,
    /// Plans successfully decoded from the file.
    pub decoded: usize,
    /// Distinct plans stored (`decoded` minus fingerprint duplicates).
    pub recovered: usize,
    /// Declared plans lost to corruption or truncation.
    pub dropped: u64,
    /// `true` when every recovered plan came from CRC-verified bytes
    /// (binary v3); pre-checksum and JSONL recoveries are
    /// decodable-not-verified.
    pub verified: bool,
    /// Why recovery stopped early (first error, with position) — `None`
    /// for a file that was intact end to end.
    pub error: Option<String>,
    /// `true` when the metric index had to be rebuilt instead of adopted
    /// (always the case once any plan was dropped).
    pub index_rebuilt: bool,
}

/// Outcome of diffing two corpora (`repro corpus diff`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusDiff {
    /// The TED radius the `beyond_radius_*` rows were computed at.
    pub radius: u32,
    /// Distinct fingerprints present in both corpora.
    pub shared: usize,
    /// Left plan ids whose fingerprint is absent from the right corpus.
    pub fingerprint_only_left: Vec<usize>,
    /// Right plan ids whose fingerprint is absent from the left corpus.
    pub fingerprint_only_right: Vec<usize>,
    /// Of `fingerprint_only_left`, the ids with no right plan within
    /// `radius` — genuinely novel shapes, not near-duplicates.
    pub beyond_radius_left: Vec<usize>,
    /// Of `fingerprint_only_right`, the ids with no left plan within
    /// `radius`.
    pub beyond_radius_right: Vec<usize>,
}

/// The historical name of the corpus store; since the sharding rework it
/// *is* the sharded store (one shard behaves exactly like the old
/// single-tree corpus, and the default is [`DEFAULT_SHARDS`]).
pub type PlanCorpus = ShardedCorpus;

/// Which shard a fingerprint routes to: its top `bits` bits — the
/// "fingerprint prefix". A pure function of the fingerprint, which is what
/// makes routing reproducible across runs, thread counts and reloads.
fn shard_index(fp: Fingerprint, bits: u32) -> usize {
    if bits == 0 {
        0
    } else {
        (fp.0 >> (64 - bits)) as usize
    }
}

/// The index section's flags byte: the [`FingerprintOptions`] in the low
/// bits plus the fingerprint *scheme* version in the high bits — shard
/// routing depends on both, and the loader only adopts a persisted index
/// whose flags match its own. A future scheme bump therefore changes the
/// byte and old indexed corpora degrade to the rebuild path (they keep
/// loading) instead of hard-erroring on mismatched routing.
fn options_flags(options: FingerprintOptions) -> u8 {
    u8::from(options.strip_numeric_suffixes)
        | u8::from(options.include_configuration_keys) << 1
        | u8::from(options.include_configuration_values) << 2
        | (uplan_core::fingerprint::FINGERPRINT_SCHEME_VERSION as u8 & 0x1f) << 3
}

/// A fingerprint-deduplicated, BK-tree-indexed population of unified
/// plans, sharded by fingerprint prefix.
///
/// Dense global plan ids (`0..len()`) are assigned in observation order;
/// internally each plan lives in the shard its fingerprint prefix selects.
/// See the crate docs for the sharding, determinism and persistence
/// contracts.
#[derive(Debug, Clone)]
pub struct ShardedCorpus {
    options: FingerprintOptions,
    /// `shards.len() == 1 << shard_bits`.
    shards: Vec<CorpusShard>,
    shard_bits: u32,
    /// Global id → `(shard, local id)`.
    directory: Vec<(u32, u32)>,
    observed: u64,
    persisted_index: bool,
    /// Total operations across stored plans, maintained at store time so
    /// [`ShardedCorpus::stats`] never walks plan payloads (which would
    /// force a lazily opened corpus to decode everything).
    operations: usize,
    /// Deepest stored plan tree, maintained like `operations`.
    max_depth: usize,
    /// Per-segment pruning summaries when this corpus was opened from a
    /// [`segment::SegmentStore`] (empty otherwise). Segments cover a
    /// contiguous prefix of the global id space; ids past the covered
    /// prefix (appended after open) are always scanned.
    segment_hints: Vec<segment::SegmentHint>,
}

impl Default for ShardedCorpus {
    fn default() -> ShardedCorpus {
        ShardedCorpus::new()
    }
}

impl ShardedCorpus {
    /// An empty corpus with default fingerprint options and
    /// [`DEFAULT_SHARDS`] shards.
    pub fn new() -> ShardedCorpus {
        ShardedCorpus::with_options_and_shards(FingerprintOptions::default(), DEFAULT_SHARDS)
    }

    /// An empty corpus with explicit fingerprint options.
    pub fn with_options(options: FingerprintOptions) -> ShardedCorpus {
        ShardedCorpus::with_options_and_shards(options, DEFAULT_SHARDS)
    }

    /// An empty corpus with an explicit shard count (rounded up to a power
    /// of two, clamped to `1..=`[`MAX_INDEX_SHARDS`]). One shard reproduces
    /// the pre-sharding corpus exactly: a single dedup set and BK-tree.
    pub fn with_shards(shards: usize) -> ShardedCorpus {
        ShardedCorpus::with_options_and_shards(FingerprintOptions::default(), shards)
    }

    /// An empty corpus with explicit fingerprint options and shard count
    /// (rounded up to a power of two, clamped to `1..=`[`MAX_INDEX_SHARDS`]).
    pub fn with_options_and_shards(options: FingerprintOptions, shards: usize) -> ShardedCorpus {
        let shards = shards.clamp(1, MAX_INDEX_SHARDS).next_power_of_two();
        ShardedCorpus {
            options,
            shards: (0..shards)
                .map(|_| CorpusShard::with_options(options))
                .collect(),
            shard_bits: shards.trailing_zeros(),
            directory: Vec::new(),
            observed: 0,
            persisted_index: false,
            operations: 0,
            max_depth: 0,
            segment_hints: Vec::new(),
        }
    }

    /// The fingerprint options this corpus dedups and routes under.
    pub fn options(&self) -> FingerprintOptions {
        self.options
    }

    /// Number of fingerprint-prefix shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of distinct plans stored.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// `true` when no plan has been stored.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Total plans observed by *this corpus instance*, including
    /// fingerprint duplicates. Session-local: persistence stores only the
    /// distinct plan set, so a reloaded corpus restarts at
    /// `observed() == len()`.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Observations that were fingerprint duplicates of stored plans
    /// (session-local, like [`ShardedCorpus::observed`]).
    pub fn duplicates(&self) -> u64 {
        self.observed - self.directory.len() as u64
    }

    /// TED evaluations spent *building* the metric index so far (BK insert
    /// routing, summed over shards). Zero after a load that adopted a
    /// persisted index — the number `corpus/load_binary_indexed_10k` gates
    /// on.
    pub fn index_evals(&self) -> u64 {
        self.shards.iter().map(|s| s.index_evals).sum()
    }

    /// `true` when this corpus was loaded from a document whose persisted
    /// index was adopted (zero TED evaluations on load).
    pub fn has_persisted_index(&self) -> bool {
        self.persisted_index
    }

    /// The stored plan with the given id (ids are dense, `0..len()`).
    /// Decodes the payload on first touch when the corpus was opened
    /// lazily from a segment store.
    pub fn plan(&self, id: usize) -> &UnifiedPlan {
        let (shard, local) = self.directory[id];
        self.shards[shard as usize].store.plan(local as usize)
    }

    /// The pre-flattened TED view of the stored plan with the given id
    /// (lazy-decoding, like [`ShardedCorpus::plan`]).
    fn ted_of(&self, id: usize) -> &TedPlan {
        let (shard, local) = self.directory[id];
        self.shards[shard as usize].store.ted(local as usize)
    }

    /// Plans whose payload is actually decoded in memory. Equals
    /// [`ShardedCorpus::len`] for an ingested corpus; starts at zero for a
    /// lazily opened one and grows as queries touch plans.
    pub fn decoded_plans(&self) -> usize {
        self.shards.iter().map(|s| s.store.decoded()).sum()
    }

    /// The fingerprint of the stored plan with the given id.
    pub fn fingerprint(&self, id: usize) -> Fingerprint {
        let (shard, local) = self.directory[id];
        self.shards[shard as usize].fingerprints[local as usize]
    }

    /// Iterates over `(id, plan)` in insertion order (decoding lazy
    /// payloads as it goes).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &UnifiedPlan)> {
        self.directory
            .iter()
            .enumerate()
            .map(|(id, &(shard, local))| {
                (id, self.shards[shard as usize].store.plan(local as usize))
            })
    }

    /// Fingerprints a plan under this corpus's options (without recording
    /// it).
    pub fn fingerprint_of(&self, plan: &UnifiedPlan) -> Fingerprint {
        fingerprint_with(plan, self.options)
    }

    /// Whether a structurally equal plan (same fingerprint) is stored.
    pub fn contains(&self, plan: &UnifiedPlan) -> bool {
        self.contains_fingerprint(self.fingerprint_of(plan))
    }

    /// Whether a fingerprint is stored.
    pub fn contains_fingerprint(&self, fp: Fingerprint) -> bool {
        self.shards[shard_index(fp, self.shard_bits)]
            .dedup
            .contains_fingerprint(fp)
    }

    /// Claims a fingerprint in its shard's dedup set; `Some(shard)` when it
    /// was new.
    fn claim(&mut self, fp: Fingerprint) -> Option<usize> {
        let s = shard_index(fp, self.shard_bits);
        self.shards[s].dedup.insert(fp).then_some(s)
    }

    /// Stores a claimed plan, assigning the next dense global id.
    fn place(&mut self, s: usize, plan: UnifiedPlan, fp: Fingerprint) -> usize {
        self.operations += plan.operation_count();
        self.max_depth = self
            .max_depth
            .max(plan.root.as_ref().map_or(0, |r| r.depth()));
        let global = u32::try_from(self.directory.len()).expect("corpus overflow");
        let local = self.shards[s].store(plan, fp, global);
        self.directory.push((s as u32, local));
        global as usize
    }

    /// Observes a plan: stores it (cloning) when its fingerprint is new.
    /// Returns `true` for fingerprint-novel plans.
    pub fn observe(&mut self, plan: &UnifiedPlan) -> bool {
        self.observed += 1;
        corpus_metrics().observed.inc();
        let fp = self.fingerprint_of(plan);
        match self.claim(fp) {
            Some(s) => {
                self.place(s, plan.clone(), fp);
                true
            }
            None => false,
        }
    }

    /// Observes a plan with a *novelty radius*: the plan is stored whenever
    /// its fingerprint is new, but it only counts as novel when no stored
    /// plan lies within `radius` tree edits of it. Radius 0 degenerates to
    /// plain fingerprint novelty (a distance-0 twin is a different
    /// fingerprint spelling of the same tree).
    ///
    /// This is the QPG campaign primitive: "a new plan" becomes "a plan
    /// unlike anything seen", which stops near-duplicate plan shapes from
    /// resetting the mutation stall window.
    pub fn observe_novel(&mut self, plan: &UnifiedPlan, radius: u32) -> bool {
        self.observed += 1;
        let fp = self.fingerprint_of(plan);
        let Some(s) = self.claim(fp) else {
            return false;
        };
        let novel = radius == 0 || self.radius_query(plan, radius).matches.is_empty();
        self.place(s, plan.clone(), fp);
        novel
    }

    /// Inserts a plan by value; returns its id, or `None` if its
    /// fingerprint was already stored.
    pub fn insert(&mut self, plan: UnifiedPlan) -> Option<usize> {
        self.observed += 1;
        let fp = self.fingerprint_of(&plan);
        let s = self.claim(fp)?;
        Some(self.place(s, plan, fp))
    }

    /// Ingests a whole observation stream across `threads` worker threads
    /// (scoped, no pool), returning the number of fingerprint-novel plans
    /// stored. **Deterministic under parallelism**: for any thread count —
    /// including 1, and including a plain [`ShardedCorpus::observe`] loop —
    /// the resulting corpus is identical, byte for byte, because shard
    /// routing is a pure function of the fingerprint and every shard
    /// ingests its plans in stream order.
    ///
    /// Three phases: fingerprint the stream in parallel chunks; route
    /// stream positions to shards; let workers ingest whole shards
    /// (dedup + BK indexing, no locks — shards are independent). A final
    /// stream-order merge assigns the same dense global ids a sequential
    /// loop would have.
    pub fn ingest_parallel(&mut self, plans: &[UnifiedPlan], threads: usize) -> usize {
        self.observed += plans.len() as u64;
        corpus_metrics().observed.add(plans.len() as u64);
        if plans.is_empty() {
            return 0;
        }
        let threads = threads.clamp(1, plans.len());

        // Phase 1: fingerprints (each plan independent; chunk layout keeps
        // stream order).
        let options = self.options;
        let mut fps = vec![Fingerprint(0); plans.len()];
        let chunk = plans.len().div_ceil(threads);
        if threads == 1 {
            for (fp, plan) in fps.iter_mut().zip(plans) {
                *fp = fingerprint_with(plan, options);
            }
        } else {
            std::thread::scope(|scope| {
                for (dst, src) in fps.chunks_mut(chunk).zip(plans.chunks(chunk)) {
                    scope.spawn(move || {
                        for (fp, plan) in dst.iter_mut().zip(src) {
                            *fp = fingerprint_with(plan, options);
                        }
                    });
                }
            });
        }

        // Phase 2: route stream positions to shards, preserving stream
        // order within each shard — the determinism invariant.
        let mut work: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for (pos, fp) in fps.iter().enumerate() {
            work[shard_index(*fp, self.shard_bits)].push(pos as u32);
        }
        {
            let metrics = corpus_metrics();
            for routed in work.iter().filter(|routed| !routed.is_empty()) {
                metrics.shard_ingest.record(routed.len() as u64);
            }
        }

        // Phase 3: shard-local dedup + BK indexing, whole shards handed to
        // workers.
        struct Unit<'a> {
            shard_idx: u32,
            shard: &'a mut CorpusShard,
            work: Vec<u32>,
            /// `(stream position, local id)` of plans this shard admitted.
            novel: Vec<(u32, u32)>,
        }
        let mut units: Vec<Unit<'_>> = self
            .shards
            .iter_mut()
            .zip(work)
            .enumerate()
            .map(|(i, (shard, work))| Unit {
                shard_idx: i as u32,
                shard,
                work,
                novel: Vec::new(),
            })
            .collect();
        let per = units.len().div_ceil(threads);
        let fps = &fps;
        std::thread::scope(|scope| {
            for group in units.chunks_mut(per) {
                scope.spawn(move || {
                    for unit in group {
                        for &pos in &unit.work {
                            let fp = fps[pos as usize];
                            if !unit.shard.dedup.insert(fp) {
                                continue;
                            }
                            // Global id patched in the merge below.
                            let local = unit.shard.store(plans[pos as usize].clone(), fp, u32::MAX);
                            unit.novel.push((pos, local));
                        }
                    }
                });
            }
        });

        // Phase 4: stream-order merge — dense global ids identical to a
        // sequential observe() loop over the same stream.
        let mut admitted: Vec<(u32, u32, u32)> = units
            .iter_mut()
            .flat_map(|unit| {
                let shard_idx = unit.shard_idx;
                std::mem::take(&mut unit.novel)
                    .into_iter()
                    .map(move |(pos, local)| (pos, shard_idx, local))
            })
            .collect();
        drop(units);
        admitted.sort_unstable();
        let novel = admitted.len();
        for (_, shard_idx, local) in admitted {
            let global = u32::try_from(self.directory.len()).expect("corpus overflow");
            self.directory.push((shard_idx, local));
            let shard = &mut self.shards[shard_idx as usize];
            shard.globals[local as usize] = global;
            let plan = shard.store.plan(local as usize);
            let (ops, depth) = (
                plan.operation_count(),
                plan.root.as_ref().map_or(0, |r| r.depth()),
            );
            self.operations += ops;
            self.max_depth = self.max_depth.max(depth);
        }
        novel
    }

    /// Sequential radius query over every shard (the one radius traversal
    /// implementation — threaded and budgeted entry points all reach it).
    pub(crate) fn radius_query(&self, probe: &UnifiedPlan, radius: u32) -> MetricQuery {
        let (query, _) = self.radius_query_limited(probe, radius, u64::MAX);
        query
    }

    /// Radius query under a shared TED-evaluation budget spanning the
    /// whole shard fan-out. With `limit == u64::MAX` the walk and eval
    /// count are identical to the unbudgeted query. The `bool` reports
    /// whether the budget cut the traversal short (the matches are then a
    /// best-effort subset).
    pub(crate) fn radius_query_limited(
        &self,
        probe: &UnifiedPlan,
        radius: u32,
        limit: u64,
    ) -> (MetricQuery, bool) {
        let probe = TedPlan::new(probe);
        let mut scratch = TedScratch::default();
        let mut matches = Vec::new();
        let mut ted_evals = 0u64;
        let mut partial_evals = 0u64;
        let mut truncated = false;
        for shard in &self.shards {
            let store = &shard.store;
            let (m, evals, cut) = shard.index.within_radius_limited(
                radius,
                limit.saturating_sub(ted_evals),
                |other, bound| match probe.distance_bounded(
                    store.ted(other as usize),
                    bound as usize,
                    &mut scratch,
                ) {
                    BoundedTed::Exact(d) => Some(d as u32),
                    BoundedTed::Exceeded => {
                        partial_evals += 1;
                        None
                    }
                },
            );
            ted_evals += evals;
            matches.extend(
                m.into_iter()
                    .map(|(local, d)| (shard.globals[local as usize] as usize, d)),
            );
            if cut {
                truncated = true;
                break;
            }
        }
        matches.sort_unstable();
        (
            MetricQuery {
                matches,
                ted_evals,
                partial_evals,
                candidates_considered: 0,
            },
            truncated,
        )
    }

    /// [`ShardedCorpus::radius_query`] with the shard fan-out spread
    /// across `threads` scoped worker threads.
    ///
    /// The answer is *identical* to the sequential query — same matches
    /// **and** the same counted TED evaluations — because radius queries
    /// share no pruning bound between shards (each shard's BK walk is
    /// independent), so evaluating them concurrently changes nothing the
    /// counted-evals gate measures. `threads <= 1` takes the sequential
    /// path directly.
    pub(crate) fn radius_query_threaded(
        &self,
        probe: &UnifiedPlan,
        radius: u32,
        threads: usize,
    ) -> MetricQuery {
        let threads = threads.clamp(1, self.shards.len());
        if threads == 1 {
            return self.radius_query(probe, radius);
        }
        let chunk = self.shards.len().div_ceil(threads);
        let probe = TedPlan::new(probe);
        let probe = &probe;
        let mut matches = Vec::new();
        let mut ted_evals = 0u64;
        let mut partial_evals = 0u64;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .chunks(chunk)
                .map(|group| {
                    scope.spawn(move || {
                        let mut scratch = TedScratch::default();
                        let mut matches = Vec::new();
                        let mut evals = 0u64;
                        let mut partials = 0u64;
                        for shard in group {
                            let store = &shard.store;
                            let (m, e, _) = shard.index.within_radius_limited(
                                radius,
                                u64::MAX,
                                |other, bound| match probe.distance_bounded(
                                    store.ted(other as usize),
                                    bound as usize,
                                    &mut scratch,
                                ) {
                                    BoundedTed::Exact(d) => Some(d as u32),
                                    BoundedTed::Exceeded => {
                                        partials += 1;
                                        None
                                    }
                                },
                            );
                            evals += e;
                            matches.extend(
                                m.into_iter()
                                    .map(|(local, d)| (shard.globals[local as usize] as usize, d)),
                            );
                        }
                        (matches, evals, partials)
                    })
                })
                .collect();
            for handle in handles {
                let (m, e, p) = handle.join().expect("radius workers do not panic");
                matches.extend(m);
                ted_evals += e;
                partial_evals += p;
            }
        });
        matches.sort_unstable();
        MetricQuery {
            matches,
            ted_evals,
            partial_evals,
            candidates_considered: 0,
        }
    }

    /// The one k-NN implementation. The query fans out across shards
    /// *sharing one best-k heap*, so every shard after the first prunes
    /// against the bound its predecessors already tightened — a merged
    /// k-NN costs close to a single-tree one, not `shards ×` as much.
    /// Matches sort by ascending distance (then id).
    ///
    /// Public as the direct typed path (benches and the kernel-identity
    /// gates measure it without request plumbing); [`ShardedCorpus::execute`]
    /// is the canonical entry point for everything else.
    pub fn knn_query(&self, probe: &UnifiedPlan, k: usize) -> MetricQuery {
        let (query, _) = self.knn_query_limited(probe, k, u64::MAX);
        query
    }

    /// k-NN under a shared TED-evaluation budget spanning the whole shard
    /// fan-out. With `limit == u64::MAX` the walk and eval count are
    /// identical to the unbudgeted query. The `bool` reports whether the
    /// budget cut the descent short (the matches are then a best-effort
    /// prefix of the answer).
    pub(crate) fn knn_query_limited(
        &self,
        probe: &UnifiedPlan,
        k: usize,
        limit: u64,
    ) -> (MetricQuery, bool) {
        let probe = TedPlan::new(probe);
        let mut scratch = TedScratch::default();
        let mut best: BinaryHeap<(u32, u32)> = BinaryHeap::with_capacity(k + 1);
        let mut ted_evals = 0u64;
        let mut partial_evals = 0u64;
        let mut truncated = false;
        for shard in &self.shards {
            let store = &shard.store;
            let (evals, cut) = shard.index.nearest_into_limited(
                k,
                limit.saturating_sub(ted_evals),
                &mut best,
                |local| shard.globals[local as usize],
                |other, bound| match probe.distance_bounded(
                    store.ted(other as usize),
                    bound as usize,
                    &mut scratch,
                ) {
                    BoundedTed::Exact(d) => Some(d as u32),
                    BoundedTed::Exceeded => {
                        partial_evals += 1;
                        None
                    }
                },
            );
            ted_evals += evals;
            if cut {
                truncated = true;
                break;
            }
        }
        (
            MetricQuery {
                matches: best
                    .into_sorted_vec()
                    .into_iter()
                    .map(|(d, id)| (id as usize, d))
                    .collect(),
                ted_evals,
                partial_evals,
                candidates_considered: 0,
            },
            truncated,
        )
    }

    /// Approximate k-NN: the structural-feature pre-filter shortlists
    /// `candidates` plans by L1 vector distance ([`features`]), then exact
    /// TED re-ranks the shortlist — in ascending vector distance, so the
    /// running k-th-best bound tightens early and most re-rank
    /// evaluations exit partially. Recall against the exact path is
    /// measured (not guaranteed): ≥ 0.95 at the default candidate count on
    /// the 10k fixture, gated in CI, for roughly an order of magnitude
    /// fewer full TED evaluations.
    pub(crate) fn knn_query_approx(
        &self,
        probe: &UnifiedPlan,
        k: usize,
        candidates: usize,
    ) -> MetricQuery {
        let probe_features = features_of(probe);
        // Shortlist: the `candidates` smallest (vector distance, id) pairs
        // via a bounded max-heap — one L1 pass, no TED. When the corpus
        // carries segment hints, a whole segment is skipped once the
        // heap's worst keeper beats the segment's L1 lower bound
        // *strictly* — a tie could still displace a keeper with a larger
        // id, so ties always scan. The shortlist (and therefore the
        // query's answer and every cost counter) is identical with and
        // without hints; hints only skip work that provably cannot
        // change it.
        let mut shortlist: BinaryHeap<(u64, usize)> = BinaryHeap::with_capacity(candidates + 1);
        if candidates > 0 {
            let scan = |range: std::ops::Range<usize>, shortlist: &mut BinaryHeap<(u64, usize)>| {
                for id in range {
                    let (s, local) = self.directory[id];
                    let d = l1_distance(
                        &probe_features,
                        &self.shards[s as usize].features[local as usize],
                    );
                    shortlist.push((d, id));
                    if shortlist.len() > candidates {
                        shortlist.pop();
                    }
                }
            };
            let mut covered = 0usize;
            for hint in &self.segment_hints {
                debug_assert_eq!(hint.start, covered, "hints cover a contiguous prefix");
                if shortlist.len() >= candidates {
                    if let Some(&(worst, _)) = shortlist.peek() {
                        if hint.l1_lower_bound(&probe_features) > worst {
                            covered += hint.count;
                            continue;
                        }
                    }
                }
                scan(covered..covered + hint.count, &mut shortlist);
                covered += hint.count;
            }
            // Ids past the hinted prefix: plans appended since the lazy
            // open (or the whole corpus when there are no hints).
            scan(covered..self.directory.len(), &mut shortlist);
        }
        let shortlist = shortlist.into_sorted_vec();
        let candidates_considered = shortlist.len() as u64;
        // Re-rank: exact TED over the shortlist under the running k-th
        // best bound; beyond-bound candidates pay only a partial
        // evaluation.
        let probe = TedPlan::new(probe);
        let mut scratch = TedScratch::default();
        let mut best: BinaryHeap<(u32, u32)> = BinaryHeap::with_capacity(k + 1);
        let mut ted_evals = 0u64;
        let mut partial_evals = 0u64;
        for &(_, id) in &shortlist {
            if k == 0 {
                break;
            }
            // Unlike a BK traversal (where distances past the worst keeper
            // still decide which child edges open), a shortlist candidate
            // is useful *only* if it strictly improves the heap — ties at
            // the worst keeper change nothing. So once the heap is full the
            // bound is `worst - 1`, and every tie exits early too.
            let bound = match best.peek() {
                Some(&(worst, _)) if best.len() >= k => worst.saturating_sub(1),
                _ => u32::MAX,
            };
            ted_evals += 1;
            match probe.distance_bounded(self.ted_of(id), bound as usize, &mut scratch) {
                BoundedTed::Exact(d) => {
                    best.push((d as u32, id as u32));
                    if best.len() > k {
                        best.pop();
                    }
                }
                BoundedTed::Exceeded => partial_evals += 1,
            }
        }
        MetricQuery {
            matches: best
                .into_sorted_vec()
                .into_iter()
                .map(|(d, id)| (id as usize, d))
                .collect(),
            ted_evals,
            partial_evals,
            candidates_considered,
        }
    }

    /// Reference radius query with the early-exit kernel *disabled*: every
    /// evaluation runs the full dynamic program. Matches and
    /// [`MetricQuery::ted_evals`] are identical to
    /// [`QueryRequest::radius`](query::QueryRequest) execution — the
    /// kernel-on/off identity the tier-1 suite gates on — with
    /// `partial_evals` necessarily zero.
    pub fn radius_query_reference(&self, probe: &UnifiedPlan, radius: u32) -> MetricQuery {
        let probe = TedPlan::new(probe);
        let mut scratch = TedScratch::default();
        let mut matches = Vec::new();
        let mut ted_evals = 0u64;
        for shard in &self.shards {
            let store = &shard.store;
            let (m, evals, _) = shard
                .index
                .within_radius_limited(radius, u64::MAX, |other, _| {
                    Some(probe.distance(store.ted(other as usize), &mut scratch) as u32)
                });
            ted_evals += evals;
            matches.extend(
                m.into_iter()
                    .map(|(local, d)| (shard.globals[local as usize] as usize, d)),
            );
        }
        matches.sort_unstable();
        MetricQuery {
            matches,
            ted_evals,
            partial_evals: 0,
            candidates_considered: 0,
        }
    }

    /// Reference k-NN with the early-exit kernel *disabled* (the
    /// counterpart of [`ShardedCorpus::radius_query_reference`]).
    pub fn knn_query_reference(&self, probe: &UnifiedPlan, k: usize) -> MetricQuery {
        let probe = TedPlan::new(probe);
        let mut scratch = TedScratch::default();
        let mut best: BinaryHeap<(u32, u32)> = BinaryHeap::with_capacity(k + 1);
        let mut ted_evals = 0u64;
        for shard in &self.shards {
            let store = &shard.store;
            ted_evals += shard.index.nearest_into(
                k,
                &mut best,
                |local| shard.globals[local as usize],
                |other, _| Some(probe.distance(store.ted(other as usize), &mut scratch) as u32),
            );
        }
        MetricQuery {
            matches: best
                .into_sorted_vec()
                .into_iter()
                .map(|(d, id)| (id as usize, d))
                .collect(),
            ted_evals,
            partial_evals: 0,
            candidates_considered: 0,
        }
    }

    /// Brute-force reference for radius queries: a full TED scan. One
    /// evaluation per stored plan — the number the index's pruning is
    /// measured against.
    pub fn scan_within_radius(&self, probe: &UnifiedPlan, radius: u32) -> MetricQuery {
        let probe = TedPlan::new(probe);
        let mut scratch = TedScratch::default();
        let mut matches = Vec::new();
        for id in 0..self.directory.len() {
            let d = probe.distance(self.ted_of(id), &mut scratch) as u32;
            if d <= radius {
                matches.push((id, d));
            }
        }
        MetricQuery {
            matches,
            ted_evals: self.directory.len() as u64,
            partial_evals: 0,
            candidates_considered: 0,
        }
    }

    /// Brute-force reference for k-NN queries: same distance multiset, but
    /// where several plans tie at the k-th distance the two may keep
    /// different tied ids (the scan keeps the lowest; the index keeps
    /// whichever its pruning visited first).
    pub fn scan_nearest(&self, probe: &UnifiedPlan, k: usize) -> MetricQuery {
        let probe = TedPlan::new(probe);
        let mut scratch = TedScratch::default();
        let mut all: Vec<(u32, usize)> = (0..self.directory.len())
            .map(|id| (probe.distance(self.ted_of(id), &mut scratch) as u32, id))
            .collect();
        all.sort_unstable();
        all.truncate(k);
        MetricQuery {
            matches: all.into_iter().map(|(d, id)| (id, d)).collect(),
            ted_evals: self.directory.len() as u64,
            partial_evals: 0,
            candidates_considered: 0,
        }
    }

    /// Aggregate statistics. O(1): the operation and depth aggregates are
    /// maintained at store time (and summed from segment metadata on a
    /// lazy open), so this never touches plan payloads.
    pub fn stats(&self) -> CorpusStats {
        CorpusStats {
            observed: self.observed,
            distinct: self.directory.len(),
            duplicates: self.duplicates(),
            operations: self.operations,
            max_depth: self.max_depth,
        }
    }

    /// The one clustering implementation: greedy leader clustering with
    /// every leader's radius query fanned out across shards on `threads`
    /// worker threads. Same clusters for every thread count — the greedy
    /// pass is sequential over leaders, only each query's shard visits run
    /// concurrently. Returns `(clusters, ted_evals, partial_evals)`.
    ///
    /// Unlike fanning out a fresh threaded radius query per leader, the
    /// workers are spawned **once** and fed probes over channels, so a
    /// large corpus pays thread start-up per clustering run, not per
    /// query.
    pub(crate) fn cluster_query(&self, radius: u32, threads: usize) -> (Vec<Cluster>, u64, u64) {
        let threads = threads.clamp(1, self.shards.len());
        let mut ted_evals = 0u64;
        let mut partial_evals = 0u64;
        if threads == 1 {
            let clusters = self.greedy_clusters(|leader| {
                let q = self.radius_query(self.plan(leader), radius);
                ted_evals += q.ted_evals;
                partial_evals += q.partial_evals;
                q.matches
            });
            return (clusters, ted_evals, partial_evals);
        }
        use std::sync::mpsc;
        let chunk = self.shards.len().div_ceil(threads);
        let clusters = std::thread::scope(|scope| {
            let (result_tx, result_rx) = mpsc::channel::<(Matches, u64, u64)>();
            // Workers receive leader *ids* (resolving the probe plan
            // themselves), sidestepping a reference-typed channel.
            let probe_txs: Vec<mpsc::Sender<usize>> =
                self.shards
                    .chunks(chunk)
                    .map(|group| {
                        let (probe_tx, probe_rx) = mpsc::channel::<usize>();
                        let result_tx = result_tx.clone();
                        scope.spawn(move || {
                            // One long-lived worker per shard group: exits when
                            // the probe sender drops at the end of the run.
                            let mut scratch = TedScratch::default();
                            while let Ok(leader) = probe_rx.recv() {
                                let probe = self.ted_of(leader);
                                let mut matches: Matches = Vec::new();
                                let mut evals = 0u64;
                                let mut partials = 0u64;
                                for shard in group {
                                    let store = &shard.store;
                                    let (m, e, _) = shard.index.within_radius_limited(
                                        radius,
                                        u64::MAX,
                                        |other, bound| match probe.distance_bounded(
                                            store.ted(other as usize),
                                            bound as usize,
                                            &mut scratch,
                                        ) {
                                            BoundedTed::Exact(d) => Some(d as u32),
                                            BoundedTed::Exceeded => {
                                                partials += 1;
                                                None
                                            }
                                        },
                                    );
                                    evals += e;
                                    matches.extend(m.into_iter().map(|(local, d)| {
                                        (shard.globals[local as usize] as usize, d)
                                    }));
                                }
                                if result_tx.send((matches, evals, partials)).is_err() {
                                    return;
                                }
                            }
                        });
                        probe_tx
                    })
                    .collect();
            drop(result_tx);
            self.greedy_clusters(|leader| {
                for tx in &probe_txs {
                    tx.send(leader).expect("cluster workers outlive the run");
                }
                let mut matches: Matches = Vec::new();
                for _ in &probe_txs {
                    let (m, e, p) = result_rx.recv().expect("cluster worker result");
                    ted_evals += e;
                    partial_evals += p;
                    matches.extend(m);
                }
                matches.sort_unstable();
                matches
            })
        });
        (clusters, ted_evals, partial_evals)
    }

    /// The greedy pass over a radius-query oracle taking a leader plan id
    /// (the oracle must return matches sorted by plan id, like the query
    /// methods do).
    fn greedy_clusters(&self, mut query: impl FnMut(usize) -> Matches) -> Vec<Cluster> {
        let mut claimed = vec![false; self.directory.len()];
        let mut out = Vec::new();
        for leader in 0..self.directory.len() {
            if claimed[leader] {
                continue;
            }
            claimed[leader] = true;
            let mut members = vec![(leader, 0u32)];
            for (id, d) in query(leader) {
                if !claimed[id] {
                    claimed[id] = true;
                    members.push((id, d));
                }
            }
            out.push(Cluster { leader, members });
        }
        out
    }

    /// Diffs two corpora: exact differences by fingerprint, then — for the
    /// fingerprint-unique plans — whether a near-duplicate (within
    /// `radius`) exists on the other side.
    pub fn diff(&self, other: &ShardedCorpus, radius: u32) -> CorpusDiff {
        let shared = (0..self.len())
            .filter(|&id| other.contains_fingerprint(self.fingerprint(id)))
            .count();
        let unique = |a: &ShardedCorpus, b: &ShardedCorpus| -> (Vec<usize>, Vec<usize>) {
            let mut only = Vec::new();
            let mut beyond = Vec::new();
            for (id, plan) in a.iter() {
                if b.contains_fingerprint(a.fingerprint(id)) {
                    continue;
                }
                only.push(id);
                if b.radius_query(plan, radius).matches.is_empty() {
                    beyond.push(id);
                }
            }
            (only, beyond)
        };
        let (fingerprint_only_left, beyond_radius_left) = unique(self, other);
        let (fingerprint_only_right, beyond_radius_right) = unique(other, self);
        CorpusDiff {
            radius,
            shared,
            fingerprint_only_left,
            fingerprint_only_right,
            beyond_radius_left,
            beyond_radius_right,
        }
    }

    // -----------------------------------------------------------------------
    // Persistence
    // -----------------------------------------------------------------------

    fn encode_into(&self, mut enc: BinaryEncoder) -> Result<BinaryEncoder> {
        for (_, plan) in self.iter() {
            enc.push(plan)?;
        }
        Ok(enc)
    }

    fn index_section(&self) -> IndexSection {
        IndexSection {
            fingerprint_flags: options_flags(self.options),
            shards: self
                .shards
                .iter()
                .map(|s| ShardTopology {
                    nodes: s.len() as u64,
                    edges: s.index.edges(),
                })
                .collect(),
        }
    }

    fn feature_section(&self) -> FeatureSection {
        let mut values = Vec::with_capacity(self.directory.len() * FEATURE_DIM);
        for &(s, local) in &self.directory {
            values.extend_from_slice(&self.shards[s as usize].features[local as usize]);
        }
        FeatureSection {
            dim: FEATURE_DIM as u32,
            values,
        }
    }

    /// Serializes the distinct plans as one binary document (shared symbol
    /// table, see [`uplan_core::formats::binary`]) *without* the index
    /// section — loading rebuilds the BK-trees. Errors only when a stored
    /// plan exceeds the codec's depth limit.
    pub fn to_binary(&self) -> Result<Vec<u8>> {
        Ok(self.encode_into(BinaryEncoder::new())?.finish())
    }

    /// Serializes the distinct plans *plus* the BK-index topology (the
    /// UPLN index section: per shard, one parent edge with its cached TED
    /// per non-root node) *plus* the per-plan structural feature vectors
    /// (the UPLN v4 feature section), so [`ShardedCorpus::from_binary`]
    /// reconstructs the metric index with zero TED evaluations and adopts
    /// the approximate-query pre-filter without recomputing it. Writes the
    /// checksummed featured (v4) document version.
    pub fn to_binary_indexed(&self) -> Result<Vec<u8>> {
        Ok(self
            .encode_into(BinaryEncoder::new())?
            .finish_with_sections(&self.index_section(), &self.feature_section()))
    }

    /// [`ShardedCorpus::to_binary_indexed`] in the pre-checksum (v2)
    /// layout: byte-identical plan bodies, no CRC sections. Kept for
    /// interop with older readers and for measuring the checksum overhead
    /// over the same population (`corpus/load_binary_indexed_10k` vs
    /// `corpus/load_binary_checked_10k`); new corpora should prefer the
    /// checked default.
    pub fn to_binary_indexed_unchecked(&self) -> Result<Vec<u8>> {
        Ok(self
            .encode_into(BinaryEncoder::unchecked())?
            .finish_with_index(&self.index_section()))
    }

    /// Loads a corpus from a binary document, rebuilding dedup state and —
    /// when the document carries an index section written under the same
    /// fingerprint options — adopting the persisted BK topology with zero
    /// TED evaluations ([`ShardedCorpus::has_persisted_index`]). Index-free
    /// documents (v1, or v2 saved without [`ShardedCorpus::save_indexed`])
    /// rebuild the index. Only the distinct plan set is persisted, so the
    /// loaded corpus's session counters restart at `observed == len`.
    pub fn from_binary(bytes: &[u8]) -> Result<ShardedCorpus> {
        Self::from_binary_with_options(bytes, FingerprintOptions::default())
    }

    /// [`ShardedCorpus::from_binary`] with explicit fingerprint options. A
    /// persisted index written under *different* options is ignored (its
    /// shard routing would not match) and the index is rebuilt instead.
    pub fn from_binary_with_options(
        bytes: &[u8],
        options: FingerprintOptions,
    ) -> Result<ShardedCorpus> {
        let mut dec = BinaryDecoder::new(bytes)?;
        let mut plans = Vec::new();
        while let Some(plan) = dec.next_plan()? {
            plans.push(plan);
        }
        // A persisted feature section is adopted only at the exact width
        // this build computes; anything else (an older or newer layout) is
        // dropped and the vectors recompute at store time — it is a cache.
        let features = dec.take_features().and_then(|section| {
            let rows: Option<Vec<FeatureVector>> = (section.dim as usize == FEATURE_DIM
                && section.values.len() == plans.len() * FEATURE_DIM)
                .then(|| {
                    section
                        .values
                        .chunks_exact(FEATURE_DIM)
                        .map(|row| {
                            let mut v = [0u32; FEATURE_DIM];
                            v.copy_from_slice(row);
                            v
                        })
                        .collect()
                });
            rows
        });
        match dec.take_index() {
            Some(index) if index.fingerprint_flags == options_flags(options) => {
                Self::from_plans_indexed(plans, &index, features, options)
            }
            _ => {
                let mut corpus = ShardedCorpus::with_options(options);
                for plan in plans {
                    corpus.insert(plan);
                }
                Ok(corpus)
            }
        }
    }

    /// The indexed-load path: route every plan to its shard (fingerprints
    /// recomputed — cheap, no TED), then adopt each shard's persisted BK
    /// topology. Structural mismatches (populations that cannot be the
    /// ones the index was built over) are errors: a persisted index is
    /// trusted for distances but never for shape.
    fn from_plans_indexed(
        plans: Vec<UnifiedPlan>,
        index: &IndexSection,
        features: Option<Vec<FeatureVector>>,
        options: FingerprintOptions,
    ) -> Result<ShardedCorpus> {
        let shard_count = index.shards.len();
        if shard_count == 0 || !shard_count.is_power_of_two() {
            return Err(Error::Semantic(format!(
                "persisted index has a non-power-of-two shard count {shard_count}"
            )));
        }
        let mut corpus = ShardedCorpus::with_options_and_shards(options, shard_count);
        corpus.observed = plans.len() as u64;
        for (pos, plan) in plans.into_iter().enumerate() {
            let fp = fingerprint_with(&plan, options);
            let s = shard_index(fp, corpus.shard_bits);
            if !corpus.shards[s].dedup.insert(fp) {
                return Err(Error::Semantic(
                    "persisted index over a document with duplicate fingerprints".into(),
                ));
            }
            let global = u32::try_from(corpus.directory.len()).expect("corpus overflow");
            corpus.operations += plan.operation_count();
            corpus.max_depth = corpus
                .max_depth
                .max(plan.root.as_ref().map_or(0, |r| r.depth()));
            let row = features.as_ref().map(|rows| rows[pos]);
            let local = corpus.shards[s].store_with_features(plan, fp, global, row);
            corpus.directory.push((s as u32, local));
        }
        for (i, (shard, topology)) in corpus.shards.iter_mut().zip(&index.shards).enumerate() {
            if topology.nodes != shard.len() as u64 {
                return Err(Error::Semantic(format!(
                    "persisted index shard {i} covers {} items but {} plans route there",
                    topology.nodes,
                    shard.len()
                )));
            }
            shard
                .adopt_index(&topology.edges)
                .map_err(Error::Semantic)?;
        }
        corpus.persisted_index = true;
        Ok(corpus)
    }

    /// Lenient binary load: recovers the longest decodable prefix of a
    /// possibly corrupted or truncated document instead of failing
    /// wholesale (see [`uplan_core::formats::binary::salvage`]). Never
    /// errors — a hopeless file yields an empty corpus and a report
    /// saying why. When any plan was dropped (or index adoption failed)
    /// the metric index is rebuilt from the survivors.
    pub fn from_binary_salvage(bytes: &[u8]) -> (ShardedCorpus, SalvageReport) {
        Self::from_binary_salvage_with_options(bytes, FingerprintOptions::default())
    }

    /// [`ShardedCorpus::from_binary_salvage`] with explicit fingerprint
    /// options.
    pub fn from_binary_salvage_with_options(
        bytes: &[u8],
        options: FingerprintOptions,
    ) -> (ShardedCorpus, SalvageReport) {
        let outcome = binary::salvage(bytes);
        let declared = outcome.declared;
        let decoded = outcome.plans.len();
        let mut error = outcome.error.as_ref().map(ToString::to_string);
        if error.is_none() {
            // Intact document: take the strict path (adopting a persisted
            // index where possible). Falls through when the index section
            // is structurally unusable — the plans still salvage.
            match Self::from_binary_with_options(bytes, options) {
                Ok(corpus) => {
                    let report = SalvageReport {
                        declared,
                        decoded,
                        recovered: corpus.len(),
                        dropped: 0,
                        verified: outcome.verified,
                        error: None,
                        index_rebuilt: !corpus.has_persisted_index(),
                    };
                    return (corpus, report);
                }
                Err(e) => error = Some(e.to_string()),
            }
        }
        let mut corpus = ShardedCorpus::with_options(options);
        for plan in outcome.plans {
            corpus.insert(plan);
        }
        let report = SalvageReport {
            declared,
            decoded,
            recovered: corpus.len(),
            dropped: declared.saturating_sub(decoded as u64),
            verified: outcome.verified,
            error,
            index_rebuilt: !corpus.is_empty(),
        };
        (corpus, report)
    }

    /// Lenient JSON-lines load: skips unparseable lines instead of
    /// aborting, reporting how many were dropped and the first failure.
    pub fn from_jsonl_salvage_with_options(
        text: &str,
        options: FingerprintOptions,
    ) -> (ShardedCorpus, SalvageReport) {
        let mut corpus = ShardedCorpus::with_options(options);
        let mut declared = 0u64;
        let mut decoded = 0usize;
        let mut error = None;
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            declared += 1;
            match unified::from_json(line) {
                Ok(plan) => {
                    decoded += 1;
                    corpus.insert(plan);
                }
                Err(e) => {
                    if error.is_none() {
                        error = Some(format!("line {}: {e}", number + 1));
                    }
                }
            }
        }
        let report = SalvageReport {
            declared,
            decoded,
            recovered: corpus.len(),
            dropped: declared - decoded as u64,
            verified: false,
            error,
            index_rebuilt: !corpus.is_empty(),
        };
        (corpus, report)
    }

    /// Lenient counterpart of [`ShardedCorpus::load`]: sniffs the format
    /// and recovers what it can from a damaged file. Errors only when the
    /// file cannot be read at all (an *operational* failure, distinct from
    /// corrupt contents, which always salvage — possibly to zero plans).
    pub fn load_salvage(path: impl AsRef<Path>) -> Result<(ShardedCorpus, SalvageReport)> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| {
            Error::Semantic(format!("cannot read {}: {e}", path.as_ref().display()))
        })?;
        if bytes.starts_with(&BINARY_MAGIC) {
            return Ok(Self::from_binary_salvage(&bytes));
        }
        // Not a binary document: treat as JSONL, decoding lossily so a
        // stretch of non-UTF-8 garbage costs its lines, not the file.
        let text = String::from_utf8_lossy(&bytes);
        Ok(Self::from_jsonl_salvage_with_options(
            &text,
            FingerprintOptions::default(),
        ))
    }

    /// Serializes the distinct plans as JSON lines (one compact unified
    /// JSON document per line) — the interchange form (no index section).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (_, plan) in self.iter() {
            out.push_str(&unified::to_json_value(plan).to_compact());
            out.push('\n');
        }
        out
    }

    /// Loads a corpus from JSON lines.
    pub fn from_jsonl(text: &str) -> Result<ShardedCorpus> {
        Self::from_jsonl_with_options(text, FingerprintOptions::default())
    }

    /// [`ShardedCorpus::from_jsonl`] with explicit fingerprint options.
    pub fn from_jsonl_with_options(
        text: &str,
        options: FingerprintOptions,
    ) -> Result<ShardedCorpus> {
        let mut corpus = ShardedCorpus::with_options(options);
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            corpus.insert(unified::from_json(line)?);
        }
        Ok(corpus)
    }

    /// Writes the corpus to `path` in binary form without an index
    /// section (the index is rebuilt on load).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        Self::write(path, self.to_binary()?)
    }

    /// Writes the corpus to `path` in binary form *with* the persisted
    /// BK-index, making the next load index-free (zero TED evaluations).
    pub fn save_indexed(&self, path: impl AsRef<Path>) -> Result<()> {
        Self::write(path, self.to_binary_indexed()?)
    }

    fn write(path: impl AsRef<Path>, bytes: Vec<u8>) -> Result<()> {
        std::fs::write(path.as_ref(), bytes)
            .map_err(|e| Error::Semantic(format!("cannot write {}: {e}", path.as_ref().display())))
    }

    /// Reads a corpus from `path`, sniffing the format: a directory opens
    /// as a lazy [`segment::SegmentStore`], the binary magic selects the
    /// binary codec (adopting a persisted index when present), anything
    /// else parses as JSON lines.
    pub fn load(path: impl AsRef<Path>) -> Result<ShardedCorpus> {
        if path.as_ref().is_dir() {
            return Ok(segment::SegmentStore::open(path.as_ref())?.into_corpus());
        }
        let bytes = std::fs::read(path.as_ref()).map_err(|e| {
            Error::Semantic(format!("cannot read {}: {e}", path.as_ref().display()))
        })?;
        if bytes.starts_with(&BINARY_MAGIC) {
            return Self::from_binary(&bytes);
        }
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| Error::Semantic("corpus file is neither binary nor UTF-8 JSONL".into()))?;
        Self::from_jsonl(text)
    }

    /// Distinct fingerprints as a set (cross-corpus bookkeeping).
    pub fn fingerprint_set(&self) -> HashSet<Fingerprint> {
        self.shards
            .iter()
            .flat_map(|s| s.fingerprints.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uplan_core::{PlanNode, Property};

    fn chain(names: &[&str]) -> UnifiedPlan {
        let mut node: Option<PlanNode> = None;
        for name in names.iter().rev() {
            let mut n = PlanNode::producer(*name);
            if let Some(child) = node.take() {
                n = PlanNode::executor(*name).with_child(child);
            }
            node = Some(n);
        }
        UnifiedPlan::with_root(node.unwrap())
    }

    fn population() -> Vec<UnifiedPlan> {
        vec![
            chain(&["Scan_A"]),
            chain(&["Gather", "Scan_A"]),
            chain(&["Gather", "Scan_B"]),
            chain(&["Gather", "Sort", "Scan_A"]),
            chain(&["Collect", "Sort", "Scan_B"]),
            chain(&["Collect", "Sort", "Hash", "Scan_B"]),
        ]
    }

    /// A wider synthetic population: every subset of wrappers over every
    /// scan — enough distinct fingerprints to hit many shards.
    fn wide_population(n: usize) -> Vec<UnifiedPlan> {
        let wrappers = ["Gather", "Collect", "Exchange", "Sort", "Hash", "Top_N"];
        // Distinct base names, not `Scan_<i>`: fingerprints hash the
        // suffix-stripped stable form, so numeric suffixes would collide.
        let scans = [
            "Seq_Scan",
            "Index_Scan",
            "Bitmap_Scan",
            "Sample_Scan",
            "Range_Scan",
            "Cluster_Scan",
            "Backward_Scan",
        ];
        (0..n)
            .map(|i| {
                let mut names = vec![scans[i % 7].to_string()];
                let mut bits = i / 7;
                for w in wrappers {
                    if bits & 1 == 1 {
                        names.insert(0, w.to_string());
                    }
                    bits >>= 1;
                }
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                chain(&refs)
            })
            .collect()
    }

    #[test]
    fn observe_dedups_by_fingerprint() {
        let mut corpus = PlanCorpus::new();
        let plan = chain(&["Gather", "Scan_A"]);
        assert!(corpus.observe(&plan));
        assert!(!corpus.observe(&plan));
        assert!(corpus.contains(&plan));
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus.observed(), 2);
        assert_eq!(corpus.duplicates(), 1);
        assert_eq!(corpus.fingerprint(0), corpus.fingerprint_of(&plan));
    }

    #[test]
    fn radius_and_knn_agree_with_scans() {
        let mut corpus = PlanCorpus::new();
        for plan in population() {
            corpus.insert(plan);
        }
        for probe in population() {
            for radius in 0..5u32 {
                let indexed = corpus.radius_query(&probe, radius);
                let scanned = corpus.scan_within_radius(&probe, radius);
                assert_eq!(indexed.matches, scanned.matches, "radius {radius}");
                assert!(indexed.ted_evals <= scanned.ted_evals);
            }
            for k in 1..=corpus.len() {
                let indexed = corpus.knn_query(&probe, k);
                let scanned = corpus.scan_nearest(&probe, k);
                let d = |q: &MetricQuery| q.matches.iter().map(|&(_, d)| d).collect::<Vec<_>>();
                assert_eq!(d(&indexed), d(&scanned), "k {k}");
            }
        }
    }

    #[test]
    fn sharded_queries_agree_with_single_shard_and_scans() {
        // The sharded index must answer exactly like one big tree, for
        // every shard count.
        let plans = wide_population(160);
        for shards in [1usize, 4, 16, 64] {
            let mut corpus = ShardedCorpus::with_shards(shards);
            assert_eq!(corpus.shard_count(), shards);
            for plan in &plans {
                corpus.observe(plan);
            }
            for probe in plans.iter().step_by(13) {
                for radius in [0u32, 1, 3] {
                    assert_eq!(
                        corpus.radius_query(probe, radius).matches,
                        corpus.scan_within_radius(probe, radius).matches,
                        "shards {shards} radius {radius}"
                    );
                }
                let d = |q: &MetricQuery| q.matches.iter().map(|&(_, d)| d).collect::<Vec<_>>();
                for k in [1usize, 5, 20] {
                    assert_eq!(
                        d(&corpus.knn_query(probe, k)),
                        d(&corpus.scan_nearest(probe, k)),
                        "shards {shards} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_ingest_is_deterministic_across_thread_counts() {
        // The acceptance bar: any thread count — and the sequential
        // observe() loop — produces byte-identical corpora.
        let mut stream = wide_population(300);
        // Duplicates in the stream, like a real campaign.
        let dupes: Vec<UnifiedPlan> = stream.iter().step_by(3).cloned().collect();
        stream.extend(dupes);

        let mut sequential = ShardedCorpus::new();
        for plan in &stream {
            sequential.observe(plan);
        }
        let reference_bytes = sequential.to_binary_indexed().unwrap();
        let reference_stats = sequential.stats();

        for threads in [1usize, 2, 4, 7] {
            let mut corpus = ShardedCorpus::new();
            let novel = corpus.ingest_parallel(&stream, threads);
            assert_eq!(novel, sequential.len(), "threads {threads}");
            assert_eq!(corpus.stats(), reference_stats, "threads {threads}");
            assert_eq!(
                corpus.to_binary_indexed().unwrap(),
                reference_bytes,
                "threads {threads}: corpus bytes diverged"
            );
            assert_eq!(corpus.index_evals(), sequential.index_evals());
        }

        // Ingest into a *non-empty* corpus stays deterministic too.
        let mut warm_seq = ShardedCorpus::new();
        warm_seq.ingest_parallel(&stream[..100], 1);
        for plan in &stream[100..] {
            warm_seq.observe(plan);
        }
        let mut warm_par = ShardedCorpus::new();
        warm_par.ingest_parallel(&stream[..100], 3);
        warm_par.ingest_parallel(&stream[100..], 4);
        assert_eq!(
            warm_par.to_binary_indexed().unwrap(),
            warm_seq.to_binary_indexed().unwrap()
        );
    }

    #[test]
    fn threaded_radius_fanout_changes_neither_matches_nor_counted_evals() {
        // The counted-evals gate of the parallel fan-out: for every thread
        // count, the threaded query is *equal* to the sequential one —
        // including the TED evaluation count the BK-tree is judged by.
        let plans = wide_population(200);
        for shards in [1usize, 4, 16] {
            let mut corpus = ShardedCorpus::with_shards(shards);
            for plan in &plans {
                corpus.observe(plan);
            }
            for probe in plans.iter().step_by(17) {
                for radius in [0u32, 1, 3] {
                    let sequential = corpus.radius_query(probe, radius);
                    for threads in [1usize, 2, 4, 7, 32] {
                        assert_eq!(
                            corpus.radius_query_threaded(probe, radius, threads),
                            sequential,
                            "shards {shards} radius {radius} threads {threads}"
                        );
                    }
                }
            }
            assert_eq!(
                corpus.cluster_query(2, 4),
                corpus.cluster_query(2, 1),
                "shards {shards}"
            );
        }
    }

    #[test]
    fn observe_novel_with_radius_suppresses_near_duplicates() {
        let mut corpus = PlanCorpus::new();
        assert!(corpus.observe_novel(&chain(&["Gather", "Scan_A"]), 1));
        // One edit away: stored (distinct fingerprint) but not novel.
        assert!(!corpus.observe_novel(&chain(&["Gather", "Scan_B"]), 1));
        assert_eq!(corpus.len(), 2);
        // Far away: novel again.
        assert!(corpus.observe_novel(&chain(&["Collect", "Sort", "Hash", "Scan_B"]), 1));
        // Radius 0 behaves like plain fingerprint novelty.
        assert!(corpus.observe_novel(&chain(&["Gather", "Sort", "Scan_A"]), 0));
        assert!(!corpus.observe_novel(&chain(&["Gather", "Sort", "Scan_A"]), 0));
    }

    #[test]
    fn clusters_partition_the_corpus() {
        let mut corpus = PlanCorpus::new();
        for plan in population() {
            corpus.insert(plan);
        }
        let clusters = corpus.cluster_query(1, 1).0;
        let mut seen: Vec<usize> = clusters
            .iter()
            .flat_map(|c| c.members.iter().map(|&(id, _)| id))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..corpus.len()).collect::<Vec<_>>());
        for c in &clusters {
            assert_eq!(c.members[0], (c.leader, 0));
            assert!(c.members.iter().all(|&(_, d)| d <= 1));
        }
        // Radius large enough: one cluster.
        assert_eq!(corpus.cluster_query(100, 1).0.len(), 1);
    }

    #[test]
    fn diff_reports_fingerprint_and_radius_novelty() {
        let mut left = PlanCorpus::new();
        let mut right = PlanCorpus::new();
        for plan in population() {
            left.insert(plan);
        }
        // Right shares two plans, has one near-duplicate and one far shape.
        right.insert(chain(&["Scan_A"]));
        right.insert(chain(&["Gather", "Scan_A"]));
        right.insert(chain(&["Gather", "Scan_C"])); // 1 edit from left id 1/2
        right.insert(chain(&["Union", "Union", "Union", "Union", "Union_Leaf"]));
        let diff = left.diff(&right, 1);
        assert_eq!(diff.shared, 2);
        assert_eq!(diff.fingerprint_only_left.len(), left.len() - 2);
        assert_eq!(diff.fingerprint_only_right, vec![2, 3]);
        assert_eq!(diff.beyond_radius_right, vec![3]);
        assert!(diff.beyond_radius_left.contains(&5));
    }

    #[test]
    fn binary_and_jsonl_round_trips_preserve_identity() {
        let mut corpus = PlanCorpus::new();
        for plan in population() {
            corpus.insert(plan);
        }
        corpus.insert(UnifiedPlan::properties_only(vec![Property::cardinality(
            "series", 4,
        )]));

        let bin = PlanCorpus::from_binary(&corpus.to_binary().unwrap()).unwrap();
        assert_eq!(bin.len(), corpus.len());
        assert!(!bin.has_persisted_index());
        let jsonl = PlanCorpus::from_jsonl(&corpus.to_jsonl()).unwrap();
        assert_eq!(jsonl.len(), corpus.len());
        for (id, plan) in corpus.iter() {
            assert_eq!(bin.plan(id), plan);
            assert_eq!(jsonl.plan(id), plan);
            assert_eq!(bin.fingerprint(id), corpus.fingerprint(id));
            assert_eq!(jsonl.fingerprint(id), corpus.fingerprint(id));
        }
    }

    #[test]
    fn indexed_round_trip_adopts_the_index_with_zero_ted_evals() {
        let mut corpus = PlanCorpus::new();
        for plan in wide_population(120) {
            corpus.insert(plan);
        }
        assert!(corpus.index_evals() > 0, "building the index costs TED");

        let bytes = corpus.to_binary_indexed().unwrap();
        let loaded = PlanCorpus::from_binary(&bytes).unwrap();
        // The headline contract: not one TED evaluation spent loading.
        assert_eq!(loaded.index_evals(), 0);
        assert!(loaded.has_persisted_index());
        assert_eq!(loaded.len(), corpus.len());
        assert_eq!(loaded.observed(), corpus.len() as u64);
        assert_eq!(loaded.shard_count(), corpus.shard_count());
        for (id, plan) in corpus.iter() {
            assert_eq!(loaded.plan(id), plan);
            assert_eq!(loaded.fingerprint(id), corpus.fingerprint(id));
        }
        // And the adopted index answers exactly like the built one —
        // matches *and* evaluation counts.
        for probe in wide_population(120).iter().step_by(17) {
            let a = corpus.radius_query(probe, 2);
            let b = loaded.radius_query(probe, 2);
            assert_eq!(a, b);
            let a = corpus.knn_query(probe, 5);
            let b = loaded.knn_query(probe, 5);
            assert_eq!(a, b);
        }
        // Saving the loaded corpus reproduces the document byte for byte.
        assert_eq!(loaded.to_binary_indexed().unwrap(), bytes);
    }

    #[test]
    fn foreign_option_indexes_are_ignored_not_trusted() {
        // An index persisted under different fingerprint options routes
        // differently; the loader must fall back to rebuilding, not adopt
        // a wrong topology.
        let mut corpus = PlanCorpus::new();
        for plan in population() {
            corpus.insert(plan);
        }
        let bytes = corpus.to_binary_indexed().unwrap();
        let strict = FingerprintOptions {
            include_configuration_keys: false,
            ..FingerprintOptions::default()
        };
        let loaded = PlanCorpus::from_binary_with_options(&bytes, strict).unwrap();
        assert!(!loaded.has_persisted_index());
        assert_eq!(loaded.len(), corpus.len());
        assert_eq!(loaded.options(), strict);
    }

    #[test]
    fn corrupted_index_sections_error_rather_than_misanswer() {
        let mut corpus = PlanCorpus::new();
        for plan in population() {
            corpus.insert(plan);
        }
        let good = corpus.to_binary_indexed().unwrap();
        // Find the index flag: it is the first byte of the trailing
        // section; corrupt a shard's node count right after the flags
        // byte + shard count varint so populations mismatch. Rather than
        // byte-surgery, rewrite the section wholesale through the encoder.
        let mut enc = BinaryEncoder::new();
        for (_, plan) in corpus.iter() {
            enc.push(plan).unwrap();
        }
        let mut shards: Vec<ShardTopology> = corpus
            .shards
            .iter()
            .map(|s| ShardTopology {
                nodes: s.len() as u64,
                edges: s.index.edges(),
            })
            .collect();
        // Swap two non-equal node counts: totals still match the plan
        // count, but per-shard populations cannot.
        let (a, b) = {
            let mut it = (0..shards.len()).filter(|&i| shards[i].nodes != shards[0].nodes);
            (0, it.next().unwrap())
        };
        shards.swap(a, b);
        let bad = enc.finish_with_index(&IndexSection {
            fingerprint_flags: options_flags(corpus.options()),
            shards,
        });
        let err = PlanCorpus::from_binary(&bad).unwrap_err();
        assert!(err.to_string().contains("persisted index"), "{err}");
        assert!(PlanCorpus::from_binary(&good).is_ok());
    }

    #[test]
    fn load_sniffs_binary_and_jsonl() {
        let dir = std::env::temp_dir();
        let mut corpus = PlanCorpus::new();
        for plan in population() {
            corpus.insert(plan);
        }
        // Process-unique names: concurrent test runs must not collide.
        let pid = std::process::id();
        let bin_path = dir.join(format!("uplan_corpus_test_{pid}.uplanc"));
        corpus.save_indexed(&bin_path).unwrap();
        let loaded = PlanCorpus::load(&bin_path).unwrap();
        assert_eq!(loaded.len(), corpus.len());
        assert!(loaded.has_persisted_index());
        let plain_path = dir.join(format!("uplan_corpus_test_plain_{pid}.uplanc"));
        corpus.save(&plain_path).unwrap();
        assert!(!PlanCorpus::load(&plain_path).unwrap().has_persisted_index());
        let jsonl_path = dir.join(format!("uplan_corpus_test_{pid}.jsonl"));
        std::fs::write(&jsonl_path, corpus.to_jsonl()).unwrap();
        assert_eq!(PlanCorpus::load(&jsonl_path).unwrap().len(), corpus.len());
        std::fs::remove_file(bin_path).ok();
        std::fs::remove_file(plain_path).ok();
        std::fs::remove_file(jsonl_path).ok();
        assert!(PlanCorpus::load(dir.join("definitely_missing.uplanc")).is_err());
    }

    #[test]
    fn stats_summarize_population() {
        let mut corpus = PlanCorpus::new();
        for plan in population() {
            corpus.insert(plan.clone());
            corpus.observe(&plan);
        }
        let stats = corpus.stats();
        assert_eq!(stats.distinct, 6);
        assert_eq!(stats.observed, 12);
        assert_eq!(stats.duplicates, 6);
        assert_eq!(stats.operations, 1 + 2 + 2 + 3 + 3 + 4);
        assert_eq!(stats.max_depth, 4);
    }

    #[test]
    fn salvage_load_recovers_the_verified_prefix() {
        let mut corpus = PlanCorpus::new();
        for plan in wide_population(300) {
            corpus.insert(plan);
        }
        let bytes = corpus.to_binary_indexed().unwrap();

        // Intact file: salvage is exactly a strict load.
        let (intact, report) = PlanCorpus::from_binary_salvage(&bytes);
        assert_eq!(intact.len(), 300);
        assert_eq!(report.recovered, 300);
        assert_eq!(report.dropped, 0);
        assert!(report.error.is_none());
        assert!(report.verified);
        assert!(!report.index_rebuilt);
        assert_eq!(intact.index_evals(), 0);

        // Truncated at the first block boundary: the first 256 plans
        // survive, fingerprints intact, index rebuilt.
        let sections = binary::section_map(&bytes).unwrap();
        let block1 = sections
            .iter()
            .find(|s| s.plans == 256)
            .expect("a 300-plan document spans two blocks");
        let (salvaged, report) = PlanCorpus::from_binary_salvage(&bytes[..block1.end]);
        assert_eq!(report.declared, 300);
        assert_eq!(report.recovered, 256);
        assert_eq!(report.dropped, 44);
        assert!(report.verified);
        assert!(report.index_rebuilt);
        assert!(report.error.is_some());
        for id in 0..salvaged.len() {
            assert_eq!(salvaged.fingerprint(id), corpus.fingerprint(id));
            assert_eq!(salvaged.plan(id), corpus.plan(id));
        }

        // A flipped byte mid-plan-stream: strict load errors, salvage
        // recovers the blocks before it.
        let mut corrupt = bytes.clone();
        let offset = sections[1].end + 40;
        corrupt[offset] ^= 0x40;
        assert!(PlanCorpus::from_binary(&corrupt).is_err());
        let (salvaged, report) = PlanCorpus::from_binary_salvage(&corrupt);
        assert_eq!(salvaged.len(), 256);
        assert_eq!(report.dropped, 44);
        assert!(report.error.as_deref().unwrap().contains("checksum"));
    }

    #[test]
    fn jsonl_salvage_skips_bad_lines_and_reports_the_first() {
        let mut corpus = PlanCorpus::new();
        for plan in population() {
            corpus.insert(plan);
        }
        let mut dirty = String::new();
        for (i, line) in corpus.to_jsonl().lines().enumerate() {
            dirty.push_str(line);
            dirty.push('\n');
            if i == 1 {
                dirty.push_str("{\"operation\": \"truncated\n");
            }
            if i == 3 {
                dirty.push_str("complete garbage\n");
            }
        }
        let (salvaged, report) =
            PlanCorpus::from_jsonl_salvage_with_options(&dirty, FingerprintOptions::default());
        assert_eq!(salvaged.len(), corpus.len());
        assert_eq!(report.declared, corpus.len() as u64 + 2);
        assert_eq!(report.dropped, 2);
        assert!(report.error.as_deref().unwrap().starts_with("line 3:"));
        for (id, plan) in corpus.iter() {
            assert_eq!(salvaged.plan(id), plan);
        }
    }

    #[test]
    fn unchecked_documents_still_round_trip_and_salvage_unverified() {
        let mut corpus = PlanCorpus::new();
        for plan in population() {
            corpus.insert(plan);
        }
        let unchecked = corpus.to_binary_indexed_unchecked().unwrap();
        let checked = corpus.to_binary_indexed().unwrap();
        assert_ne!(unchecked, checked);
        let loaded = PlanCorpus::from_binary(&unchecked).unwrap();
        assert_eq!(loaded.len(), corpus.len());
        assert!(loaded.has_persisted_index());
        let (salvaged, report) = PlanCorpus::from_binary_salvage(&unchecked);
        assert_eq!(salvaged.len(), corpus.len());
        assert!(!report.verified, "v2 bytes are decodable, not verified");
        assert!(report.error.is_none());
    }

    #[test]
    fn load_salvage_errors_only_on_unreadable_paths() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let path = dir.join(format!("uplan_salvage_test_{pid}.uplanc"));
        let mut corpus = PlanCorpus::new();
        for plan in population() {
            corpus.insert(plan);
        }
        let bytes = corpus.to_binary_indexed().unwrap();
        // A partial write: half the document.
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let (_, report) = PlanCorpus::load_salvage(&path).unwrap();
        assert!(report.error.is_some());
        std::fs::remove_file(&path).ok();
        assert!(PlanCorpus::load_salvage(dir.join("definitely_missing.uplanc")).is_err());
    }

    #[test]
    fn shard_counts_round_to_powers_of_two() {
        assert_eq!(ShardedCorpus::with_shards(0).shard_count(), 1);
        assert_eq!(ShardedCorpus::with_shards(1).shard_count(), 1);
        assert_eq!(ShardedCorpus::with_shards(3).shard_count(), 4);
        assert_eq!(ShardedCorpus::with_shards(16).shard_count(), 16);
        assert_eq!(ShardedCorpus::with_shards(100_000).shard_count(), 256);
    }
}
