//! # The unified query vocabulary: one request, one response, one entry point
//!
//! Every way of interrogating a corpus — k-NN, radius, clustering, stats —
//! used to be its own method with its own threading variant
//! (`within_radius`, `within_radius_threaded`, `nearest`, `clusters`, …).
//! The `uplan-serve` daemon and the `repro corpus query` CLI need *one*
//! schema that scripts, handlers and benches all speak, so this module
//! folds the sprawl into a [`QueryRequest`] builder executed by
//! [`ShardedCorpus::execute`], answering with a [`QueryResponse`] that has
//! a stable JSON wire form (the same bytes over HTTP and from
//! `repro corpus query --json`).
//!
//! Two request knobs matter beyond the query parameters themselves:
//!
//! * **`threads`** fans the shard visits of radius and cluster queries out
//!   across scoped workers — same matches, same counted TED evaluations
//!   (shard walks are independent). k-NN ignores it: the shared best-k
//!   heap that makes merged k-NN cheap is inherently sequential.
//! * **`max_ted_evals`** is a per-request *counted-TED budget* in the
//!   spirit of the paper's evaluation-count discipline: the traversal
//!   stops before the evaluation that would exceed the budget and the
//!   request fails with [`QueryError::BudgetExceeded`] — a distinct,
//!   machine-readable outcome (HTTP 422 on the wire) rather than a
//!   silently partial answer. Budgeted queries always run the sequential
//!   shard fan-out so the evaluation count that tripped (or respected)
//!   the budget is deterministic.

use std::fmt;
use std::sync::{Arc, OnceLock};

use uplan_core::formats::json::{self, object, JsonValue, OwnedJsonValue};
use uplan_core::formats::unified;
use uplan_core::UnifiedPlan;
use uplan_obs::{trace, Counter, Histogram, Level};

use crate::{Cluster, CorpusStats, Matches, MetricQuery, ShardedCorpus};

/// Global-registry handles for the query path, one member per
/// [`QueryKind`] wire name (index via [`QueryKind::metric_index`]).
struct QueryMetrics {
    /// `uplan_corpus_queries_total{kind}` — executed requests.
    requests: [Arc<Counter>; 4],
    /// `uplan_corpus_query_ted_evals{kind}` — counted TED evaluations per
    /// answered request (the BK-traversal work actually done).
    ted_evals: [Arc<Histogram>; 4],
    /// `uplan_corpus_query_prune_x{kind}` — corpus size over counted
    /// evals: how many× the triangle-inequality pruning shrank the scan
    /// (1 = none; only recorded when a request evaluated anything).
    prune_x: [Arc<Histogram>; 4],
}

const QUERY_KIND_NAMES: [&str; 4] = ["knn", "radius", "cluster", "stats"];

fn query_metrics() -> &'static QueryMetrics {
    static METRICS: OnceLock<QueryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = uplan_obs::global();
        QueryMetrics {
            requests: QUERY_KIND_NAMES.map(|kind| {
                registry.counter_with(
                    "uplan_corpus_queries_total",
                    "corpus queries executed, by kind",
                    &[("kind", kind)],
                )
            }),
            ted_evals: QUERY_KIND_NAMES.map(|kind| {
                registry.histogram_with(
                    "uplan_corpus_query_ted_evals",
                    "counted TED evaluations per answered query",
                    &[("kind", kind)],
                )
            }),
            prune_x: QUERY_KIND_NAMES.map(|kind| {
                registry.histogram_with(
                    "uplan_corpus_query_prune_x",
                    "corpus size over counted TED evaluations (BK prune factor)",
                    &[("kind", kind)],
                )
            }),
        }
    })
}

/// What a [`QueryRequest`] asks of the corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryKind {
    /// The `k` stored plans nearest to the probe.
    Knn {
        /// How many neighbors to return.
        k: usize,
    },
    /// All stored plans within `radius` tree edits of the probe.
    Radius {
        /// Inclusive TED radius.
        radius: u32,
    },
    /// Greedy leader clustering of the whole corpus at `radius`.
    Cluster {
        /// Inclusive TED radius members must lie within of their leader.
        radius: u32,
    },
    /// Aggregate corpus statistics.
    Stats,
}

impl QueryKind {
    /// The wire name (`"knn"`, `"radius"`, `"cluster"`, `"stats"`).
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::Knn { .. } => "knn",
            QueryKind::Radius { .. } => "radius",
            QueryKind::Cluster { .. } => "cluster",
            QueryKind::Stats => "stats",
        }
    }

    /// Index into the per-kind metric arrays ([`QUERY_KIND_NAMES`] order).
    fn metric_index(&self) -> usize {
        match self {
            QueryKind::Knn { .. } => 0,
            QueryKind::Radius { .. } => 1,
            QueryKind::Cluster { .. } => 2,
            QueryKind::Stats => 3,
        }
    }
}

/// One corpus query: what to ask ([`QueryKind`]), what to ask it about
/// (the probe plan, for k-NN and radius), and how to run it (threads,
/// counted-TED budget). Built with the `QueryRequest::knn(5)`-style
/// constructors plus `with_*` chainers; executed by
/// [`ShardedCorpus::execute`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The query itself.
    pub kind: QueryKind,
    /// Worker threads for the shard fan-out of radius and cluster queries
    /// (k-NN and stats ignore it). Budgeted queries run sequentially
    /// regardless, so the counted evaluations are deterministic.
    pub threads: usize,
    /// Counted-TED budget: the query fails with
    /// [`QueryError::BudgetExceeded`] rather than spend more evaluations
    /// than this. Only k-NN and radius queries accept a budget.
    pub max_ted_evals: Option<u64>,
    /// The probe plan (required by k-NN and radius queries).
    pub probe: Option<UnifiedPlan>,
}

impl QueryRequest {
    fn with_kind(kind: QueryKind) -> QueryRequest {
        QueryRequest {
            kind,
            threads: 1,
            max_ted_evals: None,
            probe: None,
        }
    }

    /// A k-nearest-neighbors request (probe still required).
    pub fn knn(k: usize) -> QueryRequest {
        QueryRequest::with_kind(QueryKind::Knn { k })
    }

    /// A radius request (probe still required).
    pub fn radius(radius: u32) -> QueryRequest {
        QueryRequest::with_kind(QueryKind::Radius { radius })
    }

    /// A whole-corpus clustering request.
    pub fn cluster(radius: u32) -> QueryRequest {
        QueryRequest::with_kind(QueryKind::Cluster { radius })
    }

    /// A stats request.
    pub fn stats() -> QueryRequest {
        QueryRequest::with_kind(QueryKind::Stats)
    }

    /// Sets the probe plan.
    pub fn with_probe(mut self, probe: UnifiedPlan) -> QueryRequest {
        self.probe = Some(probe);
        self
    }

    /// Sets the shard fan-out thread count.
    pub fn with_threads(mut self, threads: usize) -> QueryRequest {
        self.threads = threads.max(1);
        self
    }

    /// Sets the counted-TED budget.
    pub fn with_eval_budget(mut self, max_ted_evals: u64) -> QueryRequest {
        self.max_ted_evals = Some(max_ted_evals);
        self
    }

    /// The request as its JSON wire object (the body `uplan-serve`
    /// accepts).
    pub fn to_json_value(&self) -> OwnedJsonValue {
        let mut members: Vec<(&'static str, OwnedJsonValue)> =
            vec![("query", JsonValue::from(self.kind.name()))];
        match self.kind {
            QueryKind::Knn { k } => members.push(("k", JsonValue::from(k))),
            QueryKind::Radius { radius } | QueryKind::Cluster { radius } => {
                members.push(("radius", JsonValue::from(radius as usize)))
            }
            QueryKind::Stats => {}
        }
        if self.threads != 1 {
            members.push(("threads", JsonValue::from(self.threads)));
        }
        if let Some(budget) = self.max_ted_evals {
            members.push(("max_ted_evals", int(budget)));
        }
        if let Some(probe) = &self.probe {
            members.push(("probe", unified::to_json_value(probe)));
        }
        object(members)
    }

    /// Parses a request from its JSON wire object. `kind` overrides an
    /// absent `"query"` member (HTTP handlers know the kind from the path;
    /// a present member must agree with it).
    pub fn from_json_value(
        doc: &JsonValue<'_>,
        kind: Option<&str>,
    ) -> Result<QueryRequest, QueryError> {
        let malformed = |m: &str| QueryError::Malformed(m.to_string());
        let members = doc
            .as_object()
            .ok_or_else(|| malformed("request body is not a JSON object"))?;
        for (key, _) in members {
            if !matches!(
                key.as_ref(),
                "query" | "k" | "radius" | "threads" | "max_ted_evals" | "probe"
            ) {
                return Err(QueryError::Malformed(format!(
                    "unknown request member {key:?}"
                )));
            }
        }
        let named = doc.get("query").map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| malformed("\"query\" is not a string"))
        });
        let named = named.transpose()?;
        let query = match (named.as_deref(), kind) {
            (Some(a), Some(b)) if a != b => {
                return Err(QueryError::Malformed(format!(
                    "request says \"query\": {a:?} but was sent to the {b} endpoint"
                )))
            }
            (Some(a), _) => a.to_string(),
            (None, Some(b)) => b.to_string(),
            (None, None) => return Err(malformed("request has no \"query\" member")),
        };
        let uint = |key: &str| -> Result<Option<u64>, QueryError> {
            match doc.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_int()
                    .and_then(|i| u64::try_from(i).ok())
                    .map(Some)
                    .ok_or_else(|| {
                        QueryError::Malformed(format!("{key:?} is not a non-negative integer"))
                    }),
            }
        };
        let kind = match query.as_str() {
            "knn" => QueryKind::Knn {
                k: uint("k")?.ok_or_else(|| malformed("knn request has no \"k\""))? as usize,
            },
            "radius" => QueryKind::Radius {
                radius: radius_u32(uint("radius")?, "radius")?,
            },
            "cluster" => QueryKind::Cluster {
                radius: radius_u32(uint("radius")?, "cluster")?,
            },
            "stats" => QueryKind::Stats,
            other => {
                return Err(QueryError::Malformed(format!(
                    "unknown query kind {other:?} (expected knn, radius, cluster or stats)"
                )))
            }
        };
        let probe = match doc.get("probe") {
            None => None,
            Some(v) => Some(
                unified::from_json_value(v)
                    .map_err(|e| QueryError::Malformed(format!("bad probe plan: {e}")))?,
            ),
        };
        Ok(QueryRequest {
            kind,
            threads: uint("threads")?.unwrap_or(1).max(1) as usize,
            max_ted_evals: uint("max_ted_evals")?,
            probe,
        })
    }

    /// Parses a request from JSON text.
    pub fn from_json(text: &str, kind: Option<&str>) -> Result<QueryRequest, QueryError> {
        let doc = json::parse(text).map_err(|e| QueryError::Malformed(e.to_string()))?;
        QueryRequest::from_json_value(&doc, kind)
    }
}

fn radius_u32(value: Option<u64>, what: &str) -> Result<u32, QueryError> {
    let v =
        value.ok_or_else(|| QueryError::Malformed(format!("{what} request has no \"radius\"")))?;
    u32::try_from(v).map_err(|_| QueryError::Malformed(format!("{what} \"radius\" overflows u32")))
}

fn int(v: u64) -> OwnedJsonValue {
    JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// The data a query produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// k-NN / radius matches as `(plan id, distance)` (radius sorts by
    /// id, k-NN by ascending distance then id).
    Matches(Matches),
    /// The clustering.
    Clusters(Vec<Cluster>),
    /// Aggregate statistics.
    Stats(CorpusStats),
}

/// What a query answered: the outcome plus the counted TED evaluations it
/// spent, and — when served from a [`crate::CorpusSnapshot`] — the epoch
/// the answer is consistent with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResponse {
    /// Wire name of the query this answers.
    pub query: &'static str,
    /// The outcome payload.
    pub outcome: QueryOutcome,
    /// Counted TED evaluations spent answering.
    pub ted_evals: u64,
    /// Snapshot epoch the answer reflects (`None` when querying a plain
    /// corpus outside the snapshot service).
    pub epoch: Option<u64>,
}

impl QueryResponse {
    /// Stamps the snapshot epoch the answer was computed against.
    pub fn with_epoch(mut self, epoch: u64) -> QueryResponse {
        self.epoch = Some(epoch);
        self
    }

    /// The response as its JSON wire object — identical bytes from the
    /// HTTP handlers and `repro corpus query --json`.
    pub fn to_json_value(&self) -> OwnedJsonValue {
        let mut members: Vec<(&'static str, OwnedJsonValue)> = vec![
            ("status", JsonValue::from("ok")),
            ("query", JsonValue::from(self.query)),
            ("ted_evals", int(self.ted_evals)),
        ];
        if let Some(epoch) = self.epoch {
            members.push(("epoch", int(epoch)));
        }
        match &self.outcome {
            QueryOutcome::Matches(matches) => {
                members.push(("matches", matches_json(matches)));
            }
            QueryOutcome::Clusters(clusters) => {
                members.push((
                    "clusters",
                    JsonValue::Array(
                        clusters
                            .iter()
                            .map(|c| {
                                object([
                                    ("leader", JsonValue::from(c.leader)),
                                    ("members", matches_json(&c.members)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            QueryOutcome::Stats(stats) => {
                members.push((
                    "stats",
                    object([
                        ("observed", int(stats.observed)),
                        ("distinct", JsonValue::from(stats.distinct)),
                        ("duplicates", int(stats.duplicates)),
                        ("operations", JsonValue::from(stats.operations)),
                        ("max_depth", JsonValue::from(stats.max_depth)),
                    ]),
                ));
            }
        }
        object(members)
    }

    /// The response as compact JSON text.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_compact()
    }
}

fn matches_json(matches: &Matches) -> OwnedJsonValue {
    JsonValue::Array(
        matches
            .iter()
            .map(|&(id, d)| {
                object([
                    ("id", JsonValue::from(id)),
                    ("distance", JsonValue::from(d as usize)),
                ])
            })
            .collect(),
    )
}

/// Why a query could not be answered. Each variant has a stable wire code
/// ([`QueryError::code`]) so scripts and the HTTP front end can branch
/// without parsing prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A k-NN or radius request arrived without a probe plan.
    MissingProbe,
    /// The counted-TED budget would have been exceeded; `spent` is where
    /// the traversal stopped (always `<= budget`).
    BudgetExceeded {
        /// The requested `max_ted_evals`.
        budget: u64,
        /// Evaluations spent before stopping.
        spent: u64,
    },
    /// The request combines options this query kind does not support
    /// (e.g. a TED budget on cluster or stats).
    Unsupported(String),
    /// The request could not be decoded.
    Malformed(String),
}

impl QueryError {
    /// Stable machine-readable code (`"missing-probe"`,
    /// `"budget-exceeded"`, `"unsupported"`, `"malformed"`).
    pub fn code(&self) -> &'static str {
        match self {
            QueryError::MissingProbe => "missing-probe",
            QueryError::BudgetExceeded { .. } => "budget-exceeded",
            QueryError::Unsupported(_) => "unsupported",
            QueryError::Malformed(_) => "malformed",
        }
    }

    /// The error as its JSON wire object (`"status": "error"`).
    pub fn to_json_value(&self) -> OwnedJsonValue {
        let mut members: Vec<(&'static str, OwnedJsonValue)> = vec![
            ("status", JsonValue::from("error")),
            ("error", JsonValue::from(self.code())),
            ("message", JsonValue::from(self.to_string())),
        ];
        if let QueryError::BudgetExceeded { budget, spent } = self {
            members.push(("budget", int(*budget)));
            members.push(("spent", int(*spent)));
        }
        object(members)
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::MissingProbe => {
                write!(f, "knn and radius queries require a probe plan")
            }
            QueryError::BudgetExceeded { budget, spent } => write!(
                f,
                "counted-TED budget exceeded: stopped after {spent} of {budget} evaluations"
            ),
            QueryError::Unsupported(m) => write!(f, "unsupported request: {m}"),
            QueryError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl ShardedCorpus {
    /// Executes a [`QueryRequest`] — the single query entry point the CLI,
    /// the `uplan-serve` handlers and library callers all share.
    ///
    /// Budgeted k-NN / radius queries run the sequential shard fan-out so
    /// their counted evaluations (and hence where the budget trips) are
    /// deterministic; unbudgeted radius and cluster queries honor
    /// `threads`, which changes neither matches nor counted evaluations.
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResponse, QueryError> {
        let idx = request.kind.metric_index();
        let mut span = trace::span("corpus.query", Level::Debug, "query");
        span.field("kind", request.kind.name());
        let result = self.execute_inner(request);
        let metrics = query_metrics();
        metrics.requests[idx].inc();
        match &result {
            Ok(response) => {
                metrics.ted_evals[idx].record(response.ted_evals);
                if response.ted_evals > 0 {
                    metrics.prune_x[idx].record((self.len() as u64) / response.ted_evals.max(1));
                }
                span.field("ted_evals", response.ted_evals);
            }
            Err(err) => {
                span.field("error", err.to_string());
            }
        }
        result
    }

    fn execute_inner(&self, request: &QueryRequest) -> Result<QueryResponse, QueryError> {
        let respond = |outcome, ted_evals| QueryResponse {
            query: request.kind.name(),
            outcome,
            ted_evals,
            epoch: None,
        };
        let budgeted = |q: MetricQuery, truncated: bool, budget: u64| {
            if truncated {
                Err(QueryError::BudgetExceeded {
                    budget,
                    spent: q.ted_evals,
                })
            } else {
                let evals = q.ted_evals;
                Ok(respond(QueryOutcome::Matches(q.matches), evals))
            }
        };
        match request.kind {
            QueryKind::Knn { k } => {
                let probe = request.probe.as_ref().ok_or(QueryError::MissingProbe)?;
                match request.max_ted_evals {
                    Some(budget) => {
                        let (q, truncated) = self.knn_query_limited(probe, k, budget);
                        budgeted(q, truncated, budget)
                    }
                    None => {
                        let q = self.knn_query(probe, k);
                        let evals = q.ted_evals;
                        Ok(respond(QueryOutcome::Matches(q.matches), evals))
                    }
                }
            }
            QueryKind::Radius { radius } => {
                let probe = request.probe.as_ref().ok_or(QueryError::MissingProbe)?;
                match request.max_ted_evals {
                    Some(budget) => {
                        let (q, truncated) = self.radius_query_limited(probe, radius, budget);
                        budgeted(q, truncated, budget)
                    }
                    None => {
                        let q = self.radius_query_threaded(probe, radius, request.threads);
                        let evals = q.ted_evals;
                        Ok(respond(QueryOutcome::Matches(q.matches), evals))
                    }
                }
            }
            QueryKind::Cluster { radius } => {
                if request.max_ted_evals.is_some() {
                    return Err(QueryError::Unsupported(
                        "counted-TED budgets apply to knn and radius queries only".into(),
                    ));
                }
                let (clusters, evals) = self.cluster_query(radius, request.threads);
                Ok(respond(QueryOutcome::Clusters(clusters), evals))
            }
            QueryKind::Stats => {
                if request.max_ted_evals.is_some() {
                    return Err(QueryError::Unsupported(
                        "counted-TED budgets apply to knn and radius queries only".into(),
                    ));
                }
                Ok(respond(QueryOutcome::Stats(self.stats()), 0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uplan_core::PlanNode;

    fn chain(names: &[&str]) -> UnifiedPlan {
        let mut node: Option<PlanNode> = None;
        for name in names.iter().rev() {
            let mut n = PlanNode::producer(*name);
            if let Some(child) = node.take() {
                n = PlanNode::executor(*name).with_child(child);
            }
            node = Some(n);
        }
        UnifiedPlan::with_root(node.unwrap())
    }

    fn corpus() -> ShardedCorpus {
        let mut corpus = ShardedCorpus::new();
        for plan in [
            chain(&["Scan_A"]),
            chain(&["Gather", "Scan_A"]),
            chain(&["Gather", "Scan_B"]),
            chain(&["Gather", "Sort", "Scan_A"]),
            chain(&["Collect", "Sort", "Scan_B"]),
            chain(&["Collect", "Sort", "Hash", "Scan_B"]),
        ] {
            corpus.insert(plan);
        }
        corpus
    }

    #[test]
    fn execute_matches_the_direct_query_paths() {
        let corpus = corpus();
        let probe = chain(&["Gather", "Scan_A"]);

        let knn = corpus
            .execute(&QueryRequest::knn(3).with_probe(probe.clone()))
            .unwrap();
        let direct = corpus.knn_query(&probe, 3);
        assert_eq!(knn.outcome, QueryOutcome::Matches(direct.matches));
        assert_eq!(knn.ted_evals, direct.ted_evals);
        assert_eq!(knn.query, "knn");
        assert_eq!(knn.epoch, None);

        for threads in [1usize, 4] {
            let radius = corpus
                .execute(
                    &QueryRequest::radius(1)
                        .with_probe(probe.clone())
                        .with_threads(threads),
                )
                .unwrap();
            let direct = corpus.radius_query(&probe, 1);
            assert_eq!(radius.outcome, QueryOutcome::Matches(direct.matches));
            assert_eq!(radius.ted_evals, direct.ted_evals);
        }

        let clusters = corpus.execute(&QueryRequest::cluster(1)).unwrap();
        let (direct, evals) = corpus.cluster_query(1, 1);
        assert_eq!(clusters.outcome, QueryOutcome::Clusters(direct));
        assert_eq!(clusters.ted_evals, evals);

        let stats = corpus.execute(&QueryRequest::stats()).unwrap();
        assert_eq!(stats.outcome, QueryOutcome::Stats(corpus.stats()));
    }

    #[test]
    fn budgets_trip_distinctly_and_generous_budgets_change_nothing() {
        let corpus = corpus();
        let probe = chain(&["Gather", "Scan_A"]);
        let unbudgeted = corpus
            .execute(&QueryRequest::knn(2).with_probe(probe.clone()))
            .unwrap();

        // A budget the query fits under changes nothing — same matches,
        // same counted evaluations.
        let generous = corpus
            .execute(
                &QueryRequest::knn(2)
                    .with_probe(probe.clone())
                    .with_eval_budget(unbudgeted.ted_evals),
            )
            .unwrap();
        assert_eq!(generous.outcome, unbudgeted.outcome);
        assert_eq!(generous.ted_evals, unbudgeted.ted_evals);

        // One evaluation less: the budget trips, reporting exactly where.
        let tight = unbudgeted.ted_evals - 1;
        let err = corpus
            .execute(
                &QueryRequest::knn(2)
                    .with_probe(probe.clone())
                    .with_eval_budget(tight),
            )
            .unwrap_err();
        assert_eq!(
            err,
            QueryError::BudgetExceeded {
                budget: tight,
                spent: tight
            }
        );
        assert_eq!(err.code(), "budget-exceeded");

        // Radius queries trip the same way.
        let full = corpus
            .execute(&QueryRequest::radius(2).with_probe(probe.clone()))
            .unwrap();
        let err = corpus
            .execute(
                &QueryRequest::radius(2)
                    .with_probe(probe.clone())
                    .with_eval_budget(1),
            )
            .unwrap_err();
        assert!(matches!(err, QueryError::BudgetExceeded { budget: 1, .. }));
        assert!(full.ted_evals > 1);

        // Budgets are knn/radius-only; probes are knn/radius-mandatory.
        assert_eq!(
            corpus
                .execute(&QueryRequest::cluster(1).with_eval_budget(10))
                .unwrap_err()
                .code(),
            "unsupported"
        );
        assert_eq!(
            corpus.execute(&QueryRequest::knn(2)).unwrap_err(),
            QueryError::MissingProbe
        );
    }

    #[test]
    fn requests_round_trip_through_json() {
        let probe = chain(&["Gather", "Scan_A"]);
        let requests = [
            QueryRequest::knn(5).with_probe(probe.clone()),
            QueryRequest::radius(3)
                .with_probe(probe)
                .with_threads(4)
                .with_eval_budget(1000),
            QueryRequest::cluster(2).with_threads(2),
            QueryRequest::stats(),
        ];
        for request in requests {
            let text = request.to_json_value().to_compact();
            let parsed = QueryRequest::from_json(&text, None).unwrap();
            assert_eq!(parsed, request, "{text}");
            // An endpoint-supplied kind must agree with the body.
            assert_eq!(
                QueryRequest::from_json(&text, Some(request.kind.name())).unwrap(),
                request
            );
            let other = if request.kind.name() == "stats" {
                "knn"
            } else {
                "stats"
            };
            assert_eq!(
                QueryRequest::from_json(&text, Some(other))
                    .unwrap_err()
                    .code(),
                "malformed"
            );
        }
        // The endpoint kind fills in an absent "query" member.
        let parsed = QueryRequest::from_json("{\"k\": 2}", Some("knn")).unwrap();
        assert_eq!(parsed.kind, QueryKind::Knn { k: 2 });
        assert!(QueryRequest::from_json("{\"k\": 2}", None).is_err());
        assert!(QueryRequest::from_json("{\"query\": \"knn\", \"kk\": 2}", None).is_err());
        assert!(QueryRequest::from_json("not json", Some("stats")).is_err());
    }

    #[test]
    fn responses_serialize_the_one_wire_schema() {
        let corpus = corpus();
        let probe = chain(&["Gather", "Scan_A"]);
        let response = corpus
            .execute(&QueryRequest::knn(2).with_probe(probe))
            .unwrap()
            .with_epoch(7);
        let doc = response.to_json_value();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("query").unwrap().as_str(), Some("knn"));
        assert_eq!(doc.get("epoch").unwrap().as_int(), Some(7));
        assert_eq!(
            doc.get("ted_evals").unwrap().as_int(),
            Some(response.ted_evals as i64)
        );
        let matches = doc.get("matches").unwrap().as_array().unwrap();
        assert_eq!(matches.len(), 2);
        assert!(matches[0].get("id").is_some() && matches[0].get("distance").is_some());

        let stats = corpus.execute(&QueryRequest::stats()).unwrap();
        let doc = stats.to_json_value();
        assert_eq!(
            doc.get("stats").unwrap().get("distinct").unwrap().as_int(),
            Some(corpus.len() as i64)
        );

        let err = QueryError::BudgetExceeded {
            budget: 10,
            spent: 10,
        };
        let doc = err.to_json_value();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(doc.get("error").unwrap().as_str(), Some("budget-exceeded"));
        assert_eq!(doc.get("budget").unwrap().as_int(), Some(10));
    }
}
