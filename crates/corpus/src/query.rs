//! # The unified query vocabulary: one request, one response, one entry point
//!
//! Every way of interrogating a corpus — k-NN, radius, clustering, stats —
//! used to be its own method with its own threading variant
//! (`within_radius`, `within_radius_threaded`, `nearest`, `clusters`, …).
//! The `uplan-serve` daemon and the `repro corpus query` CLI need *one*
//! schema that scripts, handlers and benches all speak, so this module
//! folds the sprawl into a [`QueryRequest`] builder executed by
//! [`ShardedCorpus::execute`], answering with a [`QueryResponse`] that has
//! a stable JSON wire form (the same bytes over HTTP and from
//! `repro corpus query --json`).
//!
//! Two request knobs matter beyond the query parameters themselves:
//!
//! * **`threads`** fans the shard visits of radius and cluster queries out
//!   across scoped workers — same matches, same counted TED evaluations
//!   (shard walks are independent). k-NN ignores it: the shared best-k
//!   heap that makes merged k-NN cheap is inherently sequential.
//! * **`max_ted_evals`** is a per-request *counted-TED budget* in the
//!   spirit of the paper's evaluation-count discipline: the traversal
//!   stops before the evaluation that would exceed the budget and the
//!   request fails with [`QueryError::BudgetExceeded`] — a distinct,
//!   machine-readable outcome (HTTP 422 on the wire) rather than a
//!   silently partial answer. Budgeted queries always run the sequential
//!   shard fan-out so the evaluation count that tripped (or respected)
//!   the budget is deterministic.
//! * **`mode`** selects between the default [`QueryMode::Exact`] answer
//!   and [`QueryMode::Approx`], which generates a candidate shortlist by
//!   feature-vector distance (see [`crate::features`]) and re-ranks only
//!   those candidates with exact TED. Approximate mode is k-NN-only and
//!   incompatible with a counted-TED budget (its evaluation count is
//!   bounded by the candidate count already).
//!
//! Every response carries a [`QueryCost`] breakdown — evaluations
//! started, how many of those the early-exit kernel abandoned, and the
//! candidate-set size for approximate queries — with an exact JSON
//! round-trip, so the CLI, the HTTP handlers and CI gates all read the
//! same numbers.

use std::fmt;
use std::sync::{Arc, OnceLock};

use uplan_core::formats::json::{self, object, JsonValue, OwnedJsonValue};
use uplan_core::formats::unified;
use uplan_core::UnifiedPlan;
use uplan_obs::{trace, Counter, Histogram, Level};

use crate::{Cluster, CorpusStats, Matches, MetricQuery, ShardedCorpus};

/// Global-registry handles for the query path, one member per
/// [`QueryKind`] wire name (index via [`QueryKind::metric_index`]).
struct QueryMetrics {
    /// `uplan_corpus_queries_total{kind}` — executed requests.
    requests: [Arc<Counter>; 4],
    /// `uplan_corpus_query_ted_evals{kind}` — counted TED evaluations per
    /// answered request (the BK-traversal work actually done).
    ted_evals: [Arc<Histogram>; 4],
    /// `uplan_corpus_query_prune_x{kind}` — corpus size over counted
    /// evals: how many× the triangle-inequality pruning shrank the scan
    /// (1 = none; only recorded when a request evaluated anything).
    prune_x: [Arc<Histogram>; 4],
    /// `uplan_query_partial_evals_total{kind}` — evaluations the
    /// early-exit kernel abandoned past the bound (pruned-but-visited
    /// nodes paying a partial dynamic program instead of a full one).
    partial_evals: [Arc<Counter>; 4],
    /// `uplan_query_candidate_set_size{kind}` — shortlist size of
    /// approximate queries (recorded only when a candidate set was built).
    candidate_set_size: [Arc<Histogram>; 4],
}

const QUERY_KIND_NAMES: [&str; 4] = ["knn", "radius", "cluster", "stats"];

fn query_metrics() -> &'static QueryMetrics {
    static METRICS: OnceLock<QueryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = uplan_obs::global();
        QueryMetrics {
            requests: QUERY_KIND_NAMES.map(|kind| {
                registry.counter_with(
                    "uplan_corpus_queries_total",
                    "corpus queries executed, by kind",
                    &[("kind", kind)],
                )
            }),
            ted_evals: QUERY_KIND_NAMES.map(|kind| {
                registry.histogram_with(
                    "uplan_corpus_query_ted_evals",
                    "counted TED evaluations per answered query",
                    &[("kind", kind)],
                )
            }),
            prune_x: QUERY_KIND_NAMES.map(|kind| {
                registry.histogram_with(
                    "uplan_corpus_query_prune_x",
                    "corpus size over counted TED evaluations (BK prune factor)",
                    &[("kind", kind)],
                )
            }),
            partial_evals: QUERY_KIND_NAMES.map(|kind| {
                registry.counter_with(
                    "uplan_query_partial_evals_total",
                    "TED evaluations abandoned early by the bounded kernel",
                    &[("kind", kind)],
                )
            }),
            candidate_set_size: QUERY_KIND_NAMES.map(|kind| {
                registry.histogram_with(
                    "uplan_query_candidate_set_size",
                    "candidate shortlist size of approximate queries",
                    &[("kind", kind)],
                )
            }),
        }
    })
}

/// Candidate-shortlist size approximate queries use when the request does
/// not say (`QueryMode::Approx { candidates: 0 }` or an absent
/// `"candidates"` member). Tuned on the 10k TPC-H-derived fixture: recall
/// ≥ 0.95 against exact k-NN while cutting full TED evaluations well over
/// 5× (the `repro corpus recall` CI gate re-measures both).
pub const DEFAULT_APPROX_CANDIDATES: usize = 96;

/// How a k-NN query trades accuracy for work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// The exact answer via the BK-tree traversal (the default).
    Exact,
    /// Approximate: shortlist `candidates` plans by feature-vector
    /// distance, re-rank the shortlist with exact TED. `candidates == 0`
    /// means [`DEFAULT_APPROX_CANDIDATES`]. k-NN only.
    Approx {
        /// Shortlist size (0 = default).
        candidates: usize,
    },
}

impl QueryMode {
    /// The wire name (`"exact"` / `"approx"`).
    pub fn name(&self) -> &'static str {
        match self {
            QueryMode::Exact => "exact",
            QueryMode::Approx { .. } => "approx",
        }
    }
}

/// What a [`QueryRequest`] asks of the corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryKind {
    /// The `k` stored plans nearest to the probe.
    Knn {
        /// How many neighbors to return.
        k: usize,
    },
    /// All stored plans within `radius` tree edits of the probe.
    Radius {
        /// Inclusive TED radius.
        radius: u32,
    },
    /// Greedy leader clustering of the whole corpus at `radius`.
    Cluster {
        /// Inclusive TED radius members must lie within of their leader.
        radius: u32,
    },
    /// Aggregate corpus statistics.
    Stats,
}

impl QueryKind {
    /// The wire name (`"knn"`, `"radius"`, `"cluster"`, `"stats"`).
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::Knn { .. } => "knn",
            QueryKind::Radius { .. } => "radius",
            QueryKind::Cluster { .. } => "cluster",
            QueryKind::Stats => "stats",
        }
    }

    /// Index into the per-kind metric arrays ([`QUERY_KIND_NAMES`] order).
    fn metric_index(&self) -> usize {
        match self {
            QueryKind::Knn { .. } => 0,
            QueryKind::Radius { .. } => 1,
            QueryKind::Cluster { .. } => 2,
            QueryKind::Stats => 3,
        }
    }
}

/// One corpus query: what to ask ([`QueryKind`]), what to ask it about
/// (the probe plan, for k-NN and radius), and how to run it (threads,
/// counted-TED budget). Built with the `QueryRequest::knn(5)`-style
/// constructors plus `with_*` chainers; executed by
/// [`ShardedCorpus::execute`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The query itself.
    pub kind: QueryKind,
    /// Worker threads for the shard fan-out of radius and cluster queries
    /// (k-NN and stats ignore it). Budgeted queries run sequentially
    /// regardless, so the counted evaluations are deterministic.
    pub threads: usize,
    /// Counted-TED budget: the query fails with
    /// [`QueryError::BudgetExceeded`] rather than spend more evaluations
    /// than this. Only k-NN and radius queries accept a budget.
    pub max_ted_evals: Option<u64>,
    /// Exact (default) or approximate answer — see [`QueryMode`].
    pub mode: QueryMode,
    /// The probe plan (required by k-NN and radius queries).
    pub probe: Option<UnifiedPlan>,
}

impl QueryRequest {
    fn with_kind(kind: QueryKind) -> QueryRequest {
        QueryRequest {
            kind,
            threads: 1,
            max_ted_evals: None,
            mode: QueryMode::Exact,
            probe: None,
        }
    }

    /// A k-nearest-neighbors request (probe still required).
    pub fn knn(k: usize) -> QueryRequest {
        QueryRequest::with_kind(QueryKind::Knn { k })
    }

    /// A radius request (probe still required).
    pub fn radius(radius: u32) -> QueryRequest {
        QueryRequest::with_kind(QueryKind::Radius { radius })
    }

    /// A whole-corpus clustering request.
    pub fn cluster(radius: u32) -> QueryRequest {
        QueryRequest::with_kind(QueryKind::Cluster { radius })
    }

    /// A stats request.
    pub fn stats() -> QueryRequest {
        QueryRequest::with_kind(QueryKind::Stats)
    }

    /// Sets the probe plan.
    pub fn with_probe(mut self, probe: UnifiedPlan) -> QueryRequest {
        self.probe = Some(probe);
        self
    }

    /// Sets the shard fan-out thread count.
    pub fn with_threads(mut self, threads: usize) -> QueryRequest {
        self.threads = threads.max(1);
        self
    }

    /// Sets the counted-TED budget.
    pub fn with_eval_budget(mut self, max_ted_evals: u64) -> QueryRequest {
        self.max_ted_evals = Some(max_ted_evals);
        self
    }

    /// Sets the query mode.
    pub fn with_mode(mut self, mode: QueryMode) -> QueryRequest {
        self.mode = mode;
        self
    }

    /// Shorthand for approximate mode with a shortlist of `candidates`
    /// (0 = [`DEFAULT_APPROX_CANDIDATES`]).
    pub fn approx(self, candidates: usize) -> QueryRequest {
        self.with_mode(QueryMode::Approx { candidates })
    }

    /// The request as its JSON wire object (the body `uplan-serve`
    /// accepts).
    pub fn to_json_value(&self) -> OwnedJsonValue {
        let mut members: Vec<(&'static str, OwnedJsonValue)> =
            vec![("query", JsonValue::from(self.kind.name()))];
        match self.kind {
            QueryKind::Knn { k } => members.push(("k", JsonValue::from(k))),
            QueryKind::Radius { radius } | QueryKind::Cluster { radius } => {
                members.push(("radius", JsonValue::from(radius as usize)))
            }
            QueryKind::Stats => {}
        }
        if self.threads != 1 {
            members.push(("threads", JsonValue::from(self.threads)));
        }
        if let Some(budget) = self.max_ted_evals {
            members.push(("max_ted_evals", int(budget)));
        }
        if let QueryMode::Approx { candidates } = self.mode {
            members.push(("mode", JsonValue::from("approx")));
            if candidates != 0 {
                members.push(("candidates", JsonValue::from(candidates)));
            }
        }
        if let Some(probe) = &self.probe {
            members.push(("probe", unified::to_json_value(probe)));
        }
        object(members)
    }

    /// Parses a request from its JSON wire object. `kind` overrides an
    /// absent `"query"` member (HTTP handlers know the kind from the path;
    /// a present member must agree with it).
    pub fn from_json_value(
        doc: &JsonValue<'_>,
        kind: Option<&str>,
    ) -> Result<QueryRequest, QueryError> {
        let malformed = |m: &str| QueryError::Malformed(m.to_string());
        let members = doc
            .as_object()
            .ok_or_else(|| malformed("request body is not a JSON object"))?;
        for (key, _) in members {
            if !matches!(
                key.as_ref(),
                "query"
                    | "k"
                    | "radius"
                    | "threads"
                    | "max_ted_evals"
                    | "mode"
                    | "candidates"
                    | "probe"
            ) {
                return Err(QueryError::Malformed(format!(
                    "unknown request member {key:?}"
                )));
            }
        }
        let named = doc.get("query").map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| malformed("\"query\" is not a string"))
        });
        let named = named.transpose()?;
        let query = match (named.as_deref(), kind) {
            (Some(a), Some(b)) if a != b => {
                return Err(QueryError::Malformed(format!(
                    "request says \"query\": {a:?} but was sent to the {b} endpoint"
                )))
            }
            (Some(a), _) => a.to_string(),
            (None, Some(b)) => b.to_string(),
            (None, None) => return Err(malformed("request has no \"query\" member")),
        };
        let uint = |key: &str| -> Result<Option<u64>, QueryError> {
            match doc.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_int()
                    .and_then(|i| u64::try_from(i).ok())
                    .map(Some)
                    .ok_or_else(|| {
                        QueryError::Malformed(format!("{key:?} is not a non-negative integer"))
                    }),
            }
        };
        let kind = match query.as_str() {
            "knn" => QueryKind::Knn {
                k: uint("k")?.ok_or_else(|| malformed("knn request has no \"k\""))? as usize,
            },
            "radius" => QueryKind::Radius {
                radius: radius_u32(uint("radius")?, "radius")?,
            },
            "cluster" => QueryKind::Cluster {
                radius: radius_u32(uint("radius")?, "cluster")?,
            },
            "stats" => QueryKind::Stats,
            other => {
                return Err(QueryError::Malformed(format!(
                    "unknown query kind {other:?} (expected knn, radius, cluster or stats)"
                )))
            }
        };
        let mode = match doc.get("mode") {
            None => {
                if doc.get("candidates").is_some() {
                    return Err(malformed("\"candidates\" requires \"mode\": \"approx\""));
                }
                QueryMode::Exact
            }
            Some(v) => match v.as_str() {
                Some("exact") => {
                    if doc.get("candidates").is_some() {
                        return Err(malformed("\"candidates\" requires \"mode\": \"approx\""));
                    }
                    QueryMode::Exact
                }
                Some("approx") => QueryMode::Approx {
                    candidates: uint("candidates")?.unwrap_or(0) as usize,
                },
                _ => {
                    return Err(malformed(
                        "\"mode\" must be the string \"exact\" or \"approx\"",
                    ))
                }
            },
        };
        let probe = match doc.get("probe") {
            None => None,
            Some(v) => Some(
                unified::from_json_value(v)
                    .map_err(|e| QueryError::Malformed(format!("bad probe plan: {e}")))?,
            ),
        };
        Ok(QueryRequest {
            kind,
            threads: uint("threads")?.unwrap_or(1).max(1) as usize,
            max_ted_evals: uint("max_ted_evals")?,
            mode,
            probe,
        })
    }

    /// Parses a request from JSON text.
    pub fn from_json(text: &str, kind: Option<&str>) -> Result<QueryRequest, QueryError> {
        let doc = json::parse(text).map_err(|e| QueryError::Malformed(e.to_string()))?;
        QueryRequest::from_json_value(&doc, kind)
    }
}

fn radius_u32(value: Option<u64>, what: &str) -> Result<u32, QueryError> {
    let v =
        value.ok_or_else(|| QueryError::Malformed(format!("{what} request has no \"radius\"")))?;
    u32::try_from(v).map_err(|_| QueryError::Malformed(format!("{what} \"radius\" overflows u32")))
}

fn int(v: u64) -> OwnedJsonValue {
    JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// The data a query produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutcome {
    /// k-NN / radius matches as `(plan id, distance)` (radius sorts by
    /// id, k-NN by ascending distance then id).
    Matches(Matches),
    /// The clustering.
    Clusters(Vec<Cluster>),
    /// Aggregate statistics.
    Stats(CorpusStats),
}

/// What answering a query cost, in the paper's evaluation-count
/// discipline. One struct, carried verbatim by every [`QueryResponse`]
/// and serialized as the `"cost"` JSON object with an exact round-trip
/// ([`QueryCost::to_json_value`] / [`QueryCost::from_json_value`]), so
/// the CLI, HTTP handlers, benches and CI gates read identical numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryCost {
    /// TED evaluations *started* (full and abandoned alike) — invariant
    /// under the early-exit kernel, so it stays comparable across
    /// kernel-on/off runs and the historical prune-factor gates.
    pub ted_evals: u64,
    /// The subset of `ted_evals` the bounded kernel abandoned once the
    /// distance provably exceeded the pruning bound. Full evaluations are
    /// `ted_evals - partial_evals`.
    pub partial_evals: u64,
    /// Shortlist size an approximate query re-ranked (0 for exact mode).
    pub candidates_considered: u64,
}

impl QueryCost {
    /// A cost of `evals` started evaluations, all run to completion.
    pub fn exact(ted_evals: u64) -> QueryCost {
        QueryCost {
            ted_evals,
            ..QueryCost::default()
        }
    }

    /// TED evaluations that ran the full dynamic program (started minus
    /// abandoned).
    pub fn full_evals(&self) -> u64 {
        self.ted_evals - self.partial_evals
    }

    /// The cost as its JSON wire object (the response's `"cost"` member).
    pub fn to_json_value(&self) -> OwnedJsonValue {
        object([
            ("ted_evals", int(self.ted_evals)),
            ("partial_evals", int(self.partial_evals)),
            ("candidates_considered", int(self.candidates_considered)),
        ])
    }

    /// Parses a cost back from its JSON wire object — the exact inverse
    /// of [`QueryCost::to_json_value`].
    pub fn from_json_value(doc: &JsonValue<'_>) -> Result<QueryCost, QueryError> {
        let member = |key: &str| -> Result<u64, QueryError> {
            doc.get(key)
                .and_then(|v| v.as_int())
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| {
                    QueryError::Malformed(format!(
                        "cost object has no non-negative integer {key:?}"
                    ))
                })
        };
        Ok(QueryCost {
            ted_evals: member("ted_evals")?,
            partial_evals: member("partial_evals")?,
            candidates_considered: member("candidates_considered")?,
        })
    }
}

/// What a query answered: the outcome plus the [`QueryCost`] it spent,
/// and — when served from a [`crate::CorpusSnapshot`] — the epoch the
/// answer is consistent with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResponse {
    /// Wire name of the query this answers.
    pub query: &'static str,
    /// The outcome payload.
    pub outcome: QueryOutcome,
    /// The evaluation-count breakdown of answering.
    pub cost: QueryCost,
    /// Snapshot epoch the answer reflects (`None` when querying a plain
    /// corpus outside the snapshot service).
    pub epoch: Option<u64>,
}

impl QueryResponse {
    /// Stamps the snapshot epoch the answer was computed against.
    pub fn with_epoch(mut self, epoch: u64) -> QueryResponse {
        self.epoch = Some(epoch);
        self
    }

    /// The response as its JSON wire object — identical bytes from the
    /// HTTP handlers and `repro corpus query --json`.
    pub fn to_json_value(&self) -> OwnedJsonValue {
        let mut members: Vec<(&'static str, OwnedJsonValue)> = vec![
            ("status", JsonValue::from("ok")),
            ("query", JsonValue::from(self.query)),
            ("cost", self.cost.to_json_value()),
        ];
        if let Some(epoch) = self.epoch {
            members.push(("epoch", int(epoch)));
        }
        match &self.outcome {
            QueryOutcome::Matches(matches) => {
                members.push(("matches", matches_json(matches)));
            }
            QueryOutcome::Clusters(clusters) => {
                members.push((
                    "clusters",
                    JsonValue::Array(
                        clusters
                            .iter()
                            .map(|c| {
                                object([
                                    ("leader", JsonValue::from(c.leader)),
                                    ("members", matches_json(&c.members)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            QueryOutcome::Stats(stats) => {
                members.push((
                    "stats",
                    object([
                        ("observed", int(stats.observed)),
                        ("distinct", JsonValue::from(stats.distinct)),
                        ("duplicates", int(stats.duplicates)),
                        ("operations", JsonValue::from(stats.operations)),
                        ("max_depth", JsonValue::from(stats.max_depth)),
                    ]),
                ));
            }
        }
        object(members)
    }

    /// The response as compact JSON text.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_compact()
    }
}

fn matches_json(matches: &Matches) -> OwnedJsonValue {
    JsonValue::Array(
        matches
            .iter()
            .map(|&(id, d)| {
                object([
                    ("id", JsonValue::from(id)),
                    ("distance", JsonValue::from(d as usize)),
                ])
            })
            .collect(),
    )
}

/// Why a query could not be answered. Each variant has a stable wire code
/// ([`QueryError::code`]) so scripts and the HTTP front end can branch
/// without parsing prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A k-NN or radius request arrived without a probe plan.
    MissingProbe,
    /// The counted-TED budget would have been exceeded; `spent` is where
    /// the traversal stopped (always `<= budget`).
    BudgetExceeded {
        /// The requested `max_ted_evals`.
        budget: u64,
        /// Evaluations spent before stopping.
        spent: u64,
    },
    /// The request combines options this query kind does not support
    /// (e.g. a TED budget on cluster or stats).
    Unsupported(String),
    /// The request could not be decoded.
    Malformed(String),
}

impl QueryError {
    /// Stable machine-readable code (`"missing-probe"`,
    /// `"budget-exceeded"`, `"unsupported"`, `"malformed"`).
    pub fn code(&self) -> &'static str {
        match self {
            QueryError::MissingProbe => "missing-probe",
            QueryError::BudgetExceeded { .. } => "budget-exceeded",
            QueryError::Unsupported(_) => "unsupported",
            QueryError::Malformed(_) => "malformed",
        }
    }

    /// The error as its JSON wire object (`"status": "error"`).
    pub fn to_json_value(&self) -> OwnedJsonValue {
        let mut members: Vec<(&'static str, OwnedJsonValue)> = vec![
            ("status", JsonValue::from("error")),
            ("error", JsonValue::from(self.code())),
            ("message", JsonValue::from(self.to_string())),
        ];
        if let QueryError::BudgetExceeded { budget, spent } = self {
            members.push(("budget", int(*budget)));
            members.push(("spent", int(*spent)));
        }
        object(members)
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::MissingProbe => {
                write!(f, "knn and radius queries require a probe plan")
            }
            QueryError::BudgetExceeded { budget, spent } => write!(
                f,
                "counted-TED budget exceeded: stopped after {spent} of {budget} evaluations"
            ),
            QueryError::Unsupported(m) => write!(f, "unsupported request: {m}"),
            QueryError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl ShardedCorpus {
    /// Executes a [`QueryRequest`] — the single query entry point the CLI,
    /// the `uplan-serve` handlers and library callers all share.
    ///
    /// Budgeted k-NN / radius queries run the sequential shard fan-out so
    /// their counted evaluations (and hence where the budget trips) are
    /// deterministic; unbudgeted radius and cluster queries honor
    /// `threads`, which changes neither matches nor counted evaluations.
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResponse, QueryError> {
        let idx = request.kind.metric_index();
        let mut span = trace::span("corpus.query", Level::Debug, "query");
        span.field("kind", request.kind.name());
        span.field("mode", request.mode.name());
        let result = self.execute_inner(request);
        let metrics = query_metrics();
        metrics.requests[idx].inc();
        match &result {
            Ok(response) => {
                let cost = response.cost;
                metrics.ted_evals[idx].record(cost.ted_evals);
                if cost.ted_evals > 0 {
                    metrics.prune_x[idx].record((self.len() as u64) / cost.ted_evals.max(1));
                }
                metrics.partial_evals[idx].add(cost.partial_evals);
                if cost.candidates_considered > 0 {
                    metrics.candidate_set_size[idx].record(cost.candidates_considered);
                }
                span.field("ted_evals", cost.ted_evals);
            }
            Err(err) => {
                span.field("error", err.to_string());
            }
        }
        result
    }

    fn execute_inner(&self, request: &QueryRequest) -> Result<QueryResponse, QueryError> {
        let respond = |outcome, cost| QueryResponse {
            query: request.kind.name(),
            outcome,
            cost,
            epoch: None,
        };
        let cost_of = |q: &MetricQuery| QueryCost {
            ted_evals: q.ted_evals,
            partial_evals: q.partial_evals,
            candidates_considered: q.candidates_considered,
        };
        let budgeted = |q: MetricQuery, truncated: bool, budget: u64| {
            if truncated {
                Err(QueryError::BudgetExceeded {
                    budget,
                    spent: q.ted_evals,
                })
            } else {
                let cost = cost_of(&q);
                Ok(respond(QueryOutcome::Matches(q.matches), cost))
            }
        };
        if let QueryMode::Approx { candidates } = request.mode {
            let QueryKind::Knn { k } = request.kind else {
                return Err(QueryError::Unsupported(
                    "approximate mode applies to knn queries only".into(),
                ));
            };
            if request.max_ted_evals.is_some() {
                return Err(QueryError::Unsupported(
                    "approximate queries do not accept a counted-TED budget \
                     (the candidate count already bounds their evaluations)"
                        .into(),
                ));
            }
            let probe = request.probe.as_ref().ok_or(QueryError::MissingProbe)?;
            let candidates = if candidates == 0 {
                DEFAULT_APPROX_CANDIDATES
            } else {
                candidates
            };
            let q = self.knn_query_approx(probe, k, candidates);
            let cost = cost_of(&q);
            return Ok(respond(QueryOutcome::Matches(q.matches), cost));
        }
        match request.kind {
            QueryKind::Knn { k } => {
                let probe = request.probe.as_ref().ok_or(QueryError::MissingProbe)?;
                match request.max_ted_evals {
                    Some(budget) => {
                        let (q, truncated) = self.knn_query_limited(probe, k, budget);
                        budgeted(q, truncated, budget)
                    }
                    None => {
                        let q = self.knn_query(probe, k);
                        let cost = cost_of(&q);
                        Ok(respond(QueryOutcome::Matches(q.matches), cost))
                    }
                }
            }
            QueryKind::Radius { radius } => {
                let probe = request.probe.as_ref().ok_or(QueryError::MissingProbe)?;
                match request.max_ted_evals {
                    Some(budget) => {
                        let (q, truncated) = self.radius_query_limited(probe, radius, budget);
                        budgeted(q, truncated, budget)
                    }
                    None => {
                        let q = self.radius_query_threaded(probe, radius, request.threads);
                        let cost = cost_of(&q);
                        Ok(respond(QueryOutcome::Matches(q.matches), cost))
                    }
                }
            }
            QueryKind::Cluster { radius } => {
                if request.max_ted_evals.is_some() {
                    return Err(QueryError::Unsupported(
                        "counted-TED budgets apply to knn and radius queries only".into(),
                    ));
                }
                let (clusters, ted_evals, partial_evals) =
                    self.cluster_query(radius, request.threads);
                Ok(respond(
                    QueryOutcome::Clusters(clusters),
                    QueryCost {
                        ted_evals,
                        partial_evals,
                        candidates_considered: 0,
                    },
                ))
            }
            QueryKind::Stats => {
                if request.max_ted_evals.is_some() {
                    return Err(QueryError::Unsupported(
                        "counted-TED budgets apply to knn and radius queries only".into(),
                    ));
                }
                Ok(respond(
                    QueryOutcome::Stats(self.stats()),
                    QueryCost::default(),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uplan_core::PlanNode;

    fn chain(names: &[&str]) -> UnifiedPlan {
        let mut node: Option<PlanNode> = None;
        for name in names.iter().rev() {
            let mut n = PlanNode::producer(*name);
            if let Some(child) = node.take() {
                n = PlanNode::executor(*name).with_child(child);
            }
            node = Some(n);
        }
        UnifiedPlan::with_root(node.unwrap())
    }

    fn corpus() -> ShardedCorpus {
        let mut corpus = ShardedCorpus::new();
        for plan in [
            chain(&["Scan_A"]),
            chain(&["Gather", "Scan_A"]),
            chain(&["Gather", "Scan_B"]),
            chain(&["Gather", "Sort", "Scan_A"]),
            chain(&["Collect", "Sort", "Scan_B"]),
            chain(&["Collect", "Sort", "Hash", "Scan_B"]),
        ] {
            corpus.insert(plan);
        }
        corpus
    }

    #[test]
    fn execute_matches_the_direct_query_paths() {
        let corpus = corpus();
        let probe = chain(&["Gather", "Scan_A"]);

        let knn = corpus
            .execute(&QueryRequest::knn(3).with_probe(probe.clone()))
            .unwrap();
        let direct = corpus.knn_query(&probe, 3);
        assert_eq!(knn.outcome, QueryOutcome::Matches(direct.matches));
        assert_eq!(knn.cost.ted_evals, direct.ted_evals);
        assert_eq!(knn.cost.partial_evals, direct.partial_evals);
        assert_eq!(knn.cost.candidates_considered, 0);
        assert_eq!(knn.query, "knn");
        assert_eq!(knn.epoch, None);

        for threads in [1usize, 4] {
            let radius = corpus
                .execute(
                    &QueryRequest::radius(1)
                        .with_probe(probe.clone())
                        .with_threads(threads),
                )
                .unwrap();
            let direct = corpus.radius_query(&probe, 1);
            assert_eq!(radius.outcome, QueryOutcome::Matches(direct.matches));
            assert_eq!(radius.cost.ted_evals, direct.ted_evals);
            assert_eq!(radius.cost.partial_evals, direct.partial_evals);
        }

        let clusters = corpus.execute(&QueryRequest::cluster(1)).unwrap();
        let (direct, evals, partials) = corpus.cluster_query(1, 1);
        assert_eq!(clusters.outcome, QueryOutcome::Clusters(direct));
        assert_eq!(clusters.cost.ted_evals, evals);
        assert_eq!(clusters.cost.partial_evals, partials);

        let stats = corpus.execute(&QueryRequest::stats()).unwrap();
        assert_eq!(stats.outcome, QueryOutcome::Stats(corpus.stats()));
        assert_eq!(stats.cost, QueryCost::default());
    }

    #[test]
    fn approximate_knn_is_knn_only_and_reports_its_shortlist() {
        let corpus = corpus();
        let probe = chain(&["Gather", "Scan_A"]);

        // On a corpus smaller than the shortlist, approx recovers the
        // exact distance multiset (ties may swap members, as in exact
        // k-NN's own tie contract).
        let exact = corpus
            .execute(&QueryRequest::knn(2).with_probe(probe.clone()))
            .unwrap();
        let approx = corpus
            .execute(&QueryRequest::knn(2).with_probe(probe.clone()).approx(0))
            .unwrap();
        let dist = |r: &QueryResponse| match &r.outcome {
            QueryOutcome::Matches(m) => m.iter().map(|&(_, d)| d).collect::<Vec<_>>(),
            other => panic!("knn answered {other:?}"),
        };
        assert_eq!(dist(&approx), dist(&exact));
        assert_eq!(approx.cost.candidates_considered, corpus.len() as u64);
        assert_eq!(approx.cost.ted_evals, corpus.len() as u64);

        // A shortlist of 3 re-ranks exactly 3 candidates.
        let short = corpus
            .execute(&QueryRequest::knn(2).with_probe(probe.clone()).approx(3))
            .unwrap();
        assert_eq!(short.cost.candidates_considered, 3);
        assert_eq!(short.cost.ted_evals, 3);

        // Approx is knn-only and budget-incompatible.
        assert_eq!(
            corpus
                .execute(&QueryRequest::radius(1).with_probe(probe.clone()).approx(0))
                .unwrap_err()
                .code(),
            "unsupported"
        );
        assert_eq!(
            corpus
                .execute(
                    &QueryRequest::knn(2)
                        .with_probe(probe)
                        .with_eval_budget(100)
                        .approx(0)
                )
                .unwrap_err()
                .code(),
            "unsupported"
        );
        assert_eq!(
            corpus.execute(&QueryRequest::knn(2).approx(0)).unwrap_err(),
            QueryError::MissingProbe
        );
    }

    #[test]
    fn budgets_trip_distinctly_and_generous_budgets_change_nothing() {
        let corpus = corpus();
        let probe = chain(&["Gather", "Scan_A"]);
        let unbudgeted = corpus
            .execute(&QueryRequest::knn(2).with_probe(probe.clone()))
            .unwrap();

        // A budget the query fits under changes nothing — same matches,
        // same counted evaluations.
        let generous = corpus
            .execute(
                &QueryRequest::knn(2)
                    .with_probe(probe.clone())
                    .with_eval_budget(unbudgeted.cost.ted_evals),
            )
            .unwrap();
        assert_eq!(generous.outcome, unbudgeted.outcome);
        assert_eq!(generous.cost, unbudgeted.cost);

        // One evaluation less: the budget trips, reporting exactly where.
        let tight = unbudgeted.cost.ted_evals - 1;
        let err = corpus
            .execute(
                &QueryRequest::knn(2)
                    .with_probe(probe.clone())
                    .with_eval_budget(tight),
            )
            .unwrap_err();
        assert_eq!(
            err,
            QueryError::BudgetExceeded {
                budget: tight,
                spent: tight
            }
        );
        assert_eq!(err.code(), "budget-exceeded");

        // Radius queries trip the same way.
        let full = corpus
            .execute(&QueryRequest::radius(2).with_probe(probe.clone()))
            .unwrap();
        let err = corpus
            .execute(
                &QueryRequest::radius(2)
                    .with_probe(probe.clone())
                    .with_eval_budget(1),
            )
            .unwrap_err();
        assert!(matches!(err, QueryError::BudgetExceeded { budget: 1, .. }));
        assert!(full.cost.ted_evals > 1);

        // Budgets are knn/radius-only; probes are knn/radius-mandatory.
        assert_eq!(
            corpus
                .execute(&QueryRequest::cluster(1).with_eval_budget(10))
                .unwrap_err()
                .code(),
            "unsupported"
        );
        assert_eq!(
            corpus.execute(&QueryRequest::knn(2)).unwrap_err(),
            QueryError::MissingProbe
        );
    }

    #[test]
    fn requests_round_trip_through_json() {
        let probe = chain(&["Gather", "Scan_A"]);
        let requests = [
            QueryRequest::knn(5).with_probe(probe.clone()),
            QueryRequest::knn(5).with_probe(probe.clone()).approx(0),
            QueryRequest::knn(5).with_probe(probe.clone()).approx(64),
            QueryRequest::radius(3)
                .with_probe(probe)
                .with_threads(4)
                .with_eval_budget(1000),
            QueryRequest::cluster(2).with_threads(2),
            QueryRequest::stats(),
        ];
        for request in requests {
            let text = request.to_json_value().to_compact();
            let parsed = QueryRequest::from_json(&text, None).unwrap();
            assert_eq!(parsed, request, "{text}");
            // An endpoint-supplied kind must agree with the body.
            assert_eq!(
                QueryRequest::from_json(&text, Some(request.kind.name())).unwrap(),
                request
            );
            let other = if request.kind.name() == "stats" {
                "knn"
            } else {
                "stats"
            };
            assert_eq!(
                QueryRequest::from_json(&text, Some(other))
                    .unwrap_err()
                    .code(),
                "malformed"
            );
        }
        // The endpoint kind fills in an absent "query" member.
        let parsed = QueryRequest::from_json("{\"k\": 2}", Some("knn")).unwrap();
        assert_eq!(parsed.kind, QueryKind::Knn { k: 2 });
        assert!(QueryRequest::from_json("{\"k\": 2}", None).is_err());
        assert!(QueryRequest::from_json("{\"query\": \"knn\", \"kk\": 2}", None).is_err());
        assert!(QueryRequest::from_json("not json", Some("stats")).is_err());

        // Mode parsing: "exact" is the spelled-out default; "candidates"
        // belongs to approx mode alone; anything else is malformed.
        let exact =
            QueryRequest::from_json("{\"k\": 2, \"mode\": \"exact\"}", Some("knn")).unwrap();
        assert_eq!(exact.mode, QueryMode::Exact);
        let approx =
            QueryRequest::from_json("{\"k\": 2, \"mode\": \"approx\"}", Some("knn")).unwrap();
        assert_eq!(approx.mode, QueryMode::Approx { candidates: 0 });
        for bad in [
            "{\"k\": 2, \"mode\": \"fuzzy\"}",
            "{\"k\": 2, \"mode\": 3}",
            "{\"k\": 2, \"candidates\": 8}",
            "{\"k\": 2, \"mode\": \"exact\", \"candidates\": 8}",
        ] {
            assert_eq!(
                QueryRequest::from_json(bad, Some("knn"))
                    .unwrap_err()
                    .code(),
                "malformed",
                "{bad}"
            );
        }
    }

    #[test]
    fn responses_serialize_the_one_wire_schema() {
        let corpus = corpus();
        let probe = chain(&["Gather", "Scan_A"]);
        let response = corpus
            .execute(&QueryRequest::knn(2).with_probe(probe))
            .unwrap()
            .with_epoch(7);
        let doc = response.to_json_value();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("query").unwrap().as_str(), Some("knn"));
        assert_eq!(doc.get("epoch").unwrap().as_int(), Some(7));
        let cost = doc.get("cost").unwrap();
        assert_eq!(
            cost.get("ted_evals").unwrap().as_int(),
            Some(response.cost.ted_evals as i64)
        );
        // The cost object round-trips exactly.
        assert_eq!(QueryCost::from_json_value(cost).unwrap(), response.cost);
        let nontrivial = QueryCost {
            ted_evals: 9,
            partial_evals: 4,
            candidates_considered: 16,
        };
        let text = nontrivial.to_json_value().to_compact();
        let parsed = uplan_core::formats::json::parse(&text).unwrap();
        assert_eq!(QueryCost::from_json_value(&parsed).unwrap(), nontrivial);
        assert_eq!(nontrivial.full_evals(), 5);
        let matches = doc.get("matches").unwrap().as_array().unwrap();
        assert_eq!(matches.len(), 2);
        assert!(matches[0].get("id").is_some() && matches[0].get("distance").is_some());

        let stats = corpus.execute(&QueryRequest::stats()).unwrap();
        let doc = stats.to_json_value();
        assert_eq!(
            doc.get("stats").unwrap().get("distinct").unwrap().as_int(),
            Some(corpus.len() as i64)
        );

        let err = QueryError::BudgetExceeded {
            budget: 10,
            spent: 10,
        };
        let doc = err.to_json_value();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(doc.get("error").unwrap().as_str(), Some("budget-exceeded"));
        assert_eq!(doc.get("budget").unwrap().as_int(), Some(10));
    }
}
