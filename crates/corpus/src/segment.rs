//! The append-only segment store: a corpus persisted as a directory of
//! immutable segment files plus one small manifest.
//!
//! ```text
//! corpus.d/
//! ├── manifest.uplm      segment list, fingerprint ranges, feature
//! │                      summaries, full symbol chain  (atomically
//! │                      rewritten on every append)
//! ├── seg-00000.upls     immutable: CRC-checked plan blocks, symbol
//! ├── seg-00001.upls     delta, offsets, fingerprints, features,
//! └── seg-00002.upls     BK subtree topology
//! ```
//!
//! Three properties the monolithic document cannot offer:
//!
//! * **Append is O(batch).** [`SegmentStore::append`] ingests the batch,
//!   writes the novel plans as one new segment file, and atomically
//!   rewrites only the manifest. Existing segments are never reopened,
//!   so appending 1k plans to a 1M-plan store costs the same as to an
//!   empty one.
//! * **Open is lazy.** [`SegmentStore::open`] decodes manifests, tails
//!   and topology eagerly but leaves plan payloads as offset-addressed
//!   bytes: the corpus is queryable in milliseconds and each plan body
//!   decodes at most once, on first touch (block CRC verified then).
//!   Query answers and counted TED evaluations are identical to the
//!   in-RAM corpus — laziness changes *when* bytes decode, never what a
//!   traversal does.
//! * **Damage is local.** Every file is CRC-trailed; the segment is the
//!   recovery unit. [`SegmentStore::salvage`] keeps every intact
//!   segment's plans and drops damaged ones whole — and because the
//!   manifest duplicates the full symbol chain, a dead segment does not
//!   take later segments' symbols with it. (Only a dead manifest *and* a
//!   dead earlier segment cascade: the chain suffix is then gone and
//!   later segments cannot decode.)
//!
//! Byte determinism carries over from ingest: appending the same batch at
//! any thread count produces byte-identical segment files and manifests,
//! which is what lets CI diff whole store directories across thread
//! counts.

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use uplan_core::fingerprint::{Fingerprint, FingerprintOptions};
use uplan_core::formats::binary::CHECKSUM_BLOCK_PLANS;
pub use uplan_core::formats::segment::SegmentSections;
use uplan_core::formats::segment::{
    decode_manifest, decode_plan_at, encode_manifest, parse_segment, verify_block, Manifest,
    SegmentBuilder, SegmentFinish, SegmentMeta, SegmentShardEdges, SegmentView,
};
use uplan_core::{Error, Result, Symbol, UnifiedPlan};

use crate::features::{FeatureVector, FEATURE_DIM};
use crate::shard::LoadedPlan;
use crate::{options_flags, shard_index, ShardedCorpus};

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.uplm";

/// File name of a segment, by id.
pub fn segment_file(id: u32) -> String {
    format!("seg-{id:05}.upls")
}

/// The decoded-bytes backing of a lazily opened corpus: every shard's
/// [`crate::shard::PlanStore`] shares one source through an [`Arc`], so a
/// plan body decodes at most once corpus-wide.
#[derive(Debug)]
pub(crate) struct SegmentSource {
    /// The full symbol chain (from the manifest) every segment's plan
    /// bodies reference.
    symbols: Vec<Symbol>,
    segments: Vec<SegmentData>,
}

#[derive(Debug)]
struct SegmentData {
    /// The raw segment file.
    bytes: Vec<u8>,
    /// Absolute offset of each plan body.
    offsets: Vec<u32>,
    /// Byte length of each plan body.
    lens: Vec<u32>,
    /// Checksum-block extents, from the parse.
    blocks: Vec<(u32, u32)>,
    /// One flag per block: its CRC has been verified. Lazily set before
    /// the first plan of the block decodes.
    verified: Vec<OnceLock<()>>,
}

impl SegmentSource {
    /// Decodes plan `idx` of segment `seg`, verifying its checksum block
    /// first (once per block).
    ///
    /// Panics on a CRC or decode failure: the store was opened strictly,
    /// so bytes that die *between* open and first touch mean concurrent
    /// external damage — there is no good value to return mid-query.
    /// `repro corpus salvage` is the lenient path for damaged stores.
    pub(crate) fn load(&self, seg: u32, idx: u32) -> LoadedPlan {
        let data = &self.segments[seg as usize];
        let block = idx as usize / CHECKSUM_BLOCK_PLANS as usize;
        data.verified[block].get_or_init(|| {
            verify_block(&data.bytes, data.blocks[block]).unwrap_or_else(|e| {
                panic!(
                    "segment {seg} plan block {block} failed verification on lazy decode \
                     ({e}); the store changed after open — run `repro corpus salvage`"
                )
            });
        });
        let plan = decode_plan_at(
            &data.bytes,
            data.offsets[idx as usize],
            data.lens[idx as usize],
            &self.symbols,
        )
        .unwrap_or_else(|e| {
            panic!(
                "segment {seg} plan {idx} failed to decode after block verification ({e}); \
                 run `repro corpus salvage`"
            )
        });
        LoadedPlan::new(plan)
    }
}

/// Per-segment pruning summary the corpus keeps for its query path: the
/// segment's dense global-id range and the per-dimension bounds of its
/// feature vectors. [`ShardedCorpus::knn_query_approx`] skips a whole
/// segment's L1 scan when the bound proves nothing in it can improve the
/// shortlist.
#[derive(Debug, Clone)]
pub(crate) struct SegmentHint {
    /// First global id of the segment (segments cover a contiguous prefix
    /// of the id space, in order).
    pub(crate) start: usize,
    /// Plans in the segment.
    pub(crate) count: usize,
    pub(crate) feature_min: FeatureVector,
    pub(crate) feature_max: FeatureVector,
}

impl SegmentHint {
    /// A lower bound on the L1 feature distance from `probe` to *every*
    /// plan in the segment: per dimension, the gap between the probe and
    /// the segment's `[min, max]` interval.
    pub(crate) fn l1_lower_bound(&self, probe: &FeatureVector) -> u64 {
        self.feature_min
            .iter()
            .zip(&self.feature_max)
            .zip(probe)
            .map(|((&lo, &hi), &p)| u64::from(if p < lo { lo - p } else { p.saturating_sub(hi) }))
            .sum()
    }
}

/// What one [`SegmentStore::append`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppendReport {
    /// Plans offered in the batch.
    pub observed: usize,
    /// Fingerprint-novel plans stored (and written to the new segment).
    pub admitted: usize,
    /// Batch plans that were fingerprint duplicates.
    pub duplicates: usize,
    /// Id of the segment written — `None` when the whole batch was
    /// duplicates (nothing to persist, manifest untouched).
    pub segment_id: Option<u32>,
    /// Bytes of the new segment file (0 when none was written).
    pub segment_bytes: usize,
}

/// What a [`SegmentStore::compact`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactReport {
    /// Segments merged away.
    pub segments_before: usize,
    /// Segment-file bytes before.
    pub bytes_before: usize,
    /// Segment-file bytes after (one segment, or zero for an empty store).
    pub bytes_after: usize,
}

/// What [`SegmentStore::salvage`] recovered from a damaged store
/// directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentSalvageReport {
    /// Whether the manifest itself was intact. When it is, each segment
    /// stands alone (the manifest chain decodes every survivor); when it
    /// is not, the chain is rebuilt from segment deltas and a damaged
    /// segment additionally drops every later segment that needs its
    /// symbols.
    pub manifest_ok: bool,
    /// Segment files the store declared (manifest entries, or `seg-*.upls`
    /// files found when the manifest is gone).
    pub segments_declared: usize,
    /// Segments recovered whole.
    pub segments_recovered: usize,
    /// Plans declared by the manifest (or by the parseable segment
    /// headers when the manifest is gone).
    pub declared: u64,
    /// Distinct plans recovered into the returned corpus.
    pub recovered: usize,
    /// Declared plans lost with dropped segments.
    pub dropped: u64,
    /// First failure encountered (`None` for an intact store).
    pub error: Option<String>,
    /// `true` when the metric index was rebuilt rather than adopted —
    /// always, once any segment dropped (cross-segment BK node ids are
    /// invalidated by any gap); `false` only for the intact fast path.
    pub index_rebuilt: bool,
}

/// Census row for one segment (`repro corpus stats`, serve `/stats`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentCensus {
    /// Segment id.
    pub id: u32,
    /// Plans in the segment.
    pub plans: u64,
    /// On-disk bytes by section.
    pub bytes: SegmentSections,
}

/// An open append-only segment store: the live corpus plus the directory
/// that persists it.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    manifest: Manifest,
    corpus: ShardedCorpus,
    census: Vec<SegmentCensus>,
}

fn read_err(path: &Path, e: impl std::fmt::Display) -> Error {
    Error::Semantic(format!("cannot read {}: {e}", path.display()))
}

fn write_err(path: &Path, e: impl std::fmt::Display) -> Error {
    Error::Semantic(format!("cannot write {}: {e}", path.display()))
}

/// Writes `bytes` to `path` atomically: a unique temp file in the same
/// directory, then rename. Readers see either the old file or the new one,
/// never a torn write.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| write_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        write_err(path, e)
    })
}

impl SegmentStore {
    /// `true` when `path` looks like a segment-store directory (a
    /// directory containing a manifest). The format-sniffing counterpart
    /// of the binary magic check.
    pub fn is_store_dir(path: impl AsRef<Path>) -> bool {
        path.as_ref().join(MANIFEST_FILE).is_file()
    }

    /// Creates a store at `dir` (made if missing) persisting `corpus`:
    /// all current plans become segment 0. An empty corpus writes just a
    /// manifest.
    pub fn create(dir: impl Into<PathBuf>, corpus: ShardedCorpus) -> Result<SegmentStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| write_err(&dir, e))?;
        let mut corpus = corpus;
        // The store re-derives hints segment by segment.
        corpus.segment_hints.clear();
        let mut store = SegmentStore {
            manifest: Manifest {
                fingerprint_flags: options_flags(corpus.options()),
                shard_count: corpus.shard_count() as u32,
                feature_dim: FEATURE_DIM as u32,
                symbols: Vec::new(),
                segments: Vec::new(),
            },
            census: Vec::new(),
            dir,
            corpus,
        };
        let zeros = vec![0usize; store.corpus.shard_count()];
        store.write_segment(0, 0, &zeros)?;
        store.write_manifest()?;
        Ok(store)
    }

    /// Opens a store lazily: manifest, segment tails (offsets,
    /// fingerprints, features, BK topology) decode eagerly; plan payloads
    /// stay undecoded until first touch. Strict — any CRC or structural
    /// mismatch is an error ([`SegmentStore::salvage`] is the lenient
    /// path).
    pub fn open(dir: impl Into<PathBuf>) -> Result<SegmentStore> {
        Self::open_with_options(dir, FingerprintOptions::default())
    }

    /// [`SegmentStore::open`] with explicit fingerprint options. Unlike
    /// the monolithic loader (which silently rebuilds on a flags
    /// mismatch), a mismatch here is an error: rebuilding would decode
    /// every plan, which defeats the lazy open — convert explicitly
    /// instead.
    pub fn open_with_options(
        dir: impl Into<PathBuf>,
        options: FingerprintOptions,
    ) -> Result<SegmentStore> {
        let dir = dir.into();
        let manifest_path = dir.join(MANIFEST_FILE);
        let bytes = std::fs::read(&manifest_path).map_err(|e| read_err(&manifest_path, e))?;
        let manifest = decode_manifest(&bytes)?;
        if manifest.fingerprint_flags != options_flags(options) {
            return Err(Error::Semantic(
                "segment store was written under different fingerprint options; \
                 load it with the options it was created with"
                    .into(),
            ));
        }
        if manifest.feature_dim as usize != FEATURE_DIM {
            return Err(Error::Semantic(format!(
                "segment store has {}-wide feature vectors, this build computes {FEATURE_DIM}",
                manifest.feature_dim
            )));
        }
        let shard_count = manifest.shard_count as usize;
        if !shard_count.is_power_of_two() {
            return Err(Error::Semantic(format!(
                "segment store has a non-power-of-two shard count {shard_count}"
            )));
        }

        // Read and parse every segment (metadata only — no plan bodies).
        let mut views: Vec<(SegmentView, Vec<u8>)> = Vec::with_capacity(manifest.segments.len());
        for meta in &manifest.segments {
            let path = dir.join(segment_file(meta.id));
            let bytes = std::fs::read(&path).map_err(|e| read_err(&path, e))?;
            let view = parse_segment(&bytes)?;
            check_meta(&manifest, meta, &view)?;
            views.push((view, bytes));
        }

        let source = Arc::new(SegmentSource {
            symbols: manifest.symbols.clone(),
            segments: views
                .iter()
                .map(|(view, bytes)| SegmentData {
                    bytes: bytes.clone(),
                    offsets: view.plan_offsets.clone(),
                    lens: view.plan_lens.clone(),
                    blocks: view.blocks.clone(),
                    verified: view.blocks.iter().map(|_| OnceLock::new()).collect(),
                })
                .collect(),
        });

        let mut corpus = ShardedCorpus::with_options_and_shards(options, shard_count);
        for shard in &mut corpus.shards {
            shard.store = crate::shard::PlanStore::lazy(Arc::clone(&source));
        }
        let mut edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); shard_count];
        let mut census = Vec::with_capacity(views.len());
        for (seg_idx, (view, _)) in views.iter().enumerate() {
            let start = corpus.directory.len();
            let before: Vec<usize> = corpus.shards.iter().map(|s| s.len()).collect();
            for idx in 0..view.plan_count as usize {
                let fp = Fingerprint(view.fingerprints[idx]);
                let s = shard_index(fp, corpus.shard_bits);
                if !corpus.shards[s].dedup.insert(fp) {
                    return Err(Error::Semantic(format!(
                        "segment {} repeats fingerprint {fp:?}",
                        view.id
                    )));
                }
                let mut row = [0u32; FEATURE_DIM];
                row.copy_from_slice(&view.features[idx * FEATURE_DIM..(idx + 1) * FEATURE_DIM]);
                let global = u32::try_from(corpus.directory.len()).expect("corpus overflow");
                let local =
                    corpus.shards[s].store_lazy(fp, global, row, seg_idx as u32, idx as u32);
                corpus.directory.push((s as u32, local));
            }
            for (s, group) in view.shards.iter().enumerate() {
                let routed = corpus.shards[s].len() - before[s];
                if group.base != before[s] as u64 || group.count != routed as u64 {
                    return Err(Error::Semantic(format!(
                        "segment {} BK topology disagrees with fingerprint routing on shard {s}",
                        view.id
                    )));
                }
                edges[s].extend_from_slice(&group.edges);
            }
            let meta = &manifest.segments[seg_idx];
            corpus.segment_hints.push(SegmentHint {
                start,
                count: view.plan_count as usize,
                feature_min: vector_of(&meta.feature_min),
                feature_max: vector_of(&meta.feature_max),
            });
            corpus.operations += view.operations as usize;
            corpus.max_depth = corpus.max_depth.max(view.max_depth as usize);
            census.push(SegmentCensus {
                id: view.id,
                plans: view.plan_count,
                bytes: view.sections,
            });
        }
        for (shard, edges) in corpus.shards.iter_mut().zip(&edges) {
            shard.adopt_index(edges).map_err(Error::Semantic)?;
        }
        corpus.observed = corpus.directory.len() as u64;
        corpus.persisted_index = true;
        Ok(SegmentStore {
            dir,
            manifest,
            corpus,
            census,
        })
    }

    /// The live corpus.
    pub fn corpus(&self) -> &ShardedCorpus {
        &self.corpus
    }

    /// Consumes the store, keeping the (possibly still lazy) corpus.
    pub fn into_corpus(self) -> ShardedCorpus {
        self.corpus
    }

    /// The store's manifest, as last written.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Per-segment on-disk census, in segment order.
    pub fn census(&self) -> &[SegmentCensus] {
        &self.census
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Ingests a batch and persists the novel plans as one new segment,
    /// atomically rewriting the manifest. Cost is O(batch): existing
    /// segment files are neither read nor written. Deterministic — the
    /// same batch produces byte-identical files at any `threads`.
    pub fn append(&mut self, plans: &[UnifiedPlan], threads: usize) -> Result<AppendReport> {
        let before: Vec<usize> = self.corpus.shards.iter().map(|s| s.len()).collect();
        let start = self.corpus.len();
        let admitted = self.corpus.ingest_parallel(plans, threads);
        let (segment_id, segment_bytes) = match self.write_segment_next(start, &before)? {
            Some((id, bytes)) => {
                self.write_manifest()?;
                (Some(id), bytes)
            }
            None => (None, 0),
        };
        Ok(AppendReport {
            observed: plans.len(),
            admitted,
            duplicates: plans.len() - admitted,
            segment_id,
            segment_bytes,
        })
    }

    /// Merges every segment into one fresh segment (restarting the symbol
    /// chain) and drops the old files. This is the counterweight to
    /// append-only growth: many small segments cost per-segment overhead
    /// on open and query, and the chain keeps symbols no live segment
    /// references.
    pub fn compact(&mut self) -> Result<CompactReport> {
        let segments_before = self.manifest.segments.len();
        let bytes_before = self.census.iter().map(|c| c.bytes.total).sum();
        let old: Vec<u32> = self.manifest.segments.iter().map(|m| m.id).collect();
        // The new segment takes a fresh id so a crash mid-compact leaves
        // the old manifest pointing at intact old files.
        let next_id = self.manifest.segments.last().map_or(0, |m| m.id + 1);
        self.manifest.symbols.clear();
        self.manifest.segments.clear();
        self.census.clear();
        self.corpus.segment_hints.clear();
        let zeros = vec![0usize; self.corpus.shard_count()];
        self.write_segment(next_id, 0, &zeros)?;
        self.write_manifest()?;
        for id in old {
            let _ = std::fs::remove_file(self.dir.join(segment_file(id)));
        }
        Ok(CompactReport {
            segments_before,
            bytes_before,
            bytes_after: self.census.iter().map(|c| c.bytes.total).sum(),
        })
    }

    /// Lenient open of a damaged store: recovers every segment that
    /// parses, CRC-verifies and decodes whole; drops damaged segments
    /// entirely (the segment is the recovery unit) and rebuilds the
    /// metric index from the survivors. Errors only when the directory
    /// itself is unreadable.
    pub fn salvage(
        dir: impl AsRef<Path>,
        options: FingerprintOptions,
    ) -> Result<(ShardedCorpus, SegmentSalvageReport)> {
        let dir = dir.as_ref();
        std::fs::read_dir(dir).map_err(|e| read_err(dir, e))?;
        let manifest = std::fs::read(dir.join(MANIFEST_FILE))
            .ok()
            .and_then(|bytes| decode_manifest(&bytes).ok());
        let mut error: Option<String> = None;
        let note = |e: String, error: &mut Option<String>| {
            if error.is_none() {
                *error = Some(e);
            }
        };

        // The segment files to try: the manifest's list, or a directory
        // scan (ordered by id) when the manifest is gone.
        let ids: Vec<u32> = match &manifest {
            Some(m) => m.segments.iter().map(|s| s.id).collect(),
            None => {
                note("manifest missing or corrupt".into(), &mut error);
                let mut ids: Vec<u32> = std::fs::read_dir(dir)
                    .map_err(|e| read_err(dir, e))?
                    .filter_map(|entry| {
                        let name = entry.ok()?.file_name();
                        let name = name.to_str()?;
                        let id = name.strip_prefix("seg-")?.strip_suffix(".upls")?;
                        id.parse().ok()
                    })
                    .collect();
                ids.sort_unstable();
                ids
            }
        };

        // Parse pass: views of the segments that read and parse.
        let mut parsed: Vec<Option<(SegmentView, Vec<u8>)>> = Vec::with_capacity(ids.len());
        for &id in &ids {
            let path = dir.join(segment_file(id));
            let outcome = std::fs::read(&path)
                .map_err(|e| read_err(&path, e))
                .and_then(|bytes| Ok((parse_segment(&bytes)?, bytes)));
            match outcome {
                Ok(pair) => parsed.push(Some(pair)),
                Err(e) => {
                    note(format!("segment {id}: {e}"), &mut error);
                    parsed.push(None);
                }
            }
        }
        let declared: u64 = match &manifest {
            Some(m) => m.segments.iter().map(|s| s.plan_count).sum(),
            None => parsed
                .iter()
                .flatten()
                .map(|(view, _)| view.plan_count)
                .sum(),
        };

        // Recovery pass. With a manifest the full chain decodes every
        // survivor independently; without one the chain rebuilds from
        // segment deltas, so a dropped segment cascades onto later
        // segments whose symbols it carried.
        let shard_count = match (&manifest, parsed.iter().flatten().next()) {
            (Some(m), _) => m.shard_count as usize,
            (None, Some((view, _))) => view.shard_count as usize,
            (None, None) => crate::DEFAULT_SHARDS,
        };
        let mut corpus = ShardedCorpus::with_options_and_shards(options, shard_count);
        let mut chain: Vec<Symbol> = Vec::new();
        let mut segments_recovered = 0usize;
        for (slot, pair) in parsed.iter().enumerate() {
            let Some((view, bytes)) = pair else { continue };
            let symbols: &[Symbol] = match &manifest {
                Some(m) => {
                    if let Err(e) = check_meta(m, &m.segments[slot], view) {
                        note(format!("segment {}: {e}", view.id), &mut error);
                        continue;
                    }
                    &m.symbols
                }
                None => {
                    if view.symbols_base as usize != chain.len() {
                        note(
                            format!(
                                "segment {}: symbol chain broken by an earlier dropped \
                                 segment (cascade)",
                                view.id
                            ),
                            &mut error,
                        );
                        continue;
                    }
                    chain.extend_from_slice(&view.delta);
                    &chain
                }
            };
            // Strict whole-segment decode: verify every block, decode
            // every plan; any failure drops the segment.
            let plans: Result<Vec<UnifiedPlan>> = (0..view.plan_count as usize)
                .map(|idx| {
                    let block = idx / CHECKSUM_BLOCK_PLANS as usize;
                    if idx % CHECKSUM_BLOCK_PLANS as usize == 0 {
                        verify_block(bytes, view.blocks[block])?;
                    }
                    decode_plan_at(bytes, view.plan_offsets[idx], view.plan_lens[idx], symbols)
                })
                .collect();
            match plans {
                Ok(plans) => {
                    segments_recovered += 1;
                    for plan in plans {
                        corpus.insert(plan);
                    }
                }
                Err(e) => note(format!("segment {}: {e}", view.id), &mut error),
            }
        }
        let recovered = corpus.len();
        let report = SegmentSalvageReport {
            manifest_ok: manifest.is_some(),
            segments_declared: ids.len(),
            segments_recovered,
            declared,
            recovered,
            dropped: declared.saturating_sub(recovered as u64),
            index_rebuilt: error.is_some() || manifest.is_none(),
            error,
        };
        Ok((corpus, report))
    }

    /// Writes globals `start..len` as the next segment in sequence.
    fn write_segment_next(
        &mut self,
        start: usize,
        counts_before: &[usize],
    ) -> Result<Option<(u32, usize)>> {
        let id = self.manifest.segments.last().map_or(0, |m| m.id + 1);
        self.write_segment(id, start, counts_before)
    }

    /// Writes globals `start..corpus.len()` as segment `id` and records
    /// it in the in-memory manifest (the caller persists the manifest).
    /// No-op returning `None` when the range is empty.
    fn write_segment(
        &mut self,
        id: u32,
        start: usize,
        counts_before: &[usize],
    ) -> Result<Option<(u32, usize)>> {
        let end = self.corpus.len();
        if start == end {
            return Ok(None);
        }
        let corpus = &self.corpus;
        let mut builder = SegmentBuilder::new(&self.manifest.symbols);
        let mut fingerprints = Vec::with_capacity(end - start);
        let mut features = Vec::with_capacity((end - start) * FEATURE_DIM);
        let mut feature_min = [u32::MAX; FEATURE_DIM];
        let mut feature_max = [0u32; FEATURE_DIM];
        let mut min_fp = u64::MAX;
        let mut max_fp = 0u64;
        let mut operations = 0u64;
        let mut max_depth = 0u32;
        for global in start..end {
            let plan = corpus.plan(global);
            builder.push(plan)?;
            let fp = corpus.fingerprint(global).0;
            min_fp = min_fp.min(fp);
            max_fp = max_fp.max(fp);
            fingerprints.push(fp);
            let (s, local) = corpus.directory[global];
            let row = &corpus.shards[s as usize].features[local as usize];
            for d in 0..FEATURE_DIM {
                feature_min[d] = feature_min[d].min(row[d]);
                feature_max[d] = feature_max[d].max(row[d]);
            }
            features.extend_from_slice(row);
            operations += plan.operation_count() as u64;
            max_depth = max_depth.max(plan.root.as_ref().map_or(0, |r| r.depth()) as u32);
        }
        let shards: Vec<SegmentShardEdges> = corpus
            .shards
            .iter()
            .zip(counts_before)
            .map(|(shard, &base)| {
                let all = shard.index.edges();
                let new = if base == 0 {
                    &all[..]
                } else {
                    &all[base - 1..]
                };
                SegmentShardEdges {
                    base: base as u64,
                    count: (shard.len() - base) as u64,
                    edges: new.to_vec(),
                }
            })
            .collect();
        let finish = SegmentFinish {
            id,
            fingerprint_flags: self.manifest.fingerprint_flags,
            shard_count: corpus.shard_count() as u32,
            fingerprints,
            feature_dim: FEATURE_DIM as u32,
            features,
            operations,
            max_depth,
            shards,
        };
        let (bytes, delta) = builder.finish(&finish);
        write_atomic(&self.dir.join(segment_file(id)), &bytes)?;
        let symbols_base = self.manifest.symbols.len() as u32;
        self.manifest.symbols.extend_from_slice(&delta);
        self.manifest.segments.push(SegmentMeta {
            id,
            plan_count: (end - start) as u64,
            symbols_base,
            symbols_len: delta.len() as u32,
            operations,
            max_depth,
            min_fingerprint: min_fp,
            max_fingerprint: max_fp,
            feature_min: feature_min.to_vec(),
            feature_max: feature_max.to_vec(),
        });
        // Section census from a re-parse of what was just written — also a
        // cheap self-check that the file round-trips.
        let view = parse_segment(&bytes)?;
        self.census.push(SegmentCensus {
            id,
            plans: (end - start) as u64,
            bytes: view.sections,
        });
        self.corpus.segment_hints.push(SegmentHint {
            start,
            count: end - start,
            feature_min,
            feature_max,
        });
        Ok(Some((id, bytes.len())))
    }

    fn write_manifest(&self) -> Result<()> {
        write_atomic(
            &self.dir.join(MANIFEST_FILE),
            &encode_manifest(&self.manifest),
        )
    }
}

fn vector_of(values: &[u32]) -> FeatureVector {
    let mut row = [0u32; FEATURE_DIM];
    row.copy_from_slice(values);
    row
}

/// Structural agreement between a manifest entry and the segment file it
/// points at — any mismatch means one of the two was damaged or swapped.
fn check_meta(manifest: &Manifest, meta: &SegmentMeta, view: &SegmentView) -> Result<()> {
    let chain_slice = manifest
        .symbols
        .get(meta.symbols_base as usize..(meta.symbols_base + meta.symbols_len) as usize);
    let ok = view.id == meta.id
        && view.plan_count == meta.plan_count
        && view.symbols_base == meta.symbols_base
        && view.delta.len() == meta.symbols_len as usize
        && view.operations == meta.operations
        && view.max_depth == meta.max_depth
        && view.fingerprint_flags == manifest.fingerprint_flags
        && view.shard_count == manifest.shard_count
        && view.feature_dim == manifest.feature_dim
        && chain_slice == Some(view.delta.as_slice());
    if ok {
        Ok(())
    } else {
        Err(Error::Semantic(format!(
            "segment {} disagrees with its manifest entry",
            view.id
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use uplan_core::PlanNode;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uplan-segstore-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn chain(names: &[&str]) -> UnifiedPlan {
        let mut node: Option<PlanNode> = None;
        for name in names.iter().rev() {
            let mut n = PlanNode::producer(*name);
            if let Some(child) = node.take() {
                n = PlanNode::executor(*name).with_child(child);
            }
            node = Some(n);
        }
        UnifiedPlan::with_root(node.unwrap())
    }

    /// Distinct synthetic plans `start..start + n` — wrapper subsets over
    /// distinct scans, same construction as the facade's test population.
    fn stream(start: usize, n: usize) -> Vec<UnifiedPlan> {
        let wrappers = ["Gather", "Collect", "Exchange", "Sort", "Hash", "Top_N"];
        let scans = [
            "Seq_Scan",
            "Index_Scan",
            "Bitmap_Scan",
            "Sample_Scan",
            "Range_Scan",
            "Cluster_Scan",
            "Backward_Scan",
        ];
        (start..start + n)
            .map(|i| {
                let mut names = vec![scans[i % 7].to_string()];
                let mut bits = i / 7;
                for w in wrappers {
                    if bits & 1 == 1 {
                        names.insert(0, w.to_string());
                    }
                    bits >>= 1;
                }
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                chain(&refs)
            })
            .collect()
    }

    fn dir_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
        std::fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect()
    }

    fn assert_same_answers(lazy: &ShardedCorpus, eager: &ShardedCorpus) {
        for probe in [
            chain(&["Seq_Scan"]),
            chain(&["Gather", "Sort", "Index_Scan"]),
            chain(&["Exchange", "Hash", "Bitmap_Scan"]),
        ] {
            assert_eq!(lazy.knn_query(&probe, 5), eager.knn_query(&probe, 5));
            assert_eq!(lazy.radius_query(&probe, 3), eager.radius_query(&probe, 3));
            assert_eq!(
                lazy.knn_query_approx(&probe, 5, 32),
                eager.knn_query_approx(&probe, 5, 32)
            );
        }
    }

    #[test]
    fn create_open_roundtrip_is_lazy_and_answers_identically() {
        let dir = tmp_dir("roundtrip");
        let mut eager = ShardedCorpus::new();
        eager.ingest_parallel(&stream(0, 120), 2);
        SegmentStore::create(&dir, eager.clone()).unwrap();

        let store = SegmentStore::open(&dir).unwrap();
        let lazy = store.corpus();
        assert_eq!(lazy.len(), eager.len());
        // Open decoded nothing; stats never force a decode.
        assert_eq!(lazy.decoded_plans(), 0);
        let mut expected_stats = eager.stats();
        expected_stats.observed = eager.len() as u64;
        expected_stats.duplicates = 0;
        assert_eq!(lazy.stats(), expected_stats);
        assert_eq!(lazy.decoded_plans(), 0);
        assert!(lazy.has_persisted_index());
        assert_eq!(lazy.index_evals(), 0);
        // A bounded approximate query decodes only its candidate set —
        // the feature pre-filter runs on eager metadata.
        let _ = lazy.knn_query_approx(&chain(&["Seq_Scan"]), 3, 8);
        let touched = lazy.decoded_plans();
        assert!(
            touched > 0 && touched < lazy.len(),
            "bounded query touched {touched} of {}",
            lazy.len()
        );
        // Queries answer identically (matches AND counted evals).
        assert_same_answers(lazy, &eager);
        // Full identity, payload for payload.
        for (id, plan) in lazy.iter() {
            assert_eq!(plan, eager.plan(id));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_is_deterministic_across_thread_counts() {
        let batches = [stream(0, 60), stream(40, 80), stream(100, 90)];
        let dirs = [tmp_dir("det-1"), tmp_dir("det-4")];
        for (dir, threads) in dirs.iter().zip([1usize, 4]) {
            let mut store = SegmentStore::create(dir, ShardedCorpus::new()).unwrap();
            for batch in &batches {
                store.append(batch, threads).unwrap();
            }
        }
        assert_eq!(dir_files(&dirs[0]), dir_files(&dirs[1]));
        for dir in &dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn append_then_reopen_matches_monolithic_ingest() {
        let dir = tmp_dir("append");
        let mut store = SegmentStore::create(&dir, ShardedCorpus::new()).unwrap();
        let first = store.append(&stream(0, 70), 2).unwrap();
        assert_eq!(first.admitted, 70);
        assert_eq!(first.segment_id, Some(0));
        // Overlapping batch: duplicates are not re-persisted.
        let second = store.append(&stream(50, 70), 2).unwrap();
        assert_eq!(second.admitted, 50);
        assert_eq!(second.duplicates, 20);
        assert_eq!(second.segment_id, Some(1));
        // An all-duplicate batch writes nothing.
        let third = store.append(&stream(0, 30), 1).unwrap();
        assert_eq!(third.admitted, 0);
        assert_eq!(third.segment_id, None);
        assert_eq!(store.census().len(), 2);
        drop(store);

        let mut eager = ShardedCorpus::new();
        eager.ingest_parallel(&stream(0, 120), 2);
        let reopened = SegmentStore::open(&dir).unwrap().into_corpus();
        assert_eq!(reopened.len(), eager.len());
        for (id, plan) in eager.iter() {
            assert_eq!(reopened.plan(id), plan);
            assert_eq!(reopened.fingerprint(id), eager.fingerprint(id));
        }
        assert_same_answers(&reopened, &eager);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn appending_to_a_lazily_opened_store_stays_queryable() {
        let dir = tmp_dir("lazy-append");
        let mut store = SegmentStore::create(&dir, ShardedCorpus::new()).unwrap();
        store.append(&stream(0, 80), 2).unwrap();
        drop(store);
        let mut store = SegmentStore::open(&dir).unwrap();
        store.append(&stream(80, 60), 4).unwrap();
        let mut eager = ShardedCorpus::new();
        eager.ingest_parallel(&stream(0, 140), 1);
        assert_eq!(store.corpus().len(), eager.len());
        assert_same_answers(store.corpus(), &eager);
        // And the directory now reopens to the merged population.
        drop(store);
        let reopened = SegmentStore::open(&dir).unwrap().into_corpus();
        assert_eq!(reopened.len(), eager.len());
        assert_same_answers(&reopened, &eager);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_merges_everything_into_one_segment() {
        let dir = tmp_dir("compact");
        let mut store = SegmentStore::create(&dir, ShardedCorpus::new()).unwrap();
        store.append(&stream(0, 50), 2).unwrap();
        store.append(&stream(50, 50), 2).unwrap();
        store.append(&stream(100, 50), 2).unwrap();
        let report = store.compact().unwrap();
        assert_eq!(report.segments_before, 3);
        assert_eq!(store.census().len(), 1);
        assert_eq!(store.manifest().segments.len(), 1);
        // Old segment files are gone; only the compacted one remains.
        let segment_files = dir_files(&dir)
            .keys()
            .filter(|name| name.ends_with(".upls"))
            .count();
        assert_eq!(segment_files, 1);
        drop(store);
        let mut eager = ShardedCorpus::new();
        eager.ingest_parallel(&stream(0, 150), 2);
        let reopened = SegmentStore::open(&dir).unwrap().into_corpus();
        assert_eq!(reopened.len(), eager.len());
        assert_same_answers(&reopened, &eager);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn salvage_drops_exactly_the_damaged_segment() {
        let dir = tmp_dir("salvage-mid");
        let mut store = SegmentStore::create(&dir, ShardedCorpus::new()).unwrap();
        store.append(&stream(0, 40), 2).unwrap();
        store.append(&stream(40, 40), 2).unwrap();
        store.append(&stream(80, 40), 2).unwrap();
        drop(store);
        // Flip a byte inside segment 1's plan blocks.
        let path = dir.join(segment_file(1));
        let mut bytes = std::fs::read(&path).unwrap();
        let view = parse_segment(&bytes).unwrap();
        bytes[view.plan_offsets[3] as usize] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        // Strict open refuses to serve silently damaged plans... lazily:
        // the open itself succeeds (plan bytes are untouched metadata-wise)
        // but salvage is the honest path and recovers the survivors.
        let (corpus, report) = SegmentStore::salvage(&dir, FingerprintOptions::default()).unwrap();
        assert!(report.manifest_ok);
        assert_eq!(report.segments_declared, 3);
        assert_eq!(report.segments_recovered, 2);
        assert_eq!(report.declared, 120);
        assert_eq!(
            report.recovered, 80,
            "exactly the surviving segments' plans"
        );
        assert_eq!(report.dropped, 40);
        assert!(report.index_rebuilt);
        assert!(report.error.unwrap().contains("segment 1"));
        // Survivors are the plans of segments 0 and 2.
        for plan in stream(0, 40).iter().chain(&stream(80, 40)) {
            assert!(corpus.contains(plan));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn salvage_without_manifest_rebuilds_the_chain_and_cascades() {
        let dir = tmp_dir("salvage-chain");
        let mut store = SegmentStore::create(&dir, ShardedCorpus::new()).unwrap();
        store.append(&stream(0, 40), 2).unwrap();
        store.append(&stream(40, 40), 2).unwrap();
        store.append(&stream(80, 40), 2).unwrap();
        drop(store);
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();

        // Manifest gone, segments intact: the chain rebuilds from the
        // per-segment deltas and everything recovers.
        let (corpus, report) = SegmentStore::salvage(&dir, FingerprintOptions::default()).unwrap();
        assert!(!report.manifest_ok);
        assert_eq!(report.segments_recovered, 3);
        assert_eq!(report.recovered, 120);
        assert_eq!(corpus.len(), 120);

        // Now also damage segment 0 (which carries chain symbols the later
        // segments reference): its loss cascades.
        let path = dir.join(segment_file(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 2;
        bytes[at] ^= 0xff; // tail CRC — the parse itself fails
        std::fs::write(&path, &bytes).unwrap();
        let (corpus, report) = SegmentStore::salvage(&dir, FingerprintOptions::default()).unwrap();
        assert!(!report.manifest_ok);
        assert_eq!(report.segments_recovered, 0, "chain suffix unrecoverable");
        assert_eq!(corpus.len(), 0);
        assert!(report.error.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_mismatched_fingerprint_options() {
        let dir = tmp_dir("options");
        let mut corpus = ShardedCorpus::new();
        corpus.ingest_parallel(&stream(0, 10), 1);
        SegmentStore::create(&dir, corpus).unwrap();
        let other = FingerprintOptions {
            include_configuration_keys: false,
            ..FingerprintOptions::default()
        };
        assert!(SegmentStore::open_with_options(&dir, other).is_err());
        assert!(SegmentStore::open(&dir).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
