//! # Snapshot/delta service: concurrent reads over a corpus that ingests
//!
//! The paper's flywheel is long-lived: engines stream plans in while
//! differential checks query what has been seen. A `&mut ShardedCorpus`
//! cannot serve both at once, so this module splits the store in two:
//!
//! * an **immutable [`CorpusSnapshot`]** — an `Arc`-shared corpus plus the
//!   epoch number it was published at. Queries run against a snapshot and
//!   are automatically consistent: same handle, same answers, same counted
//!   TED evaluations, no matter what ingest does meanwhile.
//! * a **mutable ingest delta** — a bounded queue of plans accepted but
//!   not yet queryable. [`CorpusService::merge`] folds the delta into a
//!   *clone* of the published corpus via the deterministic
//!   [`ShardedCorpus::ingest_parallel`] path and publishes the result as
//!   the next epoch. Because parallel ingest is byte-deterministic even
//!   into a warm corpus, the corpus after any sequence of merges is
//!   byte-identical to one sequential ingest of the same stream.
//!
//! **The read path takes zero locks in steady state.** Each reader thread
//! owns a [`SnapshotReader`] caching `(epoch, Arc<CorpusSnapshot>)`; per
//! request it performs one atomic epoch load and only touches the (brief,
//! publish-only) mutex when the epoch actually advanced. Writers never
//! block readers: a merge clones the corpus off to the side and swaps the
//! `Arc` in at the end.
//!
//! The delta queue is **bounded**: [`CorpusService::submit`] refuses plans
//! beyond the configured capacity with [`ServiceError::Backpressure`],
//! which the HTTP front end maps to 429 — ingest producers are told to
//! back off instead of growing the daemon without limit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use uplan_core::UnifiedPlan;
use uplan_obs::{trace, Counter, Gauge, Histogram, Level};

use crate::segment::{SegmentCensus, SegmentStore};
use crate::{QueryError, QueryRequest, QueryResponse, ShardedCorpus};

/// Default bound on plans accepted but not yet merged.
pub const DEFAULT_PENDING_CAPACITY: usize = 65_536;

/// Global-registry handles for the snapshot/delta lifecycle. The gauges
/// describe "the" service of the process — a daemon runs exactly one;
/// when tests build several, last write wins, which is harmless for
/// instantaneous values.
struct ServiceMetrics {
    /// `uplan_corpus_pending_plans` — delta-queue depth.
    pending: Arc<Gauge>,
    /// `uplan_corpus_epoch` — latest published epoch.
    epoch: Arc<Gauge>,
    /// `uplan_corpus_merges_total` — merges that published a new epoch.
    merges: Arc<Counter>,
    /// `uplan_corpus_merged_plans_total` — plans drained by those merges.
    merged_plans: Arc<Counter>,
    /// `uplan_corpus_merge_duration_us` — wall time per publishing merge.
    merge_duration_us: Arc<Histogram>,
}

fn service_metrics() -> &'static ServiceMetrics {
    static METRICS: OnceLock<ServiceMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = uplan_obs::global();
        ServiceMetrics {
            pending: registry.gauge(
                "uplan_corpus_pending_plans",
                "plans accepted into the delta queue but not yet merged",
            ),
            epoch: registry.gauge("uplan_corpus_epoch", "latest published corpus epoch"),
            merges: registry.counter(
                "uplan_corpus_merges_total",
                "delta merges that published a new epoch",
            ),
            merged_plans: registry.counter(
                "uplan_corpus_merged_plans_total",
                "plans drained from the delta queue by publishing merges",
            ),
            merge_duration_us: registry.histogram(
                "uplan_corpus_merge_duration_us",
                "wall time of publishing merges, microseconds",
            ),
        }
    })
}

/// The delta queue plus the age bookkeeping behind the epoch-lag readout:
/// `since` is the instant the oldest currently-pending plan arrived.
#[derive(Debug, Default)]
struct PendingDelta {
    plans: Vec<UnifiedPlan>,
    since: Option<Instant>,
}

/// An immutable corpus at a named epoch. Cheap to share (`Arc`), never
/// mutated after publication.
#[derive(Debug)]
pub struct CorpusSnapshot {
    epoch: u64,
    corpus: ShardedCorpus,
}

impl CorpusSnapshot {
    /// The epoch this snapshot was published at (0 = the corpus the
    /// service started from).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The plans visible at this epoch.
    pub fn corpus(&self) -> &ShardedCorpus {
        &self.corpus
    }

    /// Executes a query against this snapshot, stamping the response with
    /// the snapshot epoch.
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResponse, QueryError> {
        self.corpus
            .execute(request)
            .map(|response| response.with_epoch(self.epoch))
    }
}

/// Why the service refused an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded ingest queue cannot take `offered` more plans.
    Backpressure {
        /// Plans already pending.
        pending: usize,
        /// The configured queue bound.
        capacity: usize,
        /// Plans the rejected submission offered.
        offered: usize,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Backpressure {
                pending,
                capacity,
                offered,
            } => write!(
                f,
                "ingest backpressure: {pending} plans pending of {capacity} capacity, \
                 cannot accept {offered} more"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// What one [`CorpusService::merge`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeReport {
    /// The epoch the merge published.
    pub epoch: u64,
    /// Plans drained from the delta queue.
    pub merged: usize,
    /// Of those, fingerprint-novel plans now stored.
    pub novel: usize,
    /// Distinct plans in the published corpus.
    pub len: usize,
    /// Id of the segment this merge appended — persistent services only;
    /// `None` in RAM mode or when the drained batch was all duplicates.
    pub segment_id: Option<u32>,
    /// Bytes of that segment file (0 when none was written).
    pub segment_bytes: usize,
}

/// The concurrent corpus: a published [`CorpusSnapshot`] plus the bounded
/// ingest delta. See the module docs for the epoch/merge contract.
#[derive(Debug)]
pub struct CorpusService {
    /// The latest snapshot. Locked only to publish (writers) or to refresh
    /// a stale [`SnapshotReader`] cache (readers, once per epoch change).
    published: Mutex<Arc<CorpusSnapshot>>,
    /// Mirror of the published epoch: the lock-free staleness check.
    epoch: AtomicU64,
    /// Plans accepted but not yet merged, in submission order.
    pending: Mutex<PendingDelta>,
    capacity: usize,
    /// Optional append-only persistence: when attached, every publishing
    /// merge appends its drained batch as one immutable segment *before*
    /// the new epoch goes live, so a crash after publication never loses
    /// a queryable plan. Locked only during merges and census reads.
    store: Mutex<Option<SegmentStore>>,
}

impl CorpusService {
    /// Wraps a corpus as epoch 0 with the default pending capacity.
    pub fn new(corpus: ShardedCorpus) -> CorpusService {
        CorpusService::with_capacity(corpus, DEFAULT_PENDING_CAPACITY)
    }

    /// Wraps a corpus as epoch 0 with an explicit pending-queue bound
    /// (minimum 1).
    pub fn with_capacity(corpus: ShardedCorpus, capacity: usize) -> CorpusService {
        CorpusService {
            published: Mutex::new(Arc::new(CorpusSnapshot { epoch: 0, corpus })),
            epoch: AtomicU64::new(0),
            pending: Mutex::new(PendingDelta::default()),
            capacity: capacity.max(1),
            store: Mutex::new(None),
        }
    }

    /// Wraps an open [`SegmentStore`] as epoch 0: the store's (lazily
    /// loaded) corpus is published, and every publishing merge from now
    /// on appends its drained batch to the store as one new segment.
    pub fn with_store(store: SegmentStore, capacity: usize) -> CorpusService {
        let service = CorpusService::with_capacity(store.corpus().clone(), capacity);
        *service.store.lock().expect("store lock") = Some(store);
        service
    }

    /// Whether merges persist to an attached segment store.
    pub fn persistent(&self) -> bool {
        self.store.lock().expect("store lock").is_some()
    }

    /// Per-segment census of the attached store (`None` for a RAM-only
    /// service).
    pub fn segment_census(&self) -> Option<Vec<SegmentCensus>> {
        self.store
            .lock()
            .expect("store lock")
            .as_ref()
            .map(|store| store.census().to_vec())
    }

    /// The configured pending-queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current epoch (one atomic load).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Plans accepted but not yet merged.
    pub fn pending(&self) -> usize {
        self.pending.lock().expect("pending lock").plans.len()
    }

    /// How long the oldest pending plan has been waiting for a merge —
    /// the epoch lag a scraper watches to see whether the merge cadence
    /// keeps up with ingest. Zero when the queue is empty.
    pub fn pending_age(&self) -> std::time::Duration {
        self.pending
            .lock()
            .expect("pending lock")
            .since
            .map(|since| since.elapsed())
            .unwrap_or_default()
    }

    /// The latest published snapshot. Takes the publish mutex briefly;
    /// steady-state readers should hold a [`SnapshotReader`] instead,
    /// which skips even that when the epoch has not moved.
    pub fn snapshot(&self) -> Arc<CorpusSnapshot> {
        self.published.lock().expect("publish lock").clone()
    }

    /// A per-thread reader handle with a cached snapshot (the zero-lock
    /// read path).
    pub fn reader(self: &Arc<Self>) -> SnapshotReader {
        SnapshotReader {
            service: Arc::clone(self),
            cached: self.snapshot(),
        }
    }

    /// Accepts plans into the delta queue, in submission order. Returns
    /// the queue depth after acceptance, or
    /// [`ServiceError::Backpressure`] — rejecting the whole batch, never
    /// splitting it — when it would overflow the bound.
    pub fn submit(&self, plans: Vec<UnifiedPlan>) -> Result<usize, ServiceError> {
        let mut pending = self.pending.lock().expect("pending lock");
        if pending.plans.len() + plans.len() > self.capacity {
            return Err(ServiceError::Backpressure {
                pending: pending.plans.len(),
                capacity: self.capacity,
                offered: plans.len(),
            });
        }
        if pending.plans.is_empty() && !plans.is_empty() {
            pending.since = Some(Instant::now());
        }
        pending.plans.extend(plans);
        service_metrics().pending.set(pending.plans.len() as i64);
        Ok(pending.plans.len())
    }

    /// Drains the delta queue into a clone of the published corpus
    /// (deterministic parallel ingest across `threads`) and publishes the
    /// result as the next epoch. With an empty queue this is a no-op that
    /// publishes nothing and reports the current epoch.
    ///
    /// Merging is serialized by the pending lock being held across the
    /// ingest; readers are never blocked — they keep answering from the
    /// previous snapshot until the new `Arc` is swapped in.
    pub fn merge(&self, threads: usize) -> MergeReport {
        // Hold the pending lock for the whole merge: a second merger must
        // not clone the same base corpus and race the publish.
        let mut pending = self.pending.lock().expect("pending lock");
        let base = self.snapshot();
        if pending.plans.is_empty() {
            return MergeReport {
                epoch: base.epoch,
                merged: 0,
                novel: 0,
                len: base.corpus.len(),
                segment_id: None,
                segment_bytes: 0,
            };
        }
        let start = Instant::now();
        let mut span = trace::span("corpus.merge", Level::Debug, "merge");
        let drained: Vec<UnifiedPlan> = std::mem::take(&mut pending.plans);
        pending.since = None;
        let mut store_guard = self.store.lock().expect("store lock");
        let (corpus, novel, segment_id, segment_bytes) = match store_guard.as_mut() {
            // Persistent: the store's corpus is the canonical one — append
            // (deterministic parallel ingest + segment write + manifest
            // swap) and publish a clone of it. The clone is cheap for a
            // lazy corpus: undecoded slots stay undecoded.
            Some(store) => match store.append(&drained, threads.max(1)) {
                Ok(report) => (
                    store.corpus().clone(),
                    report.admitted,
                    report.segment_id,
                    report.segment_bytes,
                ),
                Err(e) => {
                    // Disk failure: detach persistence (a diverged store
                    // must not silently shadow RAM-only epochs) and stay
                    // available in RAM.
                    trace::event(
                        "corpus.merge",
                        Level::Error,
                        "persist_failed",
                        &[("error", e.to_string().into())],
                    );
                    *store_guard = None;
                    let mut corpus = base.corpus.clone();
                    let novel = corpus.ingest_parallel(&drained, threads.max(1));
                    (corpus, novel, None, 0)
                }
            },
            None => {
                let mut corpus = base.corpus.clone();
                let novel = corpus.ingest_parallel(&drained, threads.max(1));
                (corpus, novel, None, 0)
            }
        };
        drop(store_guard);
        let epoch = base.epoch + 1;
        let len = corpus.len();
        let snapshot = Arc::new(CorpusSnapshot { epoch, corpus });
        {
            let mut published = self.published.lock().expect("publish lock");
            *published = snapshot;
            // Publish-then-bump: a reader that sees the new epoch is
            // guaranteed to find (at least) the matching snapshot under
            // the mutex.
            self.epoch.store(epoch, Ordering::Release);
        }
        let metrics = service_metrics();
        metrics.pending.set(0);
        metrics.epoch.set(epoch as i64);
        metrics.merges.inc();
        metrics.merged_plans.add(drained.len() as u64);
        metrics
            .merge_duration_us
            .record(start.elapsed().as_micros() as u64);
        span.field("epoch", epoch);
        span.field("merged", drained.len());
        span.field("novel", novel);
        span.field("len", len);
        MergeReport {
            epoch,
            merged: drained.len(),
            novel,
            len,
            segment_id,
            segment_bytes,
        }
    }
}

/// A per-thread read handle: caches the latest snapshot and refreshes it
/// only when the service's atomic epoch says it moved. Steady-state cost
/// per request: **one atomic load, zero locks**.
#[derive(Debug)]
pub struct SnapshotReader {
    service: Arc<CorpusService>,
    cached: Arc<CorpusSnapshot>,
}

impl SnapshotReader {
    /// The freshest snapshot this reader can see. Lock-free unless the
    /// epoch advanced since the last call.
    pub fn current(&mut self) -> &Arc<CorpusSnapshot> {
        let epoch = self.service.epoch.load(Ordering::Acquire);
        if epoch != self.cached.epoch {
            self.cached = self.service.snapshot();
        }
        &self.cached
    }

    /// The snapshot this reader last refreshed to, *without* checking for
    /// a newer epoch — the handle a batch of related queries should share
    /// for epoch-consistent answers.
    pub fn pinned(&self) -> &Arc<CorpusSnapshot> {
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryOutcome;
    use uplan_core::PlanNode;

    fn chain(names: &[&str]) -> UnifiedPlan {
        let mut node: Option<PlanNode> = None;
        for name in names.iter().rev() {
            let mut n = PlanNode::producer(*name);
            if let Some(child) = node.take() {
                n = PlanNode::executor(*name).with_child(child);
            }
            node = Some(n);
        }
        UnifiedPlan::with_root(node.unwrap())
    }

    fn plans(n: usize) -> Vec<UnifiedPlan> {
        let wrappers = ["Gather", "Collect", "Exchange", "Sort", "Hash", "Top_N"];
        let scans = ["Seq_Scan", "Index_Scan", "Bitmap_Scan", "Sample_Scan"];
        (0..n)
            .map(|i| {
                let mut names = vec![scans[i % 4]];
                let mut bits = i / 4;
                for w in wrappers {
                    if bits & 1 == 1 {
                        names.insert(0, w);
                    }
                    bits >>= 1;
                }
                chain(&names)
            })
            .collect()
    }

    #[test]
    fn merge_sequence_is_byte_identical_to_sequential_ingest() {
        let stream = plans(120);
        let service = CorpusService::new(ShardedCorpus::new());
        assert_eq!(service.epoch(), 0);
        // Three uneven batches, merged at different thread counts.
        service.submit(stream[..30].to_vec()).unwrap();
        let r1 = service.merge(1);
        assert_eq!((r1.epoch, r1.merged), (1, 30));
        service.submit(stream[30..31].to_vec()).unwrap();
        service.submit(stream[31..77].to_vec()).unwrap();
        let r2 = service.merge(4);
        assert_eq!((r2.epoch, r2.merged), (2, 47));
        service.submit(stream[77..].to_vec()).unwrap();
        let r3 = service.merge(3);
        assert_eq!(r3.epoch, 3);
        assert_eq!(service.epoch(), 3);
        assert_eq!(service.pending(), 0);

        let mut sequential = ShardedCorpus::new();
        for plan in &stream {
            sequential.observe(plan);
        }
        assert_eq!(
            service.snapshot().corpus().to_binary_indexed().unwrap(),
            sequential.to_binary_indexed().unwrap()
        );

        // An empty merge publishes nothing.
        let r4 = service.merge(2);
        assert_eq!((r4.epoch, r4.merged), (3, 0));
        assert_eq!(service.epoch(), 3);
    }

    #[test]
    fn persistent_merges_append_segments() {
        let dir =
            std::env::temp_dir().join(format!("uplan-service-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stream = plans(60);
        let store = SegmentStore::create(&dir, ShardedCorpus::new()).unwrap();
        let service = CorpusService::with_store(store, DEFAULT_PENDING_CAPACITY);
        assert!(service.persistent());
        assert_eq!(service.segment_census().unwrap().len(), 0);

        service.submit(stream[..25].to_vec()).unwrap();
        let r1 = service.merge(2);
        assert_eq!((r1.epoch, r1.merged, r1.segment_id), (1, 25, Some(0)));
        assert!(r1.segment_bytes > 0);
        service.submit(stream[20..].to_vec()).unwrap();
        let r2 = service.merge(4);
        assert_eq!((r2.epoch, r2.novel, r2.segment_id), (2, 35, Some(1)));
        // An all-duplicate merge publishes an epoch but writes no segment.
        service.submit(stream[..10].to_vec()).unwrap();
        let r3 = service.merge(1);
        assert_eq!((r3.epoch, r3.segment_id, r3.segment_bytes), (3, None, 0));

        let census = service.segment_census().unwrap();
        assert_eq!(census.len(), 2);
        assert_eq!(census[0].plans + census[1].plans, 60);

        // The directory reopens to exactly the published corpus.
        let reopened = SegmentStore::open(&dir).unwrap().into_corpus();
        let published = service.snapshot();
        assert_eq!(reopened.len(), published.corpus().len());
        assert_eq!(
            reopened.to_binary_indexed().unwrap(),
            published.corpus().to_binary_indexed().unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_queue_rejects_whole_batches() {
        let service = CorpusService::with_capacity(ShardedCorpus::new(), 10);
        assert_eq!(service.capacity(), 10);
        assert_eq!(service.submit(plans(8)), Ok(8));
        let err = service.submit(plans(3)).unwrap_err();
        assert_eq!(
            err,
            ServiceError::Backpressure {
                pending: 8,
                capacity: 10,
                offered: 3
            }
        );
        // The rejected batch left no partial residue; a fitting one lands.
        assert_eq!(service.submit(plans(2)), Ok(10));
        let report = service.merge(2);
        assert_eq!(report.merged, 10);
        // Drained: capacity is available again.
        assert_eq!(service.submit(plans(3)), Ok(3));
    }

    #[test]
    fn readers_keep_epoch_consistent_answers_across_merges() {
        let stream = plans(90);
        let service = Arc::new(CorpusService::new(ShardedCorpus::new()));
        service.submit(stream[..40].to_vec()).unwrap();
        service.merge(2);

        let mut reader = service.reader();
        let probe = stream[5].clone();
        let request = QueryRequest::knn(3).with_probe(probe);
        let pinned = Arc::clone(reader.current());
        let before = pinned.execute(&request).unwrap();
        assert_eq!(before.epoch, Some(1));

        // Ingest and merge more plans; the pinned snapshot must keep
        // answering identically (matches *and* counted evals), while a
        // refreshed reader sees the new epoch.
        service.submit(stream[40..].to_vec()).unwrap();
        service.merge(4);
        let again = pinned.execute(&request).unwrap();
        assert_eq!(again, before);
        let after = reader.current().execute(&request).unwrap();
        assert_eq!(after.epoch, Some(2));
        assert_eq!(
            reader.pinned().epoch(),
            2,
            "current() refreshed the cache in place"
        );
        if let (QueryOutcome::Matches(old), QueryOutcome::Matches(new)) =
            (&before.outcome, &after.outcome)
        {
            assert_eq!(old.len(), 3);
            assert_eq!(new.len(), 3);
        } else {
            panic!("knn answers matches");
        }
    }
}
