//! One shard of a [`crate::ShardedCorpus`].
//!
//! A shard owns a contiguous slice of fingerprint space (plans whose
//! fingerprint *prefix* routes here) and keeps, independently of every
//! other shard: the [`FingerprintSet`] answering "seen exactly?", the plan
//! storage, and the BK-tree answering "seen anything like it?". Because a
//! plan's shard is a pure function of its fingerprint, shards never
//! coordinate — parallel ingest hands each worker whole shards and needs no
//! locks, and the facade's determinism guarantee reduces to "each shard
//! sees its plans in stream order".
//!
//! Ids are *local* here (dense per shard, also the BK node ids); the
//! facade maps them to corpus-wide insertion-ordered globals through
//! [`CorpusShard::globals`].
//!
//! Plan payloads live behind a [`PlanStore`]: eagerly for ingested plans,
//! lazily (offset-addressed segment bytes, decoded on first touch) for
//! plans opened from a segment store — the representation queries never
//! see, because every access goes through [`PlanStore::plan`] /
//! [`PlanStore::ted`].

use std::sync::{Arc, OnceLock};

use uplan_core::fingerprint::{Fingerprint, FingerprintOptions, FingerprintSet};
use uplan_core::ted::{TedPlan, TedScratch};
use uplan_core::UnifiedPlan;

use crate::bktree::BkTree;
use crate::features::{features_of, FeatureVector};
use crate::segment::SegmentSource;

/// A stored plan's in-memory form: the plan itself plus its pre-flattened
/// TED view (every metric evaluation — BK routing, traversals, shortlist
/// re-ranks — reads the view instead of re-flattening).
#[derive(Debug, Clone)]
pub(crate) struct LoadedPlan {
    pub(crate) plan: UnifiedPlan,
    pub(crate) ted: TedPlan,
}

impl LoadedPlan {
    pub(crate) fn new(plan: UnifiedPlan) -> LoadedPlan {
        LoadedPlan {
            ted: TedPlan::new(&plan),
            plan,
        }
    }
}

/// One plan's storage cell. For ingested plans the cell is filled at store
/// time and the segment address is meaningless; for lazily opened plans
/// the cell starts empty and fills on first touch from the shared
/// [`SegmentSource`].
#[derive(Debug, Clone)]
struct PlanSlot {
    /// Index into the source's segment list (`u32::MAX` for eager slots).
    seg: u32,
    /// Plan index within that segment.
    idx: u32,
    /// The decoded plan, filled at most once. Boxed so an undecoded slot
    /// costs pointers, not a full inline [`LoadedPlan`].
    cell: OnceLock<Box<LoadedPlan>>,
}

/// Plan payload storage for one shard: dense by local id, decode-on-first-
/// touch when backed by a segment source. Cloning preserves whatever is
/// already decoded (cheap for an untouched lazy corpus, eager-deep for an
/// ingested one).
#[derive(Debug, Default, Clone)]
pub(crate) struct PlanStore {
    /// Shared decoded-bytes source for lazy slots; `None` for a purely
    /// in-RAM shard.
    source: Option<Arc<SegmentSource>>,
    slots: Vec<PlanSlot>,
}

impl PlanStore {
    /// An empty store whose lazy slots will decode from `source`.
    pub(crate) fn lazy(source: Arc<SegmentSource>) -> PlanStore {
        PlanStore {
            source: Some(source),
            slots: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Appends an eagerly stored plan (flattening its TED view now).
    pub(crate) fn push(&mut self, plan: UnifiedPlan) {
        let cell = OnceLock::new();
        cell.set(Box::new(LoadedPlan::new(plan)))
            .expect("fresh cell is empty");
        self.slots.push(PlanSlot {
            seg: u32::MAX,
            idx: u32::MAX,
            cell,
        });
    }

    /// Appends a lazy slot addressing plan `idx` of segment `seg` in the
    /// store's source.
    pub(crate) fn push_lazy(&mut self, seg: u32, idx: u32) {
        debug_assert!(self.source.is_some(), "lazy slot needs a segment source");
        self.slots.push(PlanSlot {
            seg,
            idx,
            cell: OnceLock::new(),
        });
    }

    fn loaded(&self, local: usize) -> &LoadedPlan {
        let slot = &self.slots[local];
        slot.cell.get_or_init(|| {
            let source = self
                .source
                .as_ref()
                .expect("undecoded slot without a segment source");
            Box::new(source.load(slot.seg, slot.idx))
        })
    }

    /// The stored plan, decoding it on first touch.
    pub(crate) fn plan(&self, local: usize) -> &UnifiedPlan {
        &self.loaded(local).plan
    }

    /// The stored plan's pre-flattened TED view, decoding on first touch.
    pub(crate) fn ted(&self, local: usize) -> &TedPlan {
        &self.loaded(local).ted
    }

    /// Plans whose payload has actually been decoded (lazy-open
    /// observability; everything, for an ingested store).
    pub(crate) fn decoded(&self) -> usize {
        self.slots.iter().filter(|s| s.cell.get().is_some()).count()
    }
}

/// One fingerprint-prefix shard: dedup set + plan storage + BK-tree.
#[derive(Debug, Default, Clone)]
pub(crate) struct CorpusShard {
    /// Fingerprint dedup for the plans routed to this shard.
    pub(crate) dedup: FingerprintSet,
    /// Plan payloads, dense by local id (eager or lazily decoded).
    pub(crate) store: PlanStore,
    /// Fingerprint per local id.
    pub(crate) fingerprints: Vec<Fingerprint>,
    /// Local id → corpus-wide global id.
    pub(crate) globals: Vec<u32>,
    /// Structural feature vector per local id — the approximate-query
    /// pre-filter (see [`crate::features`]). Computed at store time (or
    /// adopted from a persisted feature section), always dense and always
    /// eager: queries read vectors without touching plan payloads.
    pub(crate) features: Vec<FeatureVector>,
    /// BK-tree over local ids (node id == local id, always sequential).
    pub(crate) index: BkTree,
    /// TED evaluations spent building `index` (insert routing).
    pub(crate) index_evals: u64,
}

impl CorpusShard {
    pub(crate) fn with_options(options: FingerprintOptions) -> CorpusShard {
        CorpusShard {
            dedup: FingerprintSet::with_options(options),
            ..CorpusShard::default()
        }
    }

    /// Distinct plans stored in this shard.
    pub(crate) fn len(&self) -> usize {
        self.store.len()
    }

    /// Stores a fingerprint-novel plan and routes it into the BK-tree
    /// (evaluating TED against the plans already here). Returns the local
    /// id. The caller has already claimed `fp` in [`CorpusShard::dedup`].
    pub(crate) fn store(&mut self, plan: UnifiedPlan, fp: Fingerprint, global: u32) -> u32 {
        let local = self.store_unindexed(plan, fp, global);
        let store = &self.store;
        let probe = store.ted(local as usize);
        let mut scratch = TedScratch::default();
        let evals = self.index.insert(local, |other| {
            probe.distance(store.ted(other as usize), &mut scratch) as u32
        });
        self.index_evals += evals;
        local
    }

    /// Stores a plan *without* touching the BK-tree — the indexed-load
    /// path, where the tree is adopted wholesale from a persisted topology
    /// afterwards ([`CorpusShard::adopt_index`]).
    pub(crate) fn store_unindexed(
        &mut self,
        plan: UnifiedPlan,
        fp: Fingerprint,
        global: u32,
    ) -> u32 {
        self.store_with_features(plan, fp, global, None)
    }

    /// [`CorpusShard::store_unindexed`] with an optional precomputed
    /// feature vector (the featured-load path, where vectors are adopted
    /// from the persisted section instead of recomputed).
    pub(crate) fn store_with_features(
        &mut self,
        plan: UnifiedPlan,
        fp: Fingerprint,
        global: u32,
        features: Option<FeatureVector>,
    ) -> u32 {
        let local = u32::try_from(self.store.len()).expect("corpus shard overflow");
        self.features
            .push(features.unwrap_or_else(|| features_of(&plan)));
        self.store.push(plan);
        self.fingerprints.push(fp);
        self.globals.push(global);
        local
    }

    /// Stores a *lazy* plan: all metadata (fingerprint, features, global)
    /// eager, the payload a segment address decoded on first touch. The
    /// caller has already claimed `fp` in the dedup set and set up the
    /// shard's [`PlanStore::lazy`] source.
    pub(crate) fn store_lazy(
        &mut self,
        fp: Fingerprint,
        global: u32,
        features: FeatureVector,
        seg: u32,
        idx: u32,
    ) -> u32 {
        let local = u32::try_from(self.store.len()).expect("corpus shard overflow");
        self.features.push(features);
        self.store.push_lazy(seg, idx);
        self.fingerprints.push(fp);
        self.globals.push(global);
        local
    }

    /// Adopts a persisted BK topology over the plans already stored —
    /// zero TED evaluations. Errors when the topology cannot describe this
    /// shard's population.
    pub(crate) fn adopt_index(&mut self, edges: &[(u32, u32)]) -> Result<(), String> {
        self.index = BkTree::from_edges(self.store.len(), edges)?;
        Ok(())
    }
}
