//! One shard of a [`crate::ShardedCorpus`].
//!
//! A shard owns a contiguous slice of fingerprint space (plans whose
//! fingerprint *prefix* routes here) and keeps, independently of every
//! other shard: the [`FingerprintSet`] answering "seen exactly?", the plan
//! storage, and the BK-tree answering "seen anything like it?". Because a
//! plan's shard is a pure function of its fingerprint, shards never
//! coordinate — parallel ingest hands each worker whole shards and needs no
//! locks, and the facade's determinism guarantee reduces to "each shard
//! sees its plans in stream order".
//!
//! Ids are *local* here (dense per shard, also the BK node ids); the
//! facade maps them to corpus-wide insertion-ordered globals through
//! [`CorpusShard::globals`].

use uplan_core::fingerprint::{Fingerprint, FingerprintOptions, FingerprintSet};
use uplan_core::ted::{TedPlan, TedScratch};
use uplan_core::UnifiedPlan;

use crate::bktree::BkTree;
use crate::features::{features_of, FeatureVector};

/// One fingerprint-prefix shard: dedup set + plan storage + BK-tree.
#[derive(Debug, Default, Clone)]
pub(crate) struct CorpusShard {
    /// Fingerprint dedup for the plans routed to this shard.
    pub(crate) dedup: FingerprintSet,
    /// Stored plans, dense by local id.
    pub(crate) plans: Vec<UnifiedPlan>,
    /// Fingerprint per local id.
    pub(crate) fingerprints: Vec<Fingerprint>,
    /// Local id → corpus-wide global id.
    pub(crate) globals: Vec<u32>,
    /// Structural feature vector per local id — the approximate-query
    /// pre-filter (see [`crate::features`]). Computed at store time (or
    /// adopted from a persisted feature section), always dense.
    pub(crate) features: Vec<FeatureVector>,
    /// Pre-flattened TED view per local id: every metric evaluation against
    /// a stored plan (BK routing, traversals, shortlist re-ranks) reads the
    /// view instead of re-flattening the plan. Computed at store time.
    pub(crate) ted: Vec<TedPlan>,
    /// BK-tree over local ids (node id == local id, always sequential).
    pub(crate) index: BkTree,
    /// TED evaluations spent building `index` (insert routing).
    pub(crate) index_evals: u64,
}

impl CorpusShard {
    pub(crate) fn with_options(options: FingerprintOptions) -> CorpusShard {
        CorpusShard {
            dedup: FingerprintSet::with_options(options),
            ..CorpusShard::default()
        }
    }

    /// Distinct plans stored in this shard.
    pub(crate) fn len(&self) -> usize {
        self.plans.len()
    }

    /// Stores a fingerprint-novel plan and routes it into the BK-tree
    /// (evaluating TED against the plans already here). Returns the local
    /// id. The caller has already claimed `fp` in [`CorpusShard::dedup`].
    pub(crate) fn store(&mut self, plan: UnifiedPlan, fp: Fingerprint, global: u32) -> u32 {
        let local = self.store_unindexed(plan, fp, global);
        let ted = &self.ted;
        let probe = &ted[local as usize];
        let mut scratch = TedScratch::default();
        let evals = self.index.insert(local, |other| {
            probe.distance(&ted[other as usize], &mut scratch) as u32
        });
        self.index_evals += evals;
        local
    }

    /// Stores a plan *without* touching the BK-tree — the indexed-load
    /// path, where the tree is adopted wholesale from a persisted topology
    /// afterwards ([`CorpusShard::adopt_index`]).
    pub(crate) fn store_unindexed(
        &mut self,
        plan: UnifiedPlan,
        fp: Fingerprint,
        global: u32,
    ) -> u32 {
        self.store_with_features(plan, fp, global, None)
    }

    /// [`CorpusShard::store_unindexed`] with an optional precomputed
    /// feature vector (the featured-load path, where vectors are adopted
    /// from the persisted section instead of recomputed).
    pub(crate) fn store_with_features(
        &mut self,
        plan: UnifiedPlan,
        fp: Fingerprint,
        global: u32,
        features: Option<FeatureVector>,
    ) -> u32 {
        let local = u32::try_from(self.plans.len()).expect("corpus shard overflow");
        self.features
            .push(features.unwrap_or_else(|| features_of(&plan)));
        self.ted.push(TedPlan::new(&plan));
        self.plans.push(plan);
        self.fingerprints.push(fp);
        self.globals.push(global);
        local
    }

    /// Adopts a persisted BK topology over the plans already stored —
    /// zero TED evaluations. Errors when the topology cannot describe this
    /// shard's population.
    pub(crate) fn adopt_index(&mut self, edges: &[(u32, u32)]) -> Result<(), String> {
        self.index = BkTree::from_edges(self.plans.len(), edges)?;
        Ok(())
    }
}
