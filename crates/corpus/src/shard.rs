//! One shard of a [`crate::ShardedCorpus`].
//!
//! A shard owns a contiguous slice of fingerprint space (plans whose
//! fingerprint *prefix* routes here) and keeps, independently of every
//! other shard: the [`FingerprintSet`] answering "seen exactly?", the plan
//! storage, and the BK-tree answering "seen anything like it?". Because a
//! plan's shard is a pure function of its fingerprint, shards never
//! coordinate — parallel ingest hands each worker whole shards and needs no
//! locks, and the facade's determinism guarantee reduces to "each shard
//! sees its plans in stream order".
//!
//! Ids are *local* here (dense per shard, also the BK node ids); the
//! facade maps them to corpus-wide insertion-ordered globals through
//! [`CorpusShard::globals`].

use uplan_core::fingerprint::{Fingerprint, FingerprintOptions, FingerprintSet};
use uplan_core::ted::tree_edit_distance;
use uplan_core::UnifiedPlan;

use crate::bktree::BkTree;

/// One fingerprint-prefix shard: dedup set + plan storage + BK-tree.
#[derive(Debug, Default, Clone)]
pub(crate) struct CorpusShard {
    /// Fingerprint dedup for the plans routed to this shard.
    pub(crate) dedup: FingerprintSet,
    /// Stored plans, dense by local id.
    pub(crate) plans: Vec<UnifiedPlan>,
    /// Fingerprint per local id.
    pub(crate) fingerprints: Vec<Fingerprint>,
    /// Local id → corpus-wide global id.
    pub(crate) globals: Vec<u32>,
    /// BK-tree over local ids (node id == local id, always sequential).
    pub(crate) index: BkTree,
    /// TED evaluations spent building `index` (insert routing).
    pub(crate) index_evals: u64,
}

impl CorpusShard {
    pub(crate) fn with_options(options: FingerprintOptions) -> CorpusShard {
        CorpusShard {
            dedup: FingerprintSet::with_options(options),
            ..CorpusShard::default()
        }
    }

    /// Distinct plans stored in this shard.
    pub(crate) fn len(&self) -> usize {
        self.plans.len()
    }

    /// Stores a fingerprint-novel plan and routes it into the BK-tree
    /// (evaluating TED against the plans already here). Returns the local
    /// id. The caller has already claimed `fp` in [`CorpusShard::dedup`].
    pub(crate) fn store(&mut self, plan: UnifiedPlan, fp: Fingerprint, global: u32) -> u32 {
        let local = self.store_unindexed(plan, fp, global);
        let plans = &self.plans;
        let probe = &plans[local as usize];
        let evals = self.index.insert(local, |other| {
            tree_edit_distance(probe, &plans[other as usize]) as u32
        });
        self.index_evals += evals;
        local
    }

    /// Stores a plan *without* touching the BK-tree — the indexed-load
    /// path, where the tree is adopted wholesale from a persisted topology
    /// afterwards ([`CorpusShard::adopt_index`]).
    pub(crate) fn store_unindexed(
        &mut self,
        plan: UnifiedPlan,
        fp: Fingerprint,
        global: u32,
    ) -> u32 {
        let local = u32::try_from(self.plans.len()).expect("corpus shard overflow");
        self.plans.push(plan);
        self.fingerprints.push(fp);
        self.globals.push(global);
        local
    }

    /// Adopts a persisted BK topology over the plans already stored —
    /// zero TED evaluations. Errors when the topology cannot describe this
    /// shard's population.
    pub(crate) fn adopt_index(&mut self, edges: &[(u32, u32)]) -> Result<(), String> {
        self.index = BkTree::from_edges(self.plans.len(), edges)?;
        Ok(())
    }
}
