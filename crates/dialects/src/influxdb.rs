//! InfluxDB `EXPLAIN` serialization: the property-only plan.
//!
//! InfluxDB is the study's outlier (paper Section III-D): its plans carry
//! no operations at all, only iterator statistics — which is why the unified
//! grammar makes the tree optional (`plan ::= (tree)? properties`). The
//! emitter takes synthetic iterator statistics (there is no separate
//! time-series engine to run; the statistics are derived from a shard/series
//! description).

/// Synthetic iterator statistics for one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfluxStats {
    /// Shards touched.
    pub shards: u64,
    /// Series touched.
    pub series: u64,
    /// Values served from cache.
    pub cached_values: u64,
    /// TSM files read.
    pub files: u64,
    /// Blocks read.
    pub blocks: u64,
    /// Bytes across blocks.
    pub block_size: u64,
}

impl InfluxStats {
    /// Statistics for a measurement of `series` series over `shards` shards.
    pub fn synthetic(shards: u64, series: u64) -> InfluxStats {
        InfluxStats {
            shards,
            series,
            cached_values: series * 10,
            files: shards * 2,
            blocks: series * shards,
            block_size: series * shards * 4096,
        }
    }
}

/// Serializes the `EXPLAIN` property list.
pub fn to_text(stats: &InfluxStats) -> String {
    format!(
        "QUERY PLAN\n----------\nEXPRESSION: <nil>\nNUMBER OF SHARDS: {}\nNUMBER OF SERIES: {}\nCACHED VALUES: {}\nNUMBER OF FILES: {}\nNUMBER OF BLOCKS: {}\nSIZE OF BLOCKS: {}\n",
        stats.shards, stats.series, stats.cached_values, stats.files, stats.blocks, stats.block_size
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn property_only_plan() {
        let stats = InfluxStats::synthetic(2, 10);
        let text = to_text(&stats);
        assert!(text.contains("NUMBER OF SHARDS: 2"), "{text}");
        assert!(text.contains("NUMBER OF SERIES: 10"), "{text}");
        assert!(text.contains("SIZE OF BLOCKS:"), "{text}");
        // No operations anywhere — the defining InfluxDB property.
        assert!(!text.contains("Scan"));
        assert!(!text.contains("Join"));
    }

    #[test]
    fn synthetic_derivation() {
        let stats = InfluxStats::synthetic(3, 7);
        assert_eq!(stats.files, 6);
        assert_eq!(stats.blocks, 21);
        assert_eq!(stats.cached_values, 70);
    }
}
