//! # dialects — native EXPLAIN serializers for the nine studied DBMSs
//!
//! The paper's converters consume *serialized query plans as real DBMSs emit
//! them*. This crate produces exactly those serializations from the
//! substrate engines' plans:
//!
//! | Module | Source plan | Output |
//! |---|---|---|
//! | [`postgres`] | `minidb` (`Postgres` profile) | `EXPLAIN` text and `FORMAT JSON` |
//! | [`mysql`] | `minidb` (`MySql` profile) | `FORMAT=JSON` and the classic table |
//! | [`tidb`] | `minidb` (`TiDb` profile) | the `id/estRows/task/...` table with random operator suffixes |
//! | [`sqlite`] | `minidb` (`Sqlite` profile) | `EXPLAIN QUERY PLAN` tree text |
//! | [`sqlserver`] | `minidb` (any profile) | XML showplan |
//! | [`sparksql`] | `minidb` (any profile) | `== Physical Plan ==` text |
//! | [`mongodb`] | `minidoc` | `explain()` JSON |
//! | [`neo4j`] | `minigraph` | the operator table of paper Fig. 1 |
//! | [`influxdb`] | synthetic iterator stats | the property-only `EXPLAIN` list |
//!
//! Each emitter *expands* the generic physical plan into dialect idioms:
//! PostgreSQL wraps hash-join build sides in `Hash` nodes and parallel scans
//! under `Gather`; TiDB wraps scans in `TableReader`/`IndexLookUp` and emits
//! standalone `Selection` operators; SQLite flattens joins into
//! `SCAN`/`SEARCH` lines. The per-DBMS operation counts of paper Table VI
//! emerge from these expansions.

pub mod influxdb;
pub mod mongodb;
pub mod mysql;
pub mod neo4j;
pub mod postgres;
pub mod sparksql;
pub mod sqlite;
pub mod sqlserver;
pub mod tidb;

/// Serialized-plan formats a dialect can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Natural text.
    Text,
    /// Tabular text.
    Table,
    /// JSON.
    Json,
    /// XML.
    Xml,
}
