//! MongoDB `explain()` serialization.
//!
//! `minidoc` already builds the canonical `queryPlanner.winningPlan`
//! document ([`minidoc::DocPlan::to_explain_json`]); this module provides
//! the string rendering plus the pipeline-command echo that real shells
//! print alongside it.

use minidoc::{DocPlan, Request};
use uplan_core::formats::json::JsonValue;

/// Serializes a plan as `explain()` JSON text.
pub fn to_json(plan: &DocPlan) -> String {
    plan.to_explain_json().to_pretty()
}

/// The shell command echo for a request (`db.orders.find({...})`).
pub fn command_echo(request: &Request) -> String {
    let filter = JsonValue::Object(
        request
            .filter
            .iter()
            .map(|c| {
                (
                    c.field.clone().into(),
                    JsonValue::Object(vec![(c.op.mql().into(), c.value.clone())]),
                )
            })
            .collect(),
    );
    let mut call = format!("db.{}.find({})", request.collection, filter.to_compact());
    if let Some(fields) = &request.projection {
        let projection = JsonValue::Object(
            fields
                .iter()
                .map(|f| (f.clone().into(), JsonValue::Int(1)))
                .collect(),
        );
        call.push_str(&format!(".projection({})", projection.to_compact()));
    }
    if let Some((field, desc)) = &request.sort {
        call.push_str(&format!(
            ".sort({{\"{field}\": {}}})",
            if *desc { -1 } else { 1 }
        ));
    }
    if let Some(n) = request.limit {
        call.push_str(&format!(".limit({n})"));
    }
    call.push_str(".explain()");
    call
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidoc::{Condition, DocStore, FilterOp};
    use uplan_core::formats::json::{self, JsonValue};

    #[test]
    fn json_text_parses() {
        let mut store = DocStore::new();
        store
            .collection_mut("c")
            .insert(json::object([("x", JsonValue::Int(1))]));
        let request = Request {
            collection: "c".into(),
            filter: vec![Condition {
                field: "x".into(),
                op: FilterOp::Eq,
                value: JsonValue::Int(1),
            }],
            ..Request::default()
        };
        let (_, plan) = store.find(&request);
        let text = to_json(&plan);
        let doc = json::parse(&text).unwrap();
        assert!(doc.get("queryPlanner").is_some());
    }

    #[test]
    fn command_echo_shape() {
        let request = Request {
            collection: "orders".into(),
            filter: vec![Condition {
                field: "status".into(),
                op: FilterOp::Eq,
                value: JsonValue::from("A"),
            }],
            projection: Some(vec!["total".into()]),
            sort: Some(("total".into(), true)),
            limit: Some(5),
            group: None,
        };
        let echo = command_echo(&request);
        assert!(echo.starts_with("db.orders.find("), "{echo}");
        assert!(echo.contains("$eq"), "{echo}");
        assert!(echo.contains(".sort({\"total\": -1})"), "{echo}");
        assert!(echo.contains(".limit(5)"), "{echo}");
        assert!(echo.ends_with(".explain()"), "{echo}");
    }
}
