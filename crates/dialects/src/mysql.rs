//! MySQL `EXPLAIN` serialization: `FORMAT=JSON` and the classic table.
//!
//! The JSON format nests `query_block` → `ordering_operation` →
//! `grouping_operation` → `nested_loop`/`table` objects; the table format is
//! one row per table access with `select_type`/`type`/`key`/`Extra` columns
//! (paper Fig. 2's MySQL example). MySQL exposes no explicit projection
//! operators (paper Table VI: 0.00 Projectors).

use minidb::physical::{ExplainedPlan, IndexAccess, PhysNode, PhysOp};
use uplan_core::formats::json::{JsonMembers, JsonValue};

/// Serializes as `EXPLAIN FORMAT=JSON`.
pub fn to_json(plan: &ExplainedPlan) -> String {
    let mut block = vec![
        ("select_id".into(), JsonValue::Int(1)),
        (
            "cost_info".into(),
            JsonValue::Object(vec![(
                "query_cost".into(),
                JsonValue::from(format!("{:.2}", plan.root.est_total_cost)),
            )]),
        ),
    ];
    block.extend(node_json(&plan.root));
    for (i, sub) in plan.subplans.iter().enumerate() {
        let mut sub_block = vec![
            ("select_id".into(), JsonValue::Int(2 + i as i64)),
            ("dependent".into(), JsonValue::Bool(false)),
        ];
        sub_block.extend(node_json(sub));
        block.push((
            format!("subquery_{}", i + 1).into(),
            JsonValue::Object(vec![("query_block".into(), JsonValue::Object(sub_block))]),
        ));
    }
    JsonValue::Object(vec![("query_block".into(), JsonValue::Object(block))]).to_pretty()
}

/// Members contributed by a node into the enclosing query block (borrowing
/// table/index names straight from the plan).
fn node_json<'a>(node: &'a PhysNode) -> JsonMembers<'a> {
    match &node.op {
        PhysOp::Sort { .. } | PhysOp::TopN { .. } => {
            let mut inner = vec![("using_filesort".into(), JsonValue::Bool(true))];
            inner.extend(node_json(&node.children[0]));
            vec![("ordering_operation".into(), JsonValue::Object(inner))]
        }
        PhysOp::Aggregate { group_by, .. } => {
            let mut inner = vec![(
                "using_temporary_table".into(),
                JsonValue::Bool(!group_by.is_empty()),
            )];
            inner.extend(node_json(&node.children[0]));
            vec![("grouping_operation".into(), JsonValue::Object(inner))]
        }
        PhysOp::Limit { .. }
        | PhysOp::Distinct
        | PhysOp::Project { .. }
        | PhysOp::Filter { .. } => {
            // Limit/Distinct/projection fold into the block; standalone
            // filters attach to their child table.
            match &node.op {
                PhysOp::Filter { predicate } => {
                    let mut inner = node_json(&node.children[0]);
                    attach_condition(&mut inner, predicate.to_string());
                    inner
                }
                _ => node_json(&node.children[0]),
            }
        }
        PhysOp::HashJoin { .. } | PhysOp::NestedLoopJoin { .. } | PhysOp::MergeJoin { .. } => {
            let mut tables = Vec::new();
            flatten_join(node, &mut tables);
            vec![(
                "nested_loop".into(),
                JsonValue::Array(
                    tables
                        .into_iter()
                        .map(|t| JsonValue::Object(vec![("table".into(), t)]))
                        .collect(),
                ),
            )]
        }
        PhysOp::SeqScan { .. } | PhysOp::IndexScan { .. } => {
            vec![("table".into(), table_json(node))]
        }
        PhysOp::Append | PhysOp::SetOp { .. } => {
            let specs: Vec<JsonValue> = node
                .children
                .iter()
                .map(|c| {
                    JsonValue::Object(vec![(
                        "query_block".into(),
                        JsonValue::Object(node_json(c)),
                    )])
                })
                .collect();
            vec![(
                "union_result".into(),
                JsonValue::Object(vec![
                    ("using_temporary_table".into(), JsonValue::Bool(true)),
                    ("query_specifications".into(), JsonValue::Array(specs)),
                ]),
            )]
        }
        PhysOp::Empty => vec![("message".into(), JsonValue::from("No tables used"))],
    }
}

fn attach_condition<'a>(members: &mut JsonMembers<'a>, condition: String) {
    let target = members.iter_mut().find_map(|(key, value)| match value {
        JsonValue::Object(table) if key == "table" => Some(table),
        _ => None,
    });
    let entry = ("attached_condition".into(), JsonValue::from(condition));
    match target {
        Some(table) => table.push(entry),
        None => members.push(entry),
    }
}

fn flatten_join<'a>(node: &'a PhysNode, out: &mut Vec<JsonValue<'a>>) {
    match &node.op {
        PhysOp::HashJoin { .. } | PhysOp::NestedLoopJoin { .. } | PhysOp::MergeJoin { .. } => {
            flatten_join(&node.children[0], out);
            flatten_join(&node.children[1], out);
        }
        PhysOp::SeqScan { .. } | PhysOp::IndexScan { .. } => out.push(table_json(node)),
        PhysOp::Filter { .. } | PhysOp::Project { .. } => flatten_join(&node.children[0], out),
        _ => {
            // Non-table join input (e.g. aggregate): summarized as a
            // materialized derived table.
            out.push(JsonValue::Object(vec![
                ("table_name".into(), JsonValue::from("<derived>")),
                ("access_type".into(), JsonValue::from("ALL")),
            ]))
        }
    }
}

fn table_json<'a>(node: &'a PhysNode) -> JsonValue<'a> {
    let mut members: JsonMembers<'a> = Vec::new();
    match &node.op {
        PhysOp::SeqScan { table, filter, .. } => {
            members.push(("table_name".into(), JsonValue::from(table.as_str())));
            members.push(("access_type".into(), JsonValue::from("ALL")));
            members.push((
                "rows_examined_per_scan".into(),
                JsonValue::Int(node.est_rows.max(0.0) as i64),
            ));
            members.push((
                "rows_produced_per_join".into(),
                JsonValue::Int(node.est_rows.max(0.0) as i64),
            ));
            members.push(("filtered".into(), JsonValue::from("100.00")));
            if let Some(f) = filter {
                members.push(("attached_condition".into(), JsonValue::from(f.to_string())));
            }
        }
        PhysOp::IndexScan {
            table,
            index,
            access,
            filter,
            index_only,
            ..
        } => {
            members.push(("table_name".into(), JsonValue::from(table.as_str())));
            let access_type = match access {
                IndexAccess::Eq(_) => "ref",
                IndexAccess::Range { .. } => "range",
                IndexAccess::Full => "index",
            };
            members.push(("access_type".into(), JsonValue::from(access_type)));
            members.push(("key".into(), JsonValue::from(index.as_str())));
            members.push((
                "used_key_parts".into(),
                JsonValue::Array(vec![JsonValue::from("c0")]),
            ));
            members.push((
                "rows_examined_per_scan".into(),
                JsonValue::Int(node.est_rows.max(0.0) as i64),
            ));
            members.push(("using_index".into(), JsonValue::Bool(*index_only)));
            if let Some(f) = filter {
                members.push(("attached_condition".into(), JsonValue::from(f.to_string())));
            }
        }
        _ => {}
    }
    members.push((
        "cost_info".into(),
        JsonValue::Object(vec![
            (
                "read_cost".into(),
                JsonValue::from(format!("{:.2}", node.est_total_cost * 0.7)),
            ),
            (
                "eval_cost".into(),
                JsonValue::from(format!("{:.2}", node.est_total_cost * 0.3)),
            ),
            (
                "prefix_cost".into(),
                JsonValue::from(format!("{:.2}", node.est_total_cost)),
            ),
        ]),
    ));
    JsonValue::Object(members)
}

/// Serializes the classic table format (paper Fig. 2's MySQL box).
pub fn to_table(plan: &ExplainedPlan) -> String {
    let mut rows: Vec<[String; 7]> = Vec::new();
    collect_table_rows(&plan.root, "SIMPLE", &mut rows);
    for sub in &plan.subplans {
        collect_table_rows(sub, "SUBQUERY", &mut rows);
    }
    if rows.is_empty() {
        rows.push([
            "1".into(),
            "SIMPLE".into(),
            "NULL".into(),
            "NULL".into(),
            "NULL".into(),
            "NULL".into(),
            "No tables used".into(),
        ]);
    }
    let header = ["id", "select_type", "table", "type", "key", "rows", "Extra"];
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    rule(&mut out);
    out.push('|');
    for (h, w) in header.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |", w = w));
    }
    out.push('\n');
    rule(&mut out);
    for row in &rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            let pad = w - cell.chars().count();
            out.push_str(&format!(" {cell}{} |", " ".repeat(pad)));
        }
        out.push('\n');
    }
    rule(&mut out);
    out
}

fn collect_table_rows(node: &PhysNode, select_type: &str, rows: &mut Vec<[String; 7]>) {
    match &node.op {
        PhysOp::SeqScan { table, filter, .. } => {
            let extra = if filter.is_some() { "Using where" } else { "" };
            rows.push([
                "1".into(),
                select_type.into(),
                table.clone(),
                "ALL".into(),
                "NULL".into(),
                format!("{:.0}", node.est_rows.max(0.0)),
                extra.into(),
            ]);
        }
        PhysOp::IndexScan {
            table,
            index,
            access,
            index_only,
            ..
        } => {
            let ty = match access {
                IndexAccess::Eq(_) => "ref",
                IndexAccess::Range { .. } => "range",
                IndexAccess::Full => "index",
            };
            let extra = if *index_only {
                "Using index"
            } else {
                "Using index condition"
            };
            rows.push([
                "1".into(),
                select_type.into(),
                table.clone(),
                ty.into(),
                index.clone(),
                format!("{:.0}", node.est_rows.max(0.0)),
                extra.into(),
            ]);
        }
        _ => {
            for child in &node.children {
                collect_table_rows(child, select_type, rows);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::profile::EngineProfile;
    use minidb::Database;
    use uplan_core::formats::json;

    fn db() -> Database {
        let mut db = Database::new(EngineProfile::MySql);
        db.execute("CREATE TABLE t0 (c0 INT, c1 INT)").unwrap();
        db.execute("CREATE TABLE t1 (c0 INT PRIMARY KEY)").unwrap();
        for i in 0..30 {
            db.execute(&format!("INSERT INTO t0 VALUES ({i}, {})", i % 3))
                .unwrap();
        }
        for i in 0..10 {
            db.execute(&format!("INSERT INTO t1 VALUES ({i})")).unwrap();
        }
        db
    }

    #[test]
    fn fig2_table_format() {
        let mut db = db();
        let plan = db.explain("SELECT * FROM t0 WHERE c0 < 5").unwrap();
        let text = to_table(&plan);
        assert!(text.contains("| id"), "{text}");
        assert!(text.contains("SIMPLE"), "{text}");
        assert!(text.contains("t0"), "{text}");
        assert!(text.contains("ALL"), "{text}");
        assert!(text.contains("Using where"), "{text}");
    }

    #[test]
    fn json_parses_and_nests() {
        let mut db = db();
        let plan = db
            .explain("SELECT t0.c0, COUNT(*) FROM t0 JOIN t1 ON t0.c0 = t1.c0 GROUP BY t0.c0 ORDER BY t0.c0")
            .unwrap();
        let text = to_json(&plan);
        let doc = json::parse(&text).unwrap();
        let block = doc.get("query_block").unwrap();
        let ordering = block.get("ordering_operation").unwrap();
        let grouping = ordering.get("grouping_operation").unwrap();
        assert!(grouping.get("nested_loop").is_some(), "{}", doc.to_pretty());
    }

    #[test]
    fn index_join_uses_ref_access() {
        let mut db = db();
        let plan = db
            .explain("SELECT t0.c0 FROM t0 JOIN t1 ON t0.c0 = t1.c0")
            .unwrap();
        let text = to_table(&plan);
        // MySQL profile prefers an index nested-loop: the inner table reads
        // via its primary key.
        assert!(text.contains("t1_pkey") || text.contains("ref"), "{text}");
    }

    #[test]
    fn subqueries_render() {
        let mut db = db();
        let plan = db
            .explain("SELECT c0 FROM t0 WHERE c0 > (SELECT COUNT(*) FROM t1)")
            .unwrap();
        let text = to_table(&plan);
        assert!(text.contains("SUBQUERY"), "{text}");
        let text = to_json(&plan);
        let doc = json::parse(&text).unwrap();
        assert!(doc.get("query_block").unwrap().get("subquery_1").is_some());
    }

    #[test]
    fn union_renders_query_specifications() {
        let mut db = db();
        let plan = db
            .explain("SELECT c0 FROM t0 UNION ALL SELECT c0 FROM t1")
            .unwrap();
        let text = to_json(&plan);
        let doc = json::parse(&text).unwrap();
        let union = doc.get("query_block").unwrap().get("union_result").unwrap();
        assert_eq!(
            union
                .get("query_specifications")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
    }
}
