//! Neo4j plan-table serialization (paper Fig. 1).
//!
//! Renders a [`minigraph::GraphPlan`] the way Neo4j Browser prints it: a
//! `Planner`/`Runtime` header, an ASCII operator table with `+`-prefixed
//! operator names, and the `Total database accesses` footer.

use minigraph::GraphPlan;

/// Serializes the operator table text.
pub fn to_table(plan: &GraphPlan) -> String {
    let executed = plan.operators.iter().any(|o| o.rows.is_some());
    let mut header = vec!["Operator", "Details", "Estimated Rows"];
    if executed {
        header.push("Rows");
        header.push("DB Hits");
    }

    let mut body: Vec<Vec<String>> = Vec::new();
    for op in &plan.operators {
        let mut row = vec![
            format!("+{}", op.name),
            op.details.clone(),
            format!("{:.0}", op.estimated_rows),
        ];
        if executed {
            row.push(op.rows.map_or(String::new(), |r| r.to_string()));
            row.push(op.db_hits.map_or(String::new(), |h| h.to_string()));
        }
        body.push(row);
    }

    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in &body {
        for c in 0..cols {
            widths[c] = widths[c].max(row[c].chars().count());
        }
    }

    let mut out = String::new();
    out.push_str(&format!("Planner {}\n", plan.planner));
    out.push_str(&format!("Runtime {}\n", plan.runtime));
    out.push_str(&format!("Runtime version {}\n\n", plan.runtime_version));
    let rule = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    rule(&mut out);
    out.push('|');
    for (h, w) in header.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |", w = w));
    }
    out.push('\n');
    rule(&mut out);
    for row in &body {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            let pad = w - cell.chars().count();
            out.push_str(&format!(" {cell}{} |", " ".repeat(pad)));
        }
        out.push('\n');
    }
    rule(&mut out);
    out.push_str(&format!(
        "\nTotal database accesses: {}, total allocated memory: {}\n",
        plan.total_db_hits, plan.memory_bytes
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minigraph::{GraphStore, PatternQuery, PropPredicate, PropValue};

    #[test]
    fn fig1_table_shape() {
        let mut g = GraphStore::new();
        let a = g.add_node(&["P"], vec![]);
        let b = g.add_node(&["P"], vec![]);
        for i in 0..8 {
            g.add_rel(
                a,
                b,
                "WORKS_AS",
                vec![(
                    "title",
                    PropValue::Str(if i < 4 {
                        "developer".into()
                    } else {
                        "boss".into()
                    }),
                )],
            );
        }
        let (_, plan) = g.run(&PatternQuery {
            rel_type: Some("WORKS_AS".into()),
            undirected: true,
            rel_predicates: vec![PropPredicate::EndsWith("title".into(), "developer".into())],
            ..PatternQuery::default()
        });
        let text = to_table(&plan);
        assert!(text.starts_with("Planner COST"), "{text}");
        assert!(text.contains("Runtime version"), "{text}");
        assert!(text.contains("+ProduceResults"), "{text}");
        assert!(
            text.contains("UndirectedRelationshipIndexContainsScan"),
            "{text}"
        );
        assert!(text.contains("Total database accesses:"), "{text}");
        assert!(text.contains("total allocated memory:"), "{text}");
    }

    #[test]
    fn explain_omits_actual_columns() {
        let mut g = GraphStore::new();
        g.add_node(&["N"], vec![]);
        let plan = g.explain(&PatternQuery {
            src_label: Some("N".into()),
            ..PatternQuery::default()
        });
        let text = to_table(&plan);
        assert!(text.contains("Estimated Rows"), "{text}");
        assert!(!text.contains("DB Hits"), "{text}");
    }
}
