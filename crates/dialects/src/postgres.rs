//! PostgreSQL `EXPLAIN` serialization (text and `FORMAT JSON`).
//!
//! Reproduces the shapes of paper Listing 1: operations with
//! `(cost=.. rows=.. width=..)` suffixes, properties on follow-up indented
//! lines (`Filter:`, `Hash Cond:`, `Group Key:`, `Sort Key:`), hash-join
//! build sides under explicit `Hash` nodes, parallel scans under `Gather`
//! with `Workers Planned`, projections invisible, and plan-level
//! `Planning Time` / `Execution Time` footers.

use minidb::physical::{AggStrategy, ExplainedPlan, IndexAccess, PhysNode, PhysOp};
use minidb::sql::ast::SetOpKind;
use uplan_core::formats::json::{object, JsonMembers, JsonValue};

/// A dialect-ready node: PostgreSQL operation name, properties, children.
#[derive(Debug, Clone)]
pub struct PgNode {
    /// Node type as EXPLAIN prints it.
    pub node_type: String,
    /// `(property, value)` pairs in print order.
    pub properties: Vec<(String, String)>,
    /// Estimated rows.
    pub rows: f64,
    /// Startup/total cost.
    pub cost: (f64, f64),
    /// Actual rows (ANALYZE).
    pub actual: Option<(u64, f64)>,
    /// Children.
    pub children: Vec<PgNode>,
    /// `Parent Relationship` of each child (JSON format only).
    pub parent_relationship: &'static str,
}

/// Expands a generic plan into the PostgreSQL node tree.
pub fn expand(plan: &ExplainedPlan) -> PgNode {
    let mut root = expand_node(&plan.root, "Outer");
    for (i, sub) in plan.subplans.iter().enumerate() {
        let mut sub_node = expand_node(sub, "SubPlan");
        sub_node
            .properties
            .push(("Subplan Name".to_owned(), format!("SubPlan {}", i + 1)));
        root.children.push(sub_node);
    }
    root
}

fn expand_node(node: &PhysNode, parent_relationship: &'static str) -> PgNode {
    let mut out = PgNode {
        node_type: String::new(),
        properties: Vec::new(),
        rows: node.est_rows,
        cost: (node.est_startup_cost, node.est_total_cost),
        actual: node.actual.map(|a| (a.rows, a.time_ms)),
        children: Vec::new(),
        parent_relationship,
    };
    match &node.op {
        PhysOp::SeqScan {
            table,
            alias,
            filter,
            parallel,
        } => {
            if *parallel {
                // Gather + Parallel Seq Scan (paper Listing 1 lines 15–24).
                out.node_type = "Gather".to_owned();
                out.properties
                    .push(("Workers Planned".to_owned(), "2".to_owned()));
                let mut scan = PgNode {
                    node_type: "Parallel Seq Scan".to_owned(),
                    properties: vec![
                        ("Relation Name".to_owned(), table.clone()),
                        ("Alias".to_owned(), alias.clone()),
                    ],
                    rows: node.est_rows / 2.0,
                    cost: (0.0, node.est_total_cost / 2.0),
                    actual: node.actual.map(|a| (a.rows, a.time_ms)),
                    children: Vec::new(),
                    parent_relationship: "Outer",
                };
                if let Some(f) = filter {
                    scan.properties.push(("Filter".to_owned(), f.to_string()));
                }
                out.children.push(scan);
            } else {
                out.node_type = "Seq Scan".to_owned();
                out.properties
                    .push(("Relation Name".to_owned(), table.clone()));
                out.properties.push(("Alias".to_owned(), alias.clone()));
                if let Some(f) = filter {
                    out.properties.push(("Filter".to_owned(), f.to_string()));
                }
            }
        }
        PhysOp::IndexScan {
            table,
            alias,
            index,
            access,
            filter,
            index_only,
            ..
        } => {
            out.node_type = if *index_only {
                "Index Only Scan".to_owned()
            } else {
                "Index Scan".to_owned()
            };
            out.properties
                .push(("Index Name".to_owned(), index.clone()));
            out.properties
                .push(("Relation Name".to_owned(), table.clone()));
            out.properties.push(("Alias".to_owned(), alias.clone()));
            if let Some(cond) = render_access(access) {
                out.properties.push(("Index Cond".to_owned(), cond));
            }
            if let Some(f) = filter {
                out.properties.push(("Filter".to_owned(), f.to_string()));
            }
        }
        PhysOp::Filter { predicate } => {
            // PostgreSQL attaches filters to nodes; merge into the child.
            let mut child = expand_node(&node.children[0], parent_relationship);
            child
                .properties
                .push(("Filter".to_owned(), predicate.to_string()));
            child.rows = node.est_rows;
            if let Some(a) = node.actual {
                child.actual = Some((a.rows, a.time_ms));
            }
            return child;
        }
        PhysOp::Project { .. } => {
            // Projections are not explicit PostgreSQL plan nodes.
            let mut child = expand_node(&node.children[0], parent_relationship);
            child.parent_relationship = parent_relationship;
            return child;
        }
        PhysOp::HashJoin { keys, residual, .. } => {
            out.node_type = "Hash Join".to_owned();
            out.properties.push((
                "Hash Cond".to_owned(),
                keys.iter()
                    .map(|(a, b)| format!("(probe.c{a} = build.c{b})"))
                    .collect::<Vec<_>>()
                    .join(" AND "),
            ));
            if let Some(r) = residual {
                out.properties
                    .push(("Join Filter".to_owned(), r.to_string()));
            }
            out.children.push(expand_node(&node.children[0], "Outer"));
            // The build side sits under an explicit Hash node
            // (paper Listing 4's `Executor->Hash Row`).
            let build = expand_node(&node.children[1], "Outer");
            let hash = PgNode {
                node_type: "Hash".to_owned(),
                properties: Vec::new(),
                rows: build.rows,
                cost: build.cost,
                actual: build.actual,
                children: vec![build],
                parent_relationship: "Inner",
            };
            out.children.push(hash);
        }
        PhysOp::NestedLoopJoin { on, .. } => {
            out.node_type = "Nested Loop".to_owned();
            if let Some(p) = on {
                out.properties
                    .push(("Join Filter".to_owned(), p.to_string()));
            }
            out.children.push(expand_node(&node.children[0], "Outer"));
            out.children.push(expand_node(&node.children[1], "Inner"));
        }
        PhysOp::MergeJoin { residual, .. } => {
            out.node_type = "Merge Join".to_owned();
            if let Some(r) = residual {
                out.properties
                    .push(("Join Filter".to_owned(), r.to_string()));
            }
            out.children.push(expand_node(&node.children[0], "Outer"));
            out.children.push(expand_node(&node.children[1], "Inner"));
        }
        PhysOp::Aggregate {
            strategy,
            group_by,
            having,
            ..
        } => {
            out.node_type = match strategy {
                AggStrategy::Hash => "HashAggregate".to_owned(),
                AggStrategy::Sorted => "GroupAggregate".to_owned(),
                AggStrategy::Plain => "Aggregate".to_owned(),
            };
            if !group_by.is_empty() {
                out.properties.push((
                    "Group Key".to_owned(),
                    group_by
                        .iter()
                        .map(|g| g.to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                ));
            }
            if let Some(h) = having {
                out.properties.push(("Filter".to_owned(), h.to_string()));
            }
            out.children.push(expand_node(&node.children[0], "Outer"));
        }
        PhysOp::Sort { keys } => {
            out.node_type = "Sort".to_owned();
            out.properties.push((
                "Sort Key".to_owned(),
                keys.iter()
                    .map(|(k, desc)| {
                        if *desc {
                            format!("{k} DESC")
                        } else {
                            k.to_string()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
            ));
            out.children.push(expand_node(&node.children[0], "Outer"));
        }
        PhysOp::TopN {
            keys,
            limit,
            offset,
        } => {
            // PostgreSQL renders Top-N as Limit over Sort.
            out.node_type = "Limit".to_owned();
            if *offset > 0 {
                out.properties
                    .push(("Offset".to_owned(), offset.to_string()));
            }
            let mut sort = PgNode {
                node_type: "Sort".to_owned(),
                properties: vec![(
                    "Sort Key".to_owned(),
                    keys.iter()
                        .map(|(k, d)| {
                            if *d {
                                format!("{k} DESC")
                            } else {
                                k.to_string()
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(", "),
                )],
                rows: node.est_rows,
                cost: (node.est_startup_cost, node.est_total_cost),
                actual: node.actual.map(|a| (a.rows, a.time_ms)),
                children: Vec::new(),
                parent_relationship: "Outer",
            };
            sort.children.push(expand_node(&node.children[0], "Outer"));
            out.children.push(sort);
            let _ = limit;
        }
        PhysOp::Limit { offset, .. } => {
            out.node_type = "Limit".to_owned();
            if *offset > 0 {
                out.properties
                    .push(("Offset".to_owned(), offset.to_string()));
            }
            out.children.push(expand_node(&node.children[0], "Outer"));
        }
        PhysOp::Distinct => {
            // UNION dedup shows as HashAggregate over Append (Listing 1).
            out.node_type = "HashAggregate".to_owned();
            out.properties
                .push(("Group Key".to_owned(), "all columns".to_owned()));
            out.children.push(expand_node(&node.children[0], "Outer"));
        }
        PhysOp::SetOp { op, .. } => {
            out.node_type = match op {
                SetOpKind::Intersect => "SetOp Intersect".to_owned(),
                SetOpKind::Except => "SetOp Except".to_owned(),
                SetOpKind::Union => "SetOp".to_owned(),
            };
            out.children.push(expand_node(&node.children[0], "Outer"));
            out.children.push(expand_node(&node.children[1], "Inner"));
        }
        PhysOp::Append => {
            out.node_type = "Append".to_owned();
            for child in &node.children {
                out.children.push(expand_node(child, "Member"));
            }
        }
        PhysOp::Empty => {
            out.node_type = "Result".to_owned();
        }
    }
    out
}

fn render_access(access: &IndexAccess) -> Option<String> {
    match access {
        IndexAccess::Eq(e) => Some(format!("(key = {e})")),
        IndexAccess::Range { low, high } => {
            let mut parts = Vec::new();
            if let Some(l) = low {
                parts.push(format!("(key >= {l})"));
            }
            if let Some(h) = high {
                parts.push(format!("(key <= {h})"));
            }
            if parts.is_empty() {
                None
            } else {
                Some(parts.join(" AND "))
            }
        }
        IndexAccess::Full => None,
    }
}

/// Serializes as `EXPLAIN` text.
pub fn to_text(plan: &ExplainedPlan) -> String {
    let expanded = expand(plan);
    let mut out = String::new();
    write_text(&expanded, 0, true, &mut out);
    out.push_str(&format!("Planning Time: {:.3} ms\n", plan.planning_time_ms));
    if let Some(t) = plan.execution_time_ms {
        out.push_str(&format!("Execution Time: {t:.3} ms\n"));
    }
    out
}

fn write_text(node: &PgNode, depth: usize, is_root: bool, out: &mut String) {
    let indent = "  ".repeat(depth);
    let arrow = if is_root { "" } else { "->  " };
    let mut head = format!("{indent}{arrow}{}", node.node_type);
    // Scans include their relation inline, like real EXPLAIN text.
    let relation = node
        .properties
        .iter()
        .find(|(k, _)| k == "Relation Name")
        .map(|(_, v)| v.clone());
    let index = node
        .properties
        .iter()
        .find(|(k, _)| k == "Index Name")
        .map(|(_, v)| v.clone());
    if let Some(idx) = &index {
        head.push_str(&format!(" using {idx}"));
    }
    if let Some(rel) = &relation {
        head.push_str(&format!(" on {rel}"));
    }
    head.push_str(&format!(
        "  (cost={:.2}..{:.2} rows={:.0} width=8)",
        node.cost.0,
        node.cost.1,
        node.rows.max(0.0)
    ));
    if let Some((rows, time)) = node.actual {
        head.push_str(&format!(
            " (actual time=0.000..{time:.3} rows={rows} loops=1)"
        ));
    }
    out.push_str(&head);
    out.push('\n');
    for (key, value) in &node.properties {
        if matches!(key.as_str(), "Relation Name" | "Alias" | "Index Name") {
            continue;
        }
        out.push_str(&format!("{indent}      {key}: {value}\n"));
    }
    for child in &node.children {
        write_text(child, depth + 1, false, out);
    }
}

/// Serializes as `EXPLAIN (FORMAT JSON)`.
pub fn to_json(plan: &ExplainedPlan) -> String {
    let expanded = expand(plan);
    let mut doc: JsonMembers<'_> = vec![("Plan".into(), node_json(&expanded))];
    doc.push((
        "Planning Time".into(),
        JsonValue::Float(plan.planning_time_ms),
    ));
    if let Some(t) = plan.execution_time_ms {
        doc.push(("Execution Time".into(), JsonValue::Float(t)));
    }
    JsonValue::Array(vec![JsonValue::Object(doc)]).to_pretty()
}

fn node_json<'a>(node: &'a PgNode) -> JsonValue<'a> {
    let mut members: JsonMembers<'a> = vec![
        ("Node Type".into(), JsonValue::from(node.node_type.as_str())),
        (
            "Parent Relationship".into(),
            JsonValue::from(node.parent_relationship),
        ),
        ("Startup Cost".into(), JsonValue::Float(node.cost.0)),
        ("Total Cost".into(), JsonValue::Float(node.cost.1)),
        (
            "Plan Rows".into(),
            JsonValue::Int(node.rows.max(0.0) as i64),
        ),
        ("Plan Width".into(), JsonValue::Int(8)),
    ];
    for (key, value) in &node.properties {
        members.push((key.as_str().into(), JsonValue::from(value.as_str())));
    }
    if let Some((rows, time)) = node.actual {
        members.push(("Actual Rows".into(), JsonValue::Int(rows as i64)));
        members.push(("Actual Total Time".into(), JsonValue::Float(time)));
    }
    if !node.children.is_empty() {
        members.push((
            "Plans".into(),
            JsonValue::Array(node.children.iter().map(node_json).collect()),
        ));
    }
    JsonValue::Object(members)
}

/// Convenience: an `object` for tests.
pub fn test_document() -> JsonValue<'static> {
    object([("ok", JsonValue::Bool(true))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::profile::EngineProfile;
    use minidb::Database;

    fn listing1_db() -> Database {
        let mut db = Database::new(EngineProfile::Postgres);
        db.execute("CREATE TABLE t0 (c0 INT)").unwrap();
        db.execute("CREATE TABLE t1 (c0 INT)").unwrap();
        db.execute("CREATE TABLE t2 (c0 INT PRIMARY KEY)").unwrap();
        for i in 0..200 {
            db.execute(&format!("INSERT INTO t0 VALUES ({i})")).unwrap();
        }
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t1 VALUES ({})", i % 10))
                .unwrap();
        }
        for i in 0..100 {
            db.execute(&format!("INSERT INTO t2 VALUES ({i})")).unwrap();
        }
        db
    }

    #[test]
    fn listing1_text_shape() {
        let mut db = listing1_db();
        let plan = db
            .explain(
                "SELECT t1.c0 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c0 < 100 \
                 GROUP BY t1.c0 UNION SELECT c0 FROM t2 WHERE c0 < 10",
            )
            .unwrap();
        let text = to_text(&plan);
        assert!(text.contains("Append"), "{text}");
        assert!(text.contains("Hash Join"), "{text}");
        assert!(text.contains("Seq Scan on t0"), "{text}");
        assert!(text.contains("Filter:"), "{text}");
        assert!(text.contains("Group Key:"), "{text}");
        assert!(text.contains("Planning Time:"), "{text}");
        // The UNION dedup appears as an aggregate over Append.
        assert!(text.contains("HashAggregate"), "{text}");
    }

    #[test]
    fn hash_builds_get_hash_nodes() {
        let mut db = listing1_db();
        let plan = db
            .explain("SELECT t1.c0 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0")
            .unwrap();
        let text = to_text(&plan);
        let hash_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("->  Hash "));
        assert!(hash_line.is_some(), "{text}");
    }

    #[test]
    fn parallel_scan_gets_gather() {
        let mut db = Database::new(EngineProfile::Postgres);
        db.execute("CREATE TABLE big (x INT)").unwrap();
        for chunk in 0..200 {
            let values: Vec<String> = (0..100).map(|i| format!("({})", chunk * 100 + i)).collect();
            db.execute(&format!("INSERT INTO big VALUES {}", values.join(",")))
                .unwrap();
        }
        let plan = db.explain("SELECT x FROM big WHERE x < 3").unwrap();
        let text = to_text(&plan);
        assert!(text.contains("Gather"), "{text}");
        assert!(text.contains("Parallel Seq Scan on big"), "{text}");
        assert!(text.contains("Workers Planned: 2"), "{text}");
    }

    #[test]
    fn index_scan_rendering() {
        let mut db = listing1_db();
        let plan = db.explain("SELECT c0 FROM t2 WHERE c0 = 5").unwrap();
        let text = to_text(&plan);
        assert!(text.contains("using t2_pkey on t2"), "{text}");
        assert!(text.contains("Index Cond"), "{text}");
    }

    #[test]
    fn json_round_trips_through_parser() {
        let mut db = listing1_db();
        let plan = db
            .explain("SELECT t1.c0 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c0 < 100")
            .unwrap();
        let text = to_json(&plan);
        let doc = uplan_core::formats::json::parse(&text).unwrap();
        let plan_obj = doc.as_array().unwrap()[0].get("Plan").unwrap();
        assert!(plan_obj.get("Node Type").is_some());
        assert!(plan_obj.get("Plans").is_some());
    }

    #[test]
    fn subplans_are_attached() {
        let mut db = listing1_db();
        let plan = db
            .explain("SELECT c0 FROM t0 WHERE c0 > (SELECT COUNT(*) FROM t1)")
            .unwrap();
        assert_eq!(plan.subplans.len(), 1);
        let text = to_text(&plan);
        assert!(text.contains("Subplan Name: SubPlan 1"), "{text}");
        // Producer census: t0 scan + t1 scan.
        let scans = text.matches("Seq Scan").count() + text.matches("Index Only Scan").count();
        assert!(scans >= 2, "{text}");
    }

    #[test]
    fn analyze_appends_actuals() {
        let mut db = listing1_db();
        let (plan, _) = db
            .explain_analyze("SELECT c0 FROM t2 WHERE c0 < 10")
            .unwrap();
        let text = to_text(&plan);
        assert!(text.contains("actual time="), "{text}");
        assert!(text.contains("Execution Time:"), "{text}");
    }
}
