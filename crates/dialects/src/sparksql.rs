//! SparkSQL physical-plan serialization (`== Physical Plan ==` text).
//!
//! Emits the `AdaptiveSparkPlan` / `+- ` indented operator text of
//! `df.explain()`, including the Spark idioms the study catalogued:
//! `Exchange hashpartitioning` between partial and final `HashAggregate`s,
//! explicit `Project`/`Filter` operators in the Executor category, and
//! `FileScan` leaves.

use minidb::physical::{ExplainedPlan, IndexAccess, PhysNode, PhysOp};

/// A rendered Spark operator line with children.
#[derive(Debug, Clone)]
pub struct SparkNode {
    /// Operator text (name + arguments).
    pub line: String,
    /// Children.
    pub children: Vec<SparkNode>,
}

impl SparkNode {
    fn new(line: impl Into<String>, children: Vec<SparkNode>) -> SparkNode {
        SparkNode {
            line: line.into(),
            children,
        }
    }
}

/// Expands a generic plan into the Spark operator tree.
pub fn expand(plan: &ExplainedPlan) -> SparkNode {
    SparkNode::new("AdaptiveSparkPlan isFinalPlan=true", vec![walk(&plan.root)])
}

fn walk(node: &PhysNode) -> SparkNode {
    match &node.op {
        PhysOp::SeqScan { table, filter, .. } => {
            let scan = SparkNode::new(
                format!("FileScan parquet default.{table} Batched: true, Format: Parquet"),
                vec![],
            );
            match filter {
                Some(f) => SparkNode::new(
                    format!("Filter {f}"),
                    vec![SparkNode::new("ColumnarToRow", vec![scan])],
                ),
                None => SparkNode::new("ColumnarToRow", vec![scan]),
            }
        }
        PhysOp::IndexScan {
            table,
            access,
            filter,
            ..
        } => {
            // Spark has no indexes; pushed predicates become PushedFilters.
            let pushed = match access {
                IndexAccess::Eq(e) => format!("PushedFilters: [EqualTo({e})]"),
                IndexAccess::Range { .. } => "PushedFilters: [Range]".to_owned(),
                IndexAccess::Full => "PushedFilters: []".to_owned(),
            };
            let scan = SparkNode::new(format!("FileScan parquet default.{table} {pushed}"), vec![]);
            match filter {
                Some(f) => SparkNode::new(format!("Filter {f}"), vec![scan]),
                None => scan,
            }
        }
        PhysOp::Filter { predicate } => {
            SparkNode::new(format!("Filter {predicate}"), vec![walk(&node.children[0])])
        }
        PhysOp::Project { labels, .. } => SparkNode::new(
            format!("Project [{}]", labels.join(", ")),
            vec![walk(&node.children[0])],
        ),
        PhysOp::HashJoin { keys, .. } => SparkNode::new(
            format!(
                "BroadcastHashJoin [{}], Inner, BuildRight",
                keys.iter()
                    .map(|(a, b)| format!("c{a} = c{b}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            vec![
                walk(&node.children[0]),
                SparkNode::new(
                    "BroadcastExchange HashedRelationBroadcastMode",
                    vec![walk(&node.children[1])],
                ),
            ],
        ),
        PhysOp::NestedLoopJoin { .. } => SparkNode::new(
            "BroadcastNestedLoopJoin BuildRight, Inner",
            vec![walk(&node.children[0]), walk(&node.children[1])],
        ),
        PhysOp::MergeJoin { key, .. } => SparkNode::new(
            format!("SortMergeJoin [c{}], [c{}], Inner", key.0, key.1),
            vec![walk(&node.children[0]), walk(&node.children[1])],
        ),
        PhysOp::Aggregate { group_by, aggs, .. } => {
            let keys = group_by
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let funcs = aggs
                .iter()
                .map(|a| a.label.clone())
                .collect::<Vec<_>>()
                .join(", ");
            // Partial → Exchange → Final, the distributed aggregation spine.
            let partial = SparkNode::new(
                format!("HashAggregate(keys=[{keys}], functions=[partial_{funcs}])"),
                vec![walk(&node.children[0])],
            );
            let exchange = SparkNode::new(
                format!("Exchange hashpartitioning({keys}, 200)"),
                vec![partial],
            );
            SparkNode::new(
                format!("HashAggregate(keys=[{keys}], functions=[{funcs}])"),
                vec![exchange],
            )
        }
        PhysOp::Sort { keys } => SparkNode::new(
            format!(
                "Sort [{}], true, 0",
                keys.iter()
                    .map(|(k, d)| format!("{k} {}", if *d { "DESC" } else { "ASC" }))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            vec![walk(&node.children[0])],
        ),
        PhysOp::TopN { keys, limit, .. } => SparkNode::new(
            format!(
                "TakeOrderedAndProject(limit={limit}, orderBy=[{}])",
                keys.iter()
                    .map(|(k, d)| format!("{k} {}", if *d { "DESC" } else { "ASC" }))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            vec![walk(&node.children[0])],
        ),
        PhysOp::Limit { limit, .. } => SparkNode::new(
            format!("GlobalLimit {}", limit.unwrap_or(0)),
            vec![SparkNode::new(
                format!("LocalLimit {}", limit.unwrap_or(0)),
                vec![walk(&node.children[0])],
            )],
        ),
        PhysOp::Distinct => SparkNode::new(
            "HashAggregate(keys=[all], functions=[])",
            vec![walk(&node.children[0])],
        ),
        PhysOp::SetOp { .. } | PhysOp::Append => {
            SparkNode::new("Union", node.children.iter().map(walk).collect())
        }
        PhysOp::Empty => SparkNode::new("LocalTableScan [1 row]", vec![]),
    }
}

/// Serializes the `== Physical Plan ==` text.
pub fn to_text(plan: &ExplainedPlan) -> String {
    let tree = expand(plan);
    let mut out = String::from("== Physical Plan ==\n");
    write_node(&tree, "", true, true, &mut out);
    out
}

fn write_node(node: &SparkNode, prefix: &str, is_root: bool, is_last: bool, out: &mut String) {
    if is_root {
        out.push_str(&format!("{}\n", node.line));
    } else {
        let connector = if is_last { "+- " } else { ":- " };
        out.push_str(&format!("{prefix}{connector}{}\n", node.line));
    }
    let child_prefix = if is_root {
        String::new()
    } else {
        format!("{prefix}{}", if is_last { "   " } else { ":  " })
    };
    for (i, child) in node.children.iter().enumerate() {
        write_node(
            child,
            &child_prefix,
            false,
            i + 1 == node.children.len(),
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::profile::EngineProfile;
    use minidb::Database;

    #[test]
    fn aggregate_gets_exchange_spine() {
        let mut db = Database::new(EngineProfile::Postgres);
        db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
        for i in 0..20 {
            db.execute(&format!("INSERT INTO t VALUES ({}, {i})", i % 4))
                .unwrap();
        }
        let plan = db.explain("SELECT k, SUM(v) FROM t GROUP BY k").unwrap();
        let text = to_text(&plan);
        assert!(text.starts_with("== Physical Plan =="), "{text}");
        assert!(text.contains("AdaptiveSparkPlan"), "{text}");
        assert!(text.contains("Exchange hashpartitioning"), "{text}");
        assert!(
            text.matches("HashAggregate").count() >= 2,
            "partial+final: {text}"
        );
        assert!(text.contains("FileScan parquet default.t"), "{text}");
    }

    #[test]
    fn join_gets_broadcast_exchange() {
        let mut db = Database::new(EngineProfile::Postgres);
        db.execute("CREATE TABLE a (x INT)").unwrap();
        db.execute("CREATE TABLE b (x INT)").unwrap();
        db.execute("INSERT INTO a VALUES (1), (2)").unwrap();
        db.execute("INSERT INTO b VALUES (2), (3)").unwrap();
        let plan = db.explain("SELECT a.x FROM a JOIN b ON a.x = b.x").unwrap();
        let text = to_text(&plan);
        assert!(text.contains("BroadcastHashJoin"), "{text}");
        assert!(text.contains("BroadcastExchange"), "{text}");
    }

    #[test]
    fn filters_and_projects_are_explicit() {
        let mut db = Database::new(EngineProfile::Postgres);
        db.execute("CREATE TABLE t (x INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let plan = db.explain("SELECT x FROM t WHERE x < 5").unwrap();
        let text = to_text(&plan);
        assert!(text.contains("Project ["), "{text}");
        assert!(text.contains("Filter "), "{text}");
    }
}
