//! SQLite `EXPLAIN QUERY PLAN` serialization.
//!
//! Reproduces the tree text of paper Listing 1 lines 37–43: `QUERY PLAN`
//! header, `|--`/`` `-- `` connectors, `SCAN t`, `SEARCH t USING [AUTOMATIC
//! COVERING] INDEX name (cond)` lines, joins flattened into sibling scan
//! lines, and `USE TEMP B-TREE FOR ...` steps for sorting/grouping/distinct,
//! with compound queries under `COMPOUND QUERY` / `UNION USING TEMP B-TREE`.

use minidb::physical::{ExplainedPlan, IndexAccess, PhysNode, PhysOp};

/// A rendered EQP node (tree of report lines).
#[derive(Debug, Clone, PartialEq)]
pub struct EqpNode {
    /// The report line.
    pub line: String,
    /// Children.
    pub children: Vec<EqpNode>,
}

impl EqpNode {
    fn leaf(line: impl Into<String>) -> EqpNode {
        EqpNode {
            line: line.into(),
            children: Vec::new(),
        }
    }
}

/// Expands a plan into EQP report nodes (top-level sequence).
pub fn expand(plan: &ExplainedPlan) -> Vec<EqpNode> {
    let mut out = Vec::new();
    walk(&plan.root, &mut out);
    for sub in &plan.subplans {
        let mut inner = Vec::new();
        walk(sub, &mut inner);
        out.push(EqpNode {
            line: "SCALAR SUBQUERY 1".to_owned(),
            children: inner,
        });
    }
    out
}

fn walk(node: &PhysNode, out: &mut Vec<EqpNode>) {
    match &node.op {
        PhysOp::SeqScan { table, .. } => out.push(EqpNode::leaf(format!("SCAN {table}"))),
        PhysOp::IndexScan {
            table,
            index,
            access,
            automatic,
            ..
        } => {
            let cond = match access {
                IndexAccess::Eq(_) => "(c=?)",
                IndexAccess::Range { .. } => "(c>? AND c<?)",
                IndexAccess::Full => "",
            };
            let line = if *automatic {
                format!("SEARCH {table} USING AUTOMATIC COVERING INDEX {cond}")
            } else if index.ends_with("_pkey") {
                format!("SEARCH {table} USING INTEGER PRIMARY KEY {cond}")
            } else {
                format!("SEARCH {table} USING INDEX {index} {cond}")
            };
            out.push(EqpNode::leaf(line.trim_end().to_owned()));
        }
        PhysOp::Filter { .. } | PhysOp::Project { .. } | PhysOp::Limit { .. } => {
            // Invisible in EQP output.
            walk(&node.children[0], out);
        }
        PhysOp::HashJoin { .. } | PhysOp::NestedLoopJoin { .. } | PhysOp::MergeJoin { .. } => {
            // Joins flatten into sibling access lines (Listing 1: SCAN t0
            // followed by SEARCH t1).
            walk(&node.children[0], out);
            walk(&node.children[1], out);
        }
        PhysOp::Aggregate { group_by, .. } => {
            walk(&node.children[0], out);
            if !group_by.is_empty() {
                out.push(EqpNode::leaf("USE TEMP B-TREE FOR GROUP BY"));
            }
        }
        PhysOp::Sort { .. } | PhysOp::TopN { .. } => {
            walk(&node.children[0], out);
            out.push(EqpNode::leaf("USE TEMP B-TREE FOR ORDER BY"));
        }
        PhysOp::Distinct => {
            // Under a compound parent this is the UNION dedup itself; the
            // Append arm handles that. Standalone DISTINCT gets a B-tree.
            if matches!(node.children[0].op, PhysOp::Append) {
                walk_compound(&node.children[0], true, out);
            } else {
                walk(&node.children[0], out);
                out.push(EqpNode::leaf("USE TEMP B-TREE FOR DISTINCT"));
            }
        }
        PhysOp::Append => walk_compound(node, false, out),
        PhysOp::SetOp { op, .. } => {
            let mut left = Vec::new();
            walk(&node.children[0], &mut left);
            let mut right = Vec::new();
            walk(&node.children[1], &mut right);
            let name = match op {
                minidb::sql::ast::SetOpKind::Intersect => "INTERSECT USING TEMP B-TREE",
                minidb::sql::ast::SetOpKind::Except => "EXCEPT USING TEMP B-TREE",
                minidb::sql::ast::SetOpKind::Union => "UNION USING TEMP B-TREE",
            };
            out.push(EqpNode {
                line: "COMPOUND QUERY".to_owned(),
                children: vec![
                    EqpNode {
                        line: "LEFT-MOST SUBQUERY".to_owned(),
                        children: left,
                    },
                    EqpNode {
                        line: name.to_owned(),
                        children: right,
                    },
                ],
            });
        }
        PhysOp::Empty => out.push(EqpNode::leaf("SCAN CONSTANT ROW")),
    }
}

fn walk_compound(node: &PhysNode, dedup: bool, out: &mut Vec<EqpNode>) {
    let mut arms: Vec<Vec<EqpNode>> = Vec::new();
    for child in &node.children {
        let mut arm = Vec::new();
        walk(child, &mut arm);
        arms.push(arm);
    }
    let mut children = Vec::new();
    for (i, arm) in arms.into_iter().enumerate() {
        let line = if i == 0 {
            "LEFT-MOST SUBQUERY".to_owned()
        } else if dedup {
            "UNION USING TEMP B-TREE".to_owned()
        } else {
            "UNION ALL".to_owned()
        };
        children.push(EqpNode {
            line,
            children: arm,
        });
    }
    out.push(EqpNode {
        line: "COMPOUND QUERY".to_owned(),
        children,
    });
}

/// Serializes the EQP tree text (paper Listing 1, lines 37–43).
pub fn to_text(plan: &ExplainedPlan) -> String {
    let nodes = expand(plan);
    let mut out = String::from("QUERY PLAN\n");
    for (i, node) in nodes.iter().enumerate() {
        write_node(node, "", i + 1 == nodes.len(), &mut out);
    }
    out
}

fn write_node(node: &EqpNode, prefix: &str, is_last: bool, out: &mut String) {
    let connector = if is_last { "`--" } else { "|--" };
    out.push_str(&format!("{prefix}{connector}{}\n", node.line));
    let child_prefix = format!("{prefix}{}", if is_last { "   " } else { "|  " });
    for (i, child) in node.children.iter().enumerate() {
        write_node(child, &child_prefix, i + 1 == node.children.len(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::profile::EngineProfile;
    use minidb::Database;

    fn db() -> Database {
        let mut db = Database::new(EngineProfile::Sqlite);
        db.execute("CREATE TABLE t0 (c0 INT)").unwrap();
        db.execute("CREATE TABLE t1 (c0 INT)").unwrap();
        db.execute("CREATE TABLE t2 (c0 INT PRIMARY KEY)").unwrap();
        for i in 0..20 {
            db.execute(&format!("INSERT INTO t0 VALUES ({i})")).unwrap();
            db.execute(&format!("INSERT INTO t1 VALUES ({})", i % 5))
                .unwrap();
            db.execute(&format!("INSERT INTO t2 VALUES ({i})")).unwrap();
        }
        db
    }

    #[test]
    fn listing1_compound_shape() {
        let mut db = db();
        let plan = db
            .explain(
                "SELECT t1.c0 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c0 < 10 \
                 GROUP BY t1.c0 UNION SELECT c0 FROM t2 WHERE c0 < 10",
            )
            .unwrap();
        let text = to_text(&plan);
        assert!(text.starts_with("QUERY PLAN"), "{text}");
        assert!(text.contains("COMPOUND QUERY"), "{text}");
        assert!(text.contains("LEFT-MOST SUBQUERY"), "{text}");
        assert!(text.contains("UNION USING TEMP B-TREE"), "{text}");
        assert!(text.contains("SCAN t0"), "{text}");
        assert!(text.contains("USE TEMP B-TREE FOR GROUP BY"), "{text}");
        assert!(text.contains("`--") && text.contains("|--"), "{text}");
    }

    #[test]
    fn automatic_covering_index_for_joins() {
        let mut db = db();
        let plan = db
            .explain("SELECT t1.c0 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0")
            .unwrap();
        let text = to_text(&plan);
        assert!(
            text.contains("AUTOMATIC COVERING INDEX"),
            "SQLite builds query-time indexes: {text}"
        );
    }

    #[test]
    fn primary_key_search() {
        let mut db = db();
        let plan = db.explain("SELECT c0 FROM t2 WHERE c0 = 5").unwrap();
        let text = to_text(&plan);
        assert!(
            text.contains("SEARCH t2 USING INTEGER PRIMARY KEY"),
            "{text}"
        );
    }

    #[test]
    fn order_by_b_tree() {
        let mut db = db();
        let plan = db.explain("SELECT c0 FROM t0 ORDER BY c0 DESC").unwrap();
        let text = to_text(&plan);
        assert!(text.contains("USE TEMP B-TREE FOR ORDER BY"), "{text}");
    }

    #[test]
    fn distinct_b_tree() {
        let mut db = db();
        let plan = db.explain("SELECT DISTINCT c0 FROM t0").unwrap();
        let text = to_text(&plan);
        assert!(text.contains("USE TEMP B-TREE FOR DISTINCT"), "{text}");
    }
}
