//! SQL Server XML showplan serialization.
//!
//! Emits the `<ShowPlanXML>` document of `SET SHOWPLAN_XML ON`: nested
//! `<RelOp>` elements with `PhysicalOp`/`LogicalOp`/`EstimateRows`/
//! `EstimatedTotalSubtreeCost` attributes, using the physical operator
//! vocabulary the study catalogued for SQL Server (Table Scan, Clustered
//! Index Seek, Hash Match, Nested Loops, Stream Aggregate, Compute Scalar,
//! Top, ...).

use minidb::physical::{AggStrategy, ExplainedPlan, IndexAccess, PhysNode, PhysOp};
use uplan_core::formats::xml::XmlElement;

/// Expands a plan into the showplan XML document.
pub fn to_xml(plan: &ExplainedPlan) -> String {
    let mut query_plan = XmlElement::new("QueryPlan")
        .with_attr("CachedPlanSize", "16")
        .with_attr(
            "CompileTime",
            format!("{:.0}", plan.planning_time_ms * 1000.0),
        );
    query_plan = query_plan.with_child(rel_op(&plan.root));
    for sub in &plan.subplans {
        query_plan = query_plan.with_child(rel_op(sub));
    }
    let doc = XmlElement::new("ShowPlanXML")
        .with_attr(
            "xmlns",
            "http://schemas.microsoft.com/sqlserver/2004/07/showplan",
        )
        .with_attr("Version", "1.6")
        .with_child(
            XmlElement::new("BatchSequence").with_child(
                XmlElement::new("Batch").with_child(
                    XmlElement::new("Statements").with_child(
                        XmlElement::new("StmtSimple")
                            .with_attr("StatementType", "SELECT")
                            .with_child(query_plan),
                    ),
                ),
            ),
        );
    doc.to_document()
}

fn rel_op(node: &PhysNode) -> XmlElement {
    let (physical, logical, extra): (String, String, Vec<XmlElement>) = match &node.op {
        PhysOp::SeqScan { table, filter, .. } => ("Table Scan".into(), "Table Scan".into(), {
            let mut children = vec![object_el(table)];
            if let Some(f) = filter {
                children.push(XmlElement::new("Predicate").with_text(f.to_string()));
            }
            children
        }),
        PhysOp::IndexScan {
            table,
            index,
            access,
            filter,
            index_only,
            ..
        } => {
            let physical = match (access, index_only) {
                (IndexAccess::Eq(_), _) if index.ends_with("_pkey") => "Clustered Index Seek",
                (IndexAccess::Eq(_) | IndexAccess::Range { .. }, _) => "Index Seek",
                (IndexAccess::Full, true) => "Index Scan",
                (IndexAccess::Full, false) => "Clustered Index Scan",
            };
            let mut children = vec![
                object_el(table),
                XmlElement::new("SeekPredicates").with_text(match access {
                    IndexAccess::Eq(e) => format!("key = {e}"),
                    IndexAccess::Range { .. } => "range".to_owned(),
                    IndexAccess::Full => String::new(),
                }),
            ];
            if let Some(f) = filter {
                children.push(XmlElement::new("Predicate").with_text(f.to_string()));
            }
            (physical.into(), "Index Seek".into(), children)
        }
        PhysOp::Filter { predicate } => (
            "Filter".into(),
            "Filter".into(),
            vec![XmlElement::new("Predicate").with_text(predicate.to_string())],
        ),
        PhysOp::Project { labels, .. } => (
            "Compute Scalar".into(),
            "Compute Scalar".into(),
            vec![XmlElement::new("OutputList").with_text(labels.join(", "))],
        ),
        PhysOp::HashJoin { keys, .. } => (
            "Hash Match".into(),
            "Inner Join".into(),
            vec![XmlElement::new("Predicate").with_text(
                keys.iter()
                    .map(|(a, b)| format!("c{a} = c{b}"))
                    .collect::<Vec<_>>()
                    .join(" AND "),
            )],
        ),
        PhysOp::NestedLoopJoin { on, .. } => (
            "Nested Loops".into(),
            "Inner Join".into(),
            on.iter()
                .map(|p| XmlElement::new("Predicate").with_text(p.to_string()))
                .collect(),
        ),
        PhysOp::MergeJoin { .. } => ("Merge Join".into(), "Inner Join".into(), vec![]),
        PhysOp::Aggregate {
            strategy, group_by, ..
        } => (
            match strategy {
                AggStrategy::Sorted => "Stream Aggregate".into(),
                _ => "Hash Match".into(),
            },
            "Aggregate".into(),
            vec![XmlElement::new("GroupBy").with_text(
                group_by
                    .iter()
                    .map(|g| g.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            )],
        ),
        PhysOp::Sort { keys } => (
            "Sort".into(),
            "Sort".into(),
            vec![XmlElement::new("OrderBy").with_text(
                keys.iter()
                    .map(|(k, d)| format!("{k} {}", if *d { "DESC" } else { "ASC" }))
                    .collect::<Vec<_>>()
                    .join(", "),
            )],
        ),
        PhysOp::TopN { limit, .. } => (
            "Top".into(),
            "Top".into(),
            vec![XmlElement::new("TopExpression").with_text(limit.to_string())],
        ),
        PhysOp::Limit { limit, .. } => (
            "Top".into(),
            "Top".into(),
            vec![XmlElement::new("TopExpression")
                .with_text(limit.map_or("NULL".to_owned(), |n| n.to_string()))],
        ),
        PhysOp::Distinct => ("Hash Match".into(), "Aggregate".into(), vec![]),
        PhysOp::SetOp { .. } | PhysOp::Append => {
            ("Concatenation".into(), "Concatenation".into(), vec![])
        }
        PhysOp::Empty => ("Constant Scan".into(), "Constant Scan".into(), vec![]),
    };

    let mut el = XmlElement::new("RelOp")
        .with_attr("PhysicalOp", physical)
        .with_attr("LogicalOp", logical)
        .with_attr("EstimateRows", format!("{:.0}", node.est_rows.max(0.0)))
        .with_attr(
            "EstimatedTotalSubtreeCost",
            format!("{:.4}", node.est_total_cost),
        )
        .with_attr("AvgRowSize", "8")
        .with_attr("Parallel", "0");
    if let Some(a) = node.actual {
        el = el.with_attr("ActualRows", a.rows.to_string());
    }
    for child in extra {
        el = el.with_child(child);
    }
    // PostgreSQL-style filter merging doesn't apply: SQL Server keeps
    // standalone Filter operators, so children nest directly.
    for child in &node.children {
        el = el.with_child(rel_op(child));
    }
    el
}

fn object_el(table: &str) -> XmlElement {
    XmlElement::new("Object")
        .with_attr("Database", "[minidb]")
        .with_attr("Table", format!("[{table}]"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::profile::EngineProfile;
    use minidb::Database;
    use uplan_core::formats::xml;

    #[test]
    fn showplan_parses_and_nests() {
        let mut db = Database::new(EngineProfile::Postgres);
        db.execute("CREATE TABLE t (x INT PRIMARY KEY, y INT)")
            .unwrap();
        for i in 0..20 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 3))
                .unwrap();
        }
        let plan = db.explain("SELECT y, COUNT(*) FROM t GROUP BY y").unwrap();
        let text = to_xml(&plan);
        let doc = xml::parse(&text).unwrap();
        assert_eq!(doc.name, "ShowPlanXML");
        assert_eq!(doc.attr("Version"), Some("1.6"));
        let stmt = doc
            .child("BatchSequence")
            .and_then(|b| b.child("Batch"))
            .and_then(|b| b.child("Statements"))
            .and_then(|s| s.child("StmtSimple"))
            .unwrap();
        let rel = stmt
            .child("QueryPlan")
            .and_then(|q| q.child("RelOp"))
            .unwrap();
        assert!(rel.attr("PhysicalOp").is_some());
        assert!(rel.attr("EstimateRows").is_some());
    }

    #[test]
    fn index_seek_naming() {
        let mut db = Database::new(EngineProfile::Postgres);
        db.execute("CREATE TABLE t (x INT PRIMARY KEY)").unwrap();
        for i in 0..10 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let plan = db.explain("SELECT x FROM t WHERE x = 3").unwrap();
        let text = to_xml(&plan);
        assert!(text.contains("Clustered Index Seek"), "{text}");
        assert!(text.contains("SeekPredicates"), "{text}");
    }

    #[test]
    fn actual_rows_after_analyze() {
        let mut db = Database::new(EngineProfile::Postgres);
        db.execute("CREATE TABLE t (x INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let (plan, _) = db.explain_analyze("SELECT x FROM t").unwrap();
        let text = to_xml(&plan);
        assert!(text.contains("ActualRows"), "{text}");
    }
}
