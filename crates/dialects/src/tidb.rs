//! TiDB `EXPLAIN` serialization: the `id | estRows | task | access object |
//! operator info` table.
//!
//! Reproduces the TiDB idioms the paper leans on: operator names carry
//! random numeric suffixes (`TableReader_7` — the source of the original
//! QPG parser bug), scans sit under distributed wrappers (`TableReader`,
//! `IndexReader`, `IndexLookUp` with separate index/table sides), filters
//! are standalone `Selection` operators executed on `cop` tasks, and the
//! `Filter` key in operator info is — per the study — a *property*, not an
//! operation.

use minidb::physical::{AggStrategy, ExplainedPlan, IndexAccess, PhysNode, PhysOp};

/// One rendered operator row.
#[derive(Debug, Clone)]
pub struct TidbRow {
    /// Operator id (`HashJoin_8`).
    pub id: String,
    /// Tree depth for the `└─` prefixes.
    pub depth: usize,
    /// `estRows`.
    pub est_rows: f64,
    /// `actRows` when executed.
    pub act_rows: Option<u64>,
    /// Task (`root` or `cop[tikv]`).
    pub task: String,
    /// Access object (`table:t0`, `index:i0(c0)`).
    pub access_object: String,
    /// Operator info (conditions, keys).
    pub info: String,
}

struct Namer {
    counter: u32,
}

impl Namer {
    fn next(&mut self, base: &str) -> String {
        self.counter += 1;
        format!("{base}_{}", self.counter)
    }
}

/// Expands a plan into TiDB table rows. `id_seed` offsets the operator
/// numbering, emulating TiDB's per-statement random identifiers.
pub fn rows(plan: &ExplainedPlan, id_seed: u32) -> Vec<TidbRow> {
    let mut namer = Namer { counter: id_seed };
    let mut out = Vec::new();
    walk(&plan.root, 0, &mut namer, &mut out);
    for sub in &plan.subplans {
        walk(sub, 1, &mut namer, &mut out);
    }
    out
}

// A row has eight fields; flattening them into a struct would just move the
// argument list into a literal.
#[allow(clippy::too_many_arguments)]
fn push(
    out: &mut Vec<TidbRow>,
    namer: &mut Namer,
    base: &str,
    depth: usize,
    node: &PhysNode,
    task: &str,
    access_object: String,
    info: String,
) {
    out.push(TidbRow {
        id: namer.next(base),
        depth,
        est_rows: node.est_rows.max(0.0),
        act_rows: node.actual.map(|a| a.rows),
        task: task.to_owned(),
        access_object,
        info,
    });
}

fn walk(node: &PhysNode, depth: usize, namer: &mut Namer, out: &mut Vec<TidbRow>) {
    match &node.op {
        PhysOp::SeqScan { table, filter, .. } => {
            // TableReader_{n} (root) → [Selection_{m}] → TableFullScan_{k}.
            push(
                out,
                namer,
                "TableReader",
                depth,
                node,
                "root",
                String::new(),
                "data:TableFullScan".to_owned(),
            );
            let mut scan_depth = depth + 1;
            if let Some(f) = filter {
                push(
                    out,
                    namer,
                    "Selection",
                    scan_depth,
                    node,
                    "cop[tikv]",
                    String::new(),
                    f.to_string(),
                );
                scan_depth += 1;
            }
            push(
                out,
                namer,
                "TableFullScan",
                scan_depth,
                node,
                "cop[tikv]",
                format!("table:{table}"),
                "keep order:false".to_owned(),
            );
        }
        PhysOp::IndexScan {
            table,
            index,
            access,
            filter,
            index_only,
            ..
        } => {
            let range = render_access(access);
            if *index_only {
                // IndexReader → IndexRangeScan/IndexFullScan.
                push(
                    out,
                    namer,
                    "IndexReader",
                    depth,
                    node,
                    "root",
                    String::new(),
                    "index:IndexRangeScan".to_owned(),
                );
                let base = if matches!(access, IndexAccess::Full) {
                    "IndexFullScan"
                } else {
                    "IndexRangeScan"
                };
                push(
                    out,
                    namer,
                    base,
                    depth + 1,
                    node,
                    "cop[tikv]",
                    format!("table:{table}, index:{index}"),
                    format!("range:{range}, keep order:false"),
                );
            } else {
                // IndexLookUp → IndexRangeScan (build) + TableRowIDScan (probe),
                // the two-producer shape of paper Listing 4.
                push(
                    out,
                    namer,
                    "IndexLookUp",
                    depth,
                    node,
                    "root",
                    String::new(),
                    String::new(),
                );
                push(
                    out,
                    namer,
                    "IndexRangeScan",
                    depth + 1,
                    node,
                    "cop[tikv]",
                    format!("table:{table}, index:{index}"),
                    format!("range:{range}, keep order:true"),
                );
                let mut table_depth = depth + 1;
                if let Some(f) = filter {
                    push(
                        out,
                        namer,
                        "Selection",
                        table_depth,
                        node,
                        "cop[tikv]",
                        String::new(),
                        f.to_string(),
                    );
                    table_depth += 1;
                }
                push(
                    out,
                    namer,
                    "TableRowIDScan",
                    table_depth,
                    node,
                    "cop[tikv]",
                    format!("table:{table}"),
                    "keep order:false".to_owned(),
                );
            }
        }
        PhysOp::Filter { predicate } => {
            push(
                out,
                namer,
                "Selection",
                depth,
                node,
                "root",
                String::new(),
                predicate.to_string(),
            );
            walk(&node.children[0], depth + 1, namer, out);
        }
        PhysOp::Project { labels, .. } => {
            push(
                out,
                namer,
                "Projection",
                depth,
                node,
                "root",
                String::new(),
                labels.join(", "),
            );
            walk(&node.children[0], depth + 1, namer, out);
        }
        PhysOp::HashJoin { keys, .. } => {
            push(
                out,
                namer,
                "HashJoin",
                depth,
                node,
                "root",
                String::new(),
                format!(
                    "inner join, equal:[{}]",
                    keys.iter()
                        .map(|(a, b)| format!("eq(c{a}, c{b})"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ),
            );
            walk(&node.children[0], depth + 1, namer, out);
            walk(&node.children[1], depth + 1, namer, out);
        }
        PhysOp::NestedLoopJoin { .. } => {
            let parameterized = matches!(
                node.children.get(1).map(|c| &c.op),
                Some(PhysOp::IndexScan { .. })
            );
            let base = if parameterized {
                "IndexHashJoin"
            } else {
                "Apply"
            };
            push(
                out,
                namer,
                base,
                depth,
                node,
                "root",
                String::new(),
                "inner join".to_owned(),
            );
            walk(&node.children[0], depth + 1, namer, out);
            walk(&node.children[1], depth + 1, namer, out);
        }
        PhysOp::MergeJoin { .. } => {
            push(
                out,
                namer,
                "MergeJoin",
                depth,
                node,
                "root",
                String::new(),
                "inner join".to_owned(),
            );
            walk(&node.children[0], depth + 1, namer, out);
            walk(&node.children[1], depth + 1, namer, out);
        }
        PhysOp::Aggregate {
            strategy, group_by, ..
        } => {
            let base = match strategy {
                AggStrategy::Sorted => "StreamAgg",
                _ => "HashAgg",
            };
            push(
                out,
                namer,
                base,
                depth,
                node,
                "root",
                String::new(),
                format!(
                    "group by:{}",
                    group_by
                        .iter()
                        .map(|g| g.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            );
            walk(&node.children[0], depth + 1, namer, out);
        }
        PhysOp::Sort { keys } => {
            push(
                out,
                namer,
                "Sort",
                depth,
                node,
                "root",
                String::new(),
                keys.iter()
                    .map(|(k, d)| {
                        if *d {
                            format!("{k}:desc")
                        } else {
                            k.to_string()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            walk(&node.children[0], depth + 1, namer, out);
        }
        PhysOp::TopN { keys, limit, .. } => {
            push(
                out,
                namer,
                "TopN",
                depth,
                node,
                "root",
                String::new(),
                format!(
                    "{}, offset:0, count:{limit}",
                    keys.iter()
                        .map(|(k, d)| if *d {
                            format!("{k}:desc")
                        } else {
                            k.to_string()
                        })
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            );
            walk(&node.children[0], depth + 1, namer, out);
        }
        PhysOp::Limit { limit, offset } => {
            push(
                out,
                namer,
                "Limit",
                depth,
                node,
                "root",
                String::new(),
                format!("offset:{offset}, count:{}", limit.map_or(-1, |n| n as i64)),
            );
            walk(&node.children[0], depth + 1, namer, out);
        }
        PhysOp::Distinct => {
            push(
                out,
                namer,
                "HashAgg",
                depth,
                node,
                "root",
                String::new(),
                "group by:all columns".to_owned(),
            );
            walk(&node.children[0], depth + 1, namer, out);
        }
        PhysOp::SetOp { op, .. } => {
            push(
                out,
                namer,
                match op {
                    minidb::sql::ast::SetOpKind::Union => "Union",
                    minidb::sql::ast::SetOpKind::Intersect => "Intersect",
                    minidb::sql::ast::SetOpKind::Except => "Except",
                },
                depth,
                node,
                "root",
                String::new(),
                String::new(),
            );
            for child in &node.children {
                walk(child, depth + 1, namer, out);
            }
        }
        PhysOp::Append => {
            push(
                out,
                namer,
                "Union",
                depth,
                node,
                "root",
                String::new(),
                String::new(),
            );
            for child in &node.children {
                walk(child, depth + 1, namer, out);
            }
        }
        PhysOp::Empty => {
            push(
                out,
                namer,
                "TableDual",
                depth,
                node,
                "root",
                String::new(),
                "rows:1".to_owned(),
            );
        }
    }
}

fn render_access(access: &IndexAccess) -> String {
    match access {
        IndexAccess::Eq(e) => format!("[{e},{e}]"),
        IndexAccess::Range { low, high } => format!(
            "({},{})",
            low.as_ref().map_or("-inf".to_owned(), |l| l.to_string()),
            high.as_ref().map_or("+inf".to_owned(), |h| h.to_string())
        ),
        IndexAccess::Full => "[NULL,+inf]".to_owned(),
    }
}

/// Serializes the table text.
pub fn to_table(plan: &ExplainedPlan, id_seed: u32) -> String {
    let rows = rows(plan, id_seed);
    let analyzed = rows.iter().any(|r| r.act_rows.is_some());
    let mut header = vec!["id", "estRows"];
    if analyzed {
        header.push("actRows");
    }
    header.extend(["task", "access object", "operator info"]);

    let mut body: Vec<Vec<String>> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let mut prefix = String::new();
        if row.depth > 0 {
            prefix.push_str(&"  ".repeat(row.depth - 1));
            // Last sibling at this depth?
            let is_last = !rows[i + 1..]
                .iter()
                .take_while(|r| r.depth >= row.depth)
                .any(|r| r.depth == row.depth);
            prefix.push_str(if is_last { "└─" } else { "├─" });
        }
        let mut cells = vec![
            format!("{prefix}{}", row.id),
            format!("{:.2}", row.est_rows),
        ];
        if analyzed {
            cells.push(row.act_rows.map_or(String::new(), |a| a.to_string()));
        }
        cells.push(row.task.clone());
        cells.push(row.access_object.clone());
        cells.push(row.info.clone());
        body.push(cells);
    }

    // Column widths.
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in &body {
        for c in 0..cols {
            widths[c] = widths[c].max(row[c].chars().count());
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    rule(&mut out);
    out.push('|');
    for (h, w) in header.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |", w = w));
    }
    out.push('\n');
    rule(&mut out);
    for row in &body {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            let pad = w - cell.chars().count();
            out.push_str(&format!(" {cell}{} |", " ".repeat(pad)));
        }
        out.push('\n');
    }
    rule(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::profile::EngineProfile;
    use minidb::Database;

    fn db() -> Database {
        let mut db = Database::new(EngineProfile::TiDb);
        db.execute("CREATE TABLE t0 (c0 INT, c1 INT)").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t0 VALUES ({i}, {})", i % 5))
                .unwrap();
        }
        db
    }

    #[test]
    fn fig2_shape() {
        // Paper Fig. 2: TableReader_7 → Selection_6 → TableFullScan_5.
        let mut db = db();
        let plan = db.explain("SELECT * FROM t0 WHERE c0 < 5").unwrap();
        let rows = rows(&plan, 4);
        let ids: Vec<&str> = rows.iter().map(|r| r.id.as_str()).collect();
        // Projection wraps the reader in our TiDB plans; the reader chain is
        // TableReader → Selection → TableFullScan.
        let reader_pos = ids
            .iter()
            .position(|i| i.starts_with("TableReader"))
            .unwrap();
        assert!(ids[reader_pos + 1].starts_with("Selection"), "{ids:?}");
        assert!(ids[reader_pos + 2].starts_with("TableFullScan"), "{ids:?}");
        assert_eq!(rows[reader_pos + 1].task, "cop[tikv]");
    }

    #[test]
    fn ids_change_with_seed() {
        let mut db = db();
        let plan = db.explain("SELECT * FROM t0").unwrap();
        let a = rows(&plan, 0);
        let b = rows(&plan, 10);
        assert_ne!(
            a[0].id, b[0].id,
            "random identifiers differ across statements"
        );
        let strip = |s: &str| s.rsplit_once('_').unwrap().0.to_owned();
        assert_eq!(strip(&a[0].id), strip(&b[0].id));
    }

    #[test]
    fn index_lookup_two_scan_shape() {
        let mut db = db();
        db.execute("CREATE INDEX i0 ON t0(c1)").unwrap();
        let plan = db
            .explain("SELECT * FROM t0 WHERE c1 = 3 AND c0 < 40")
            .unwrap();
        let rows = rows(&plan, 0);
        let bases: Vec<String> = rows
            .iter()
            .map(|r| r.id.rsplit_once('_').unwrap().0.to_owned())
            .collect();
        assert!(bases.contains(&"IndexLookUp".to_owned()), "{bases:?}");
        assert!(bases.contains(&"IndexRangeScan".to_owned()), "{bases:?}");
        assert!(bases.contains(&"TableRowIDScan".to_owned()), "{bases:?}");
    }

    #[test]
    fn table_text_renders() {
        let mut db = db();
        let plan = db
            .explain("SELECT c0 FROM t0 WHERE c0 < 5 ORDER BY c0 LIMIT 3")
            .unwrap();
        let text = to_table(&plan, 0);
        assert!(text.contains("| id"), "{text}");
        assert!(text.contains("estRows"), "{text}");
        assert!(text.contains("TopN"), "fused TopN: {text}");
        assert!(text.contains("└─"), "{text}");
        assert!(text.contains("cop[tikv]"), "{text}");
    }

    #[test]
    fn analyze_adds_act_rows() {
        let mut db = db();
        let (plan, _) = db.explain_analyze("SELECT * FROM t0 WHERE c0 < 5").unwrap();
        let text = to_table(&plan, 0);
        assert!(text.contains("actRows"), "{text}");
    }
}
