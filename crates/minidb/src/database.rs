//! The engine façade: statement execution, EXPLAIN, statistics upkeep,
//! fault arming.

use std::collections::{HashMap, HashSet};

use crate::datum::{DataType, Datum, Row};
use crate::exec::{self, ExecCtx};
use crate::faults::{BugId, FaultLog, FaultSet};
use crate::logical::Binder;
use crate::physical::ExplainedPlan;
use crate::planner::{self, PlannerCtx};
use crate::profile::EngineProfile;
use crate::schema::{Catalog, Column, IndexDef, TableSchema};
use crate::sql::ast::{Query, Statement};
use crate::sql::parse_statement;
use crate::stats::TableStats;
use crate::storage::{RowId, Table};
use crate::{Error, Result};

/// Rows and column labels returned by a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Multiset comparison (order-insensitive), as the TLP oracle needs.
    pub fn same_multiset(&self, other: &QueryResult) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        let mut a = self.rows.clone();
        let mut b = other.rows.clone();
        let cmp = |x: &Row, y: &Row| {
            for (dx, dy) in x.iter().zip(y) {
                let o = dx.total_cmp(dy);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            x.len().cmp(&y.len())
        };
        a.sort_by(cmp);
        b.sort_by(cmp);
        a == b
    }
}

/// An in-memory database instance with one engine profile.
#[derive(Debug)]
pub struct Database {
    profile: EngineProfile,
    catalog: Catalog,
    tables: HashMap<String, Table>,
    stats: HashMap<String, TableStats>,
    dirty: HashSet<String>,
    faults: FaultSet,
    fault_log: FaultLog,
    recently_updated: HashMap<String, HashSet<RowId>>,
}

impl Database {
    /// An empty database for a profile.
    pub fn new(profile: EngineProfile) -> Database {
        Database {
            profile,
            catalog: Catalog::new(),
            tables: HashMap::new(),
            stats: HashMap::new(),
            dirty: HashSet::new(),
            faults: FaultSet::none(),
            fault_log: FaultLog::new(),
            recently_updated: HashMap::new(),
        }
    }

    /// The engine profile.
    pub fn profile(&self) -> EngineProfile {
        self.profile
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Arms a fault (ignored if it targets another profile).
    pub fn arm_fault(&mut self, id: BugId) {
        if id.info().profile == self.profile {
            self.faults.arm(id);
        }
    }

    /// Arms every fault for this profile (Table V campaign setup).
    pub fn arm_all_faults(&mut self) {
        self.faults = FaultSet::all_for(self.profile);
    }

    /// Disarms everything.
    pub fn clear_faults(&mut self) {
        self.faults = FaultSet::none();
    }

    /// Drains the fault-firing log (campaign accounting).
    pub fn take_fault_log(&mut self) -> Vec<BugId> {
        let fired: Vec<BugId> = self.fault_log.fired().collect();
        self.fault_log.clear();
        fired
    }

    /// Number of live rows in a table (0 if unknown).
    pub fn row_count(&self, table: &str) -> usize {
        self.tables.get(table).map_or(0, |t| t.heap.len())
    }

    /// Executes one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let statement = parse_statement(sql)?;
        self.execute_statement(statement)
    }

    /// Executes a parsed statement.
    pub fn execute_statement(&mut self, statement: Statement) -> Result<QueryResult> {
        match statement {
            Statement::CreateTable { name, columns } => {
                let schema = TableSchema {
                    name: name.clone(),
                    columns: columns
                        .into_iter()
                        .map(|(name, data_type, primary_key)| Column {
                            name,
                            data_type,
                            primary_key,
                        })
                        .collect(),
                };
                self.catalog.create_table(schema)?;
                let mut table = Table::new();
                for def in self.catalog.indexes_on(&name) {
                    table.add_index(def.clone());
                }
                self.tables.insert(name.clone(), table);
                self.dirty.insert(name);
                Ok(empty_result())
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
            } => {
                let schema = self
                    .catalog
                    .table(&table)
                    .ok_or_else(|| Error::Catalog(format!("unknown table {table:?}")))?;
                let key_columns = columns
                    .iter()
                    .map(|c| {
                        schema
                            .column_index(c)
                            .ok_or_else(|| Error::Catalog(format!("unknown column {c:?}")))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let def = IndexDef {
                    name,
                    table: table.clone(),
                    key_columns,
                    unique,
                    is_primary: false,
                };
                self.catalog.create_index(def.clone())?;
                self.tables
                    .get_mut(&table)
                    .expect("table storage exists")
                    .add_index(def);
                // A fresh index sees all current rows.
                self.recently_updated.remove(&table);
                Ok(empty_result())
            }
            Statement::DropTable { name } => {
                self.catalog.drop_table(&name)?;
                self.tables.remove(&name);
                self.stats.remove(&name);
                self.dirty.remove(&name);
                self.recently_updated.remove(&name);
                Ok(empty_result())
            }
            Statement::Analyze { table } => {
                match table {
                    Some(t) => {
                        self.refresh_stats(&t)?;
                        self.recently_updated.remove(&t);
                    }
                    None => {
                        let names: Vec<String> =
                            self.catalog.tables().map(|s| s.name.clone()).collect();
                        for t in names {
                            self.refresh_stats(&t)?;
                            self.recently_updated.remove(&t);
                        }
                    }
                }
                Ok(empty_result())
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.insert(&table, columns, rows),
            Statement::Update {
                table,
                sets,
                filter,
            } => self.update(&table, sets, filter),
            Statement::Delete { table, filter } => self.delete(&table, filter),
            Statement::Query(query) => self.run_query(&query),
            Statement::Explain { analyze, query } => {
                // EXPLAIN output is returned as one text column per line of
                // the generic rendering; use `explain_query` for the
                // structured plan.
                let mut plan = self.plan_query(&query)?;
                if analyze {
                    self.execute_plan(&mut plan)?;
                }
                let text = generic_render(&plan);
                Ok(QueryResult {
                    columns: vec!["QUERY PLAN".into()],
                    rows: text
                        .lines()
                        .map(|l| vec![Datum::Str(l.to_owned())])
                        .collect(),
                })
            }
        }
    }

    /// Plans a query without executing it.
    pub fn explain(&mut self, sql: &str) -> Result<ExplainedPlan> {
        match parse_statement(sql)? {
            Statement::Query(q) | Statement::Explain { query: q, .. } => self.plan_query(&q),
            _ => Err(Error::Binding("EXPLAIN needs a query".into())),
        }
    }

    /// Plans and executes a query, returning the plan with actuals filled.
    pub fn explain_analyze(&mut self, sql: &str) -> Result<(ExplainedPlan, QueryResult)> {
        match parse_statement(sql)? {
            Statement::Query(q) | Statement::Explain { query: q, .. } => {
                let mut plan = self.plan_query(&q)?;
                let rows = self.execute_plan(&mut plan)?;
                let columns = plan.output.clone();
                Ok((plan, QueryResult { columns, rows }))
            }
            _ => Err(Error::Binding("EXPLAIN ANALYZE needs a query".into())),
        }
    }

    /// Plans a parsed query.
    pub fn plan_query(&mut self, query: &Query) -> Result<ExplainedPlan> {
        self.ensure_stats()?;
        let binder = Binder::new(&self.catalog, self.profile.dedup_subqueries());
        let bound = binder.bind_query(query)?;
        let stats = &self.stats;
        let stats_of = move |t: &str| stats.get(t);
        let ctx = PlannerCtx {
            catalog: &self.catalog,
            stats_of: &stats_of,
            profile: self.profile,
            faults: &self.faults,
        };
        planner::plan(&bound, &ctx)
    }

    /// Executes a planned query, filling actuals.
    pub fn execute_plan(&mut self, plan: &mut ExplainedPlan) -> Result<Vec<Row>> {
        exec::set_shared_spec(plan.shared_subagg.clone());
        let mut ctx = ExecCtx {
            tables: &self.tables,
            profile: self.profile,
            faults: &self.faults,
            recently_updated: &self.recently_updated,
            fault_log: &mut self.fault_log,
            subquery_values: Vec::new(),
        };
        let rows = exec::execute(plan, &mut ctx);
        exec::set_shared_spec(None);
        rows
    }

    /// Plans and executes a parsed query.
    pub fn run_query(&mut self, query: &Query) -> Result<QueryResult> {
        let mut plan = self.plan_query(query)?;
        let rows = self.execute_plan(&mut plan)?;
        Ok(QueryResult {
            columns: plan.output,
            rows,
        })
    }

    fn insert(
        &mut self,
        table: &str,
        columns: Option<Vec<String>>,
        value_rows: Vec<Vec<crate::sql::ast::Expr>>,
    ) -> Result<QueryResult> {
        let schema = self
            .catalog
            .table(table)
            .ok_or_else(|| Error::Catalog(format!("unknown table {table:?}")))?
            .clone();
        // Map provided values to column positions.
        let positions: Vec<usize> = match &columns {
            Some(cols) => cols
                .iter()
                .map(|c| {
                    schema
                        .column_index(c)
                        .ok_or_else(|| Error::Binding(format!("unknown column {c:?}")))
                })
                .collect::<Result<_>>()?,
            None => (0..schema.columns.len()).collect(),
        };
        let mut inserted = 0usize;
        for exprs in value_rows {
            if exprs.len() != positions.len() {
                return Err(Error::Binding(format!(
                    "INSERT expects {} values, got {}",
                    positions.len(),
                    exprs.len()
                )));
            }
            let mut row: Row = vec![Datum::Null; schema.columns.len()];
            for (expr, &pos) in exprs.iter().zip(&positions) {
                let mut binder = Binder::new(&self.catalog, false);
                let scope = crate::logical::Scope { columns: vec![] };
                let bound = binder.bind_expr(expr, &scope)?;
                let mut value = bound.eval(&vec![], &[])?;
                // Int literals widen into FLOAT columns.
                if schema.columns[pos].data_type == DataType::Float {
                    if let Datum::Int(i) = value {
                        value = Datum::Float(i as f64);
                    }
                }
                row[pos] = value;
            }
            self.tables
                .get_mut(table)
                .expect("table storage exists")
                .insert(row);
            inserted += 1;
        }
        self.dirty.insert(table.to_owned());
        Ok(QueryResult {
            columns: vec!["inserted".into()],
            rows: vec![vec![Datum::Int(inserted as i64)]],
        })
    }

    fn update(
        &mut self,
        table: &str,
        sets: Vec<(String, crate::sql::ast::Expr)>,
        filter: Option<crate::sql::ast::Expr>,
    ) -> Result<QueryResult> {
        let schema = self
            .catalog
            .table(table)
            .ok_or_else(|| Error::Catalog(format!("unknown table {table:?}")))?
            .clone();
        let scope = crate::logical::Scope {
            columns: schema
                .columns
                .iter()
                .map(|c| crate::logical::ColMeta {
                    qualifier: Some(schema.name.clone()),
                    name: c.name.clone(),
                })
                .collect(),
        };
        let mut binder = Binder::new(&self.catalog, false);
        let bound_filter = filter.map(|f| binder.bind_expr(&f, &scope)).transpose()?;
        let bound_sets: Vec<(usize, crate::expr::BoundExpr)> = sets
            .iter()
            .map(|(name, e)| {
                let pos = schema
                    .column_index(name)
                    .ok_or_else(|| Error::Binding(format!("unknown column {name:?}")))?;
                Ok((pos, binder.bind_expr(e, &scope)?))
            })
            .collect::<Result<_>>()?;

        let storage = self.tables.get_mut(table).expect("table storage exists");
        let targets: Vec<(RowId, Row)> =
            storage.heap.scan().map(|(id, r)| (id, r.clone())).collect();
        let mut updated = 0usize;
        for (id, row) in targets {
            let hit = match &bound_filter {
                Some(f) => f.eval_predicate(&row, &[])?,
                None => true,
            };
            if !hit {
                continue;
            }
            let mut new_row = row.clone();
            for (pos, e) in &bound_sets {
                new_row[*pos] = e.eval(&row, &[])?;
            }
            storage.update(id, new_row);
            self.recently_updated
                .entry(table.to_owned())
                .or_default()
                .insert(id);
            updated += 1;
        }
        self.dirty.insert(table.to_owned());
        Ok(QueryResult {
            columns: vec!["updated".into()],
            rows: vec![vec![Datum::Int(updated as i64)]],
        })
    }

    fn delete(
        &mut self,
        table: &str,
        filter: Option<crate::sql::ast::Expr>,
    ) -> Result<QueryResult> {
        let schema = self
            .catalog
            .table(table)
            .ok_or_else(|| Error::Catalog(format!("unknown table {table:?}")))?
            .clone();
        let scope = crate::logical::Scope {
            columns: schema
                .columns
                .iter()
                .map(|c| crate::logical::ColMeta {
                    qualifier: Some(schema.name.clone()),
                    name: c.name.clone(),
                })
                .collect(),
        };
        let mut binder = Binder::new(&self.catalog, false);
        let bound_filter = filter.map(|f| binder.bind_expr(&f, &scope)).transpose()?;
        let storage = self.tables.get_mut(table).expect("table storage exists");
        let targets: Vec<(RowId, Row)> =
            storage.heap.scan().map(|(id, r)| (id, r.clone())).collect();
        let mut deleted = 0usize;
        for (id, row) in targets {
            let hit = match &bound_filter {
                Some(f) => f.eval_predicate(&row, &[])?,
                None => true,
            };
            if hit {
                storage.delete(id);
                deleted += 1;
            }
        }
        self.dirty.insert(table.to_owned());
        Ok(QueryResult {
            columns: vec!["deleted".into()],
            rows: vec![vec![Datum::Int(deleted as i64)]],
        })
    }

    fn refresh_stats(&mut self, table: &str) -> Result<()> {
        let storage = self
            .tables
            .get(table)
            .ok_or_else(|| Error::Catalog(format!("unknown table {table:?}")))?;
        let column_count = self
            .catalog
            .table(table)
            .map(|s| s.columns.len())
            .unwrap_or(0);
        self.stats.insert(
            table.to_owned(),
            TableStats::compute(&storage.heap, column_count),
        );
        self.dirty.remove(table);
        Ok(())
    }

    fn ensure_stats(&mut self) -> Result<()> {
        let dirty: Vec<String> = self.dirty.iter().cloned().collect();
        for table in dirty {
            if self.tables.contains_key(&table) {
                self.refresh_stats(&table)?;
            } else {
                self.dirty.remove(&table);
            }
        }
        Ok(())
    }
}

fn empty_result() -> QueryResult {
    QueryResult {
        columns: vec![],
        rows: vec![],
    }
}

/// Engine-generic plan rendering (dialect renderings live in `dialects`).
pub fn generic_render(plan: &ExplainedPlan) -> String {
    fn walk(node: &crate::physical::PhysNode, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let actual = match &node.actual {
            Some(a) => format!(" (actual rows={} time={:.3}ms)", a.rows, a.time_ms),
            None => String::new(),
        };
        out.push_str(&format!(
            "{indent}{} (rows={:.0} cost={:.2}..{:.2}){}\n",
            node.op.name(),
            node.est_rows,
            node.est_startup_cost,
            node.est_total_cost,
            actual
        ));
        for child in &node.children {
            walk(child, depth + 1, out);
        }
    }
    let mut out = String::new();
    walk(&plan.root, 0, &mut out);
    for (i, sub) in plan.subplans.iter().enumerate() {
        out.push_str(&format!("SubPlan {i}\n"));
        walk(sub, 1, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new(EngineProfile::Postgres);
        db.execute("CREATE TABLE t0 (c0 INT, c1 INT)").unwrap();
        db.execute("INSERT INTO t0 VALUES (1, 10), (2, 20), (3, NULL), (4, 40)")
            .unwrap();
        db
    }

    #[test]
    fn create_insert_select() {
        let mut db = db();
        let r = db.execute("SELECT c0 FROM t0 WHERE c0 < 3").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.columns, vec!["c0"]);
    }

    #[test]
    fn where_null_semantics() {
        let mut db = db();
        // c1 < 25 excludes the NULL row.
        let r = db.execute("SELECT c0 FROM t0 WHERE c1 < 25").unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn update_and_delete() {
        let mut db = db();
        let r = db.execute("UPDATE t0 SET c1 = 99 WHERE c0 = 1").unwrap();
        assert_eq!(r.rows[0][0], Datum::Int(1));
        let r = db.execute("SELECT c1 FROM t0 WHERE c0 = 1").unwrap();
        assert_eq!(r.rows[0][0], Datum::Int(99));
        let r = db.execute("DELETE FROM t0 WHERE c0 > 2").unwrap();
        assert_eq!(r.rows[0][0], Datum::Int(2));
        assert_eq!(db.row_count("t0"), 2);
    }

    #[test]
    fn join_and_aggregate() {
        let mut db = db();
        db.execute("CREATE TABLE t1 (c0 INT)").unwrap();
        db.execute("INSERT INTO t1 VALUES (1), (2), (2)").unwrap();
        let r = db
            .execute("SELECT t0.c0, COUNT(*) FROM t0 JOIN t1 ON t0.c0 = t1.c0 GROUP BY t0.c0 ORDER BY t0.c0")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[1], vec![Datum::Int(2), Datum::Int(2)]);
    }

    #[test]
    fn union_behaviour() {
        let mut db = db();
        let r = db
            .execute("SELECT c0 FROM t0 WHERE c0 <= 2 UNION SELECT c0 FROM t0 WHERE c0 <= 2")
            .unwrap();
        assert_eq!(r.rows.len(), 2, "UNION dedups");
        let r = db
            .execute("SELECT c0 FROM t0 WHERE c0 <= 2 UNION ALL SELECT c0 FROM t0 WHERE c0 <= 2")
            .unwrap();
        assert_eq!(r.rows.len(), 4, "UNION ALL keeps duplicates");
    }

    #[test]
    fn order_limit() {
        let mut db = db();
        let r = db
            .execute("SELECT c0 FROM t0 ORDER BY c0 DESC LIMIT 2")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Int(4)], vec![Datum::Int(3)]]);
        let r = db
            .execute("SELECT c0 FROM t0 ORDER BY c0 LIMIT 2 OFFSET 1")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Int(2)], vec![Datum::Int(3)]]);
    }

    #[test]
    fn explain_returns_plan_rows() {
        let mut db = db();
        let r = db.execute("EXPLAIN SELECT * FROM t0 WHERE c0 < 3").unwrap();
        assert_eq!(r.columns, vec!["QUERY PLAN"]);
        assert!(!r.rows.is_empty());
        let text: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
        assert!(text.iter().any(|l| l.contains("Scan")), "{text:?}");
    }

    #[test]
    fn explain_analyze_fills_actuals() {
        let mut db = db();
        let (plan, result) = db
            .explain_analyze("SELECT c0 FROM t0 WHERE c0 < 3")
            .unwrap();
        assert_eq!(result.rows.len(), 2);
        assert!(plan.execution_time_ms.is_some());
        let mut saw_actual = false;
        plan.root.walk(&mut |n| {
            if n.actual.is_some() {
                saw_actual = true;
            }
        });
        assert!(saw_actual);
    }

    #[test]
    fn index_changes_the_plan() {
        let mut db = db();
        let scan_name = |plan: &crate::physical::ExplainedPlan| {
            let mut name = String::new();
            plan.root.walk(&mut |n| {
                if n.op.scanned_table().is_some() {
                    name = n.op.name().to_owned();
                }
            });
            name
        };
        let before = db.explain("SELECT * FROM t0 WHERE c0 = 2").unwrap();
        assert_eq!(scan_name(&before), "Seq Scan");
        db.execute("CREATE INDEX i0 ON t0(c0)").unwrap();
        let after = db.explain("SELECT * FROM t0 WHERE c0 = 2").unwrap();
        assert!(
            scan_name(&after).contains("Index"),
            "{:?}",
            scan_name(&after)
        );
        // Same results either way.
        let r = db.execute("SELECT * FROM t0 WHERE c0 = 2").unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn scalar_subquery() {
        let mut db = db();
        let r = db
            .execute("SELECT c0 FROM t0 WHERE c0 > (SELECT COUNT(*) FROM t0 WHERE c0 < 3)")
            .unwrap();
        // COUNT = 2; rows with c0 > 2: {3, 4}.
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn same_multiset_comparison() {
        let a = QueryResult {
            columns: vec!["x".into()],
            rows: vec![vec![Datum::Int(1)], vec![Datum::Int(2)]],
        };
        let b = QueryResult {
            columns: vec!["x".into()],
            rows: vec![vec![Datum::Int(2)], vec![Datum::Int(1)]],
        };
        assert!(a.same_multiset(&b));
        let c = QueryResult {
            columns: vec!["x".into()],
            rows: vec![vec![Datum::Int(2)], vec![Datum::Int(2)]],
        };
        assert!(!a.same_multiset(&c));
        let d = QueryResult {
            columns: vec!["x".into()],
            rows: vec![vec![Datum::Int(1)]],
        };
        assert!(!a.same_multiset(&d));
    }

    #[test]
    fn analyze_refreshes_stats() {
        let mut db = db();
        db.execute("ANALYZE").unwrap();
        db.execute("ANALYZE t0").unwrap();
        assert!(db.execute("ANALYZE zzz").is_err());
    }

    #[test]
    fn drop_table() {
        let mut db = db();
        db.execute("DROP TABLE t0").unwrap();
        assert!(db.execute("SELECT * FROM t0").is_err());
    }

    #[test]
    fn distinct_and_empty_tables() {
        let mut db = db();
        db.execute("CREATE TABLE e (x INT)").unwrap();
        let r = db.execute("SELECT DISTINCT x FROM e").unwrap();
        assert!(r.rows.is_empty());
        db.execute("INSERT INTO t0 VALUES (1, 10)").unwrap();
        let r = db.execute("SELECT DISTINCT c0 FROM t0").unwrap();
        assert_eq!(r.rows.len(), 4);
    }

    #[test]
    fn count_sum_on_empty_input() {
        let mut db = db();
        db.execute("CREATE TABLE e (x INT)").unwrap();
        let r = db.execute("SELECT COUNT(*), SUM(x) FROM e").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Datum::Int(0));
        assert!(r.rows[0][1].is_null(), "SUM over nothing is NULL");
    }

    #[test]
    fn listing3_fault_changes_results_only_with_index() {
        // Paper Listing 3, modelled by fault mysql-113302.
        let mut db = Database::new(EngineProfile::MySql);
        db.execute("CREATE TABLE t0(c0 INT, c1 INT)").unwrap();
        db.execute("INSERT INTO t0(c1, c0) VALUES(0, 1)").unwrap();
        db.arm_fault(BugId::Mysql113302);

        let q = "SELECT * FROM t0 WHERE t0.c1 IN (GREATEST(0.1, 0.2))";
        let r = db.execute(q).unwrap();
        assert!(r.rows.is_empty(), "without the index the result is empty");

        db.execute("CREATE INDEX i0 ON t0(c1)").unwrap();
        let r = db.execute(q).unwrap();
        assert_eq!(r.rows.len(), 1, "with the index the fault returns {{1|0}}");
        assert_eq!(db.take_fault_log(), vec![BugId::Mysql113302]);
    }

    #[test]
    fn faults_of_other_profiles_do_not_arm() {
        let mut db = Database::new(EngineProfile::Postgres);
        db.arm_fault(BugId::Mysql113302);
        db.arm_all_faults();
        db.clear_faults();
        assert!(db.take_fault_log().is_empty());
    }
}
