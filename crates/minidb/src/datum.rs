//! Runtime values and column types.

use std::cmp::Ordering;
use std::fmt;

/// Column data types of the SQL subset.
///
/// `Date` values are stored as ISO-8601 strings (`"1994-01-01"`), which
/// compare correctly under lexicographic order — the property TPC-H's range
/// predicates need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
    /// ISO-8601 date, stored as text.
    Date,
}

impl DataType {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Date => "DATE",
        }
    }
}

/// A runtime value. `Null` is SQL NULL and participates in three-valued
/// logic through [`Datum::sql_eq`] / [`Datum::sql_cmp`].
#[derive(Debug, Clone)]
pub enum Datum {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// Text value (also carries dates).
    Str(String),
    /// Boolean value.
    Bool(bool),
}

impl Datum {
    /// `true` iff NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Numeric view, widening integers; `None` for non-numerics and NULL.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(i) => Some(*i as f64),
            Datum::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; `None` otherwise.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view; `None` otherwise.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Text view; `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL equality under three-valued logic: `None` when either side is
    /// NULL, otherwise the comparison result. Ints and floats compare
    /// numerically across types.
    pub fn sql_eq(&self, other: &Datum) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// SQL ordering under three-valued logic: `None` when either side is
    /// NULL or the types are incomparable.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => None,
            (Datum::Int(a), Datum::Int(b)) => Some(a.cmp(b)),
            (Datum::Float(a), Datum::Float(b)) => a.partial_cmp(b),
            (Datum::Int(a), Datum::Float(b)) => (*a as f64).partial_cmp(b),
            (Datum::Float(a), Datum::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Datum::Str(a), Datum::Str(b)) => Some(a.cmp(b)),
            (Datum::Bool(a), Datum::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order for sorting and B-tree keys: NULLs first, then booleans,
    /// numerics (cross-type), text. Distinct types order by type rank.
    pub fn total_cmp(&self, other: &Datum) -> Ordering {
        fn rank(d: &Datum) -> u8 {
            match d {
                Datum::Null => 0,
                Datum::Bool(_) => 1,
                Datum::Int(_) | Datum::Float(_) => 2,
                Datum::Str(_) => 3,
            }
        }
        match (self, other) {
            (Datum::Null, Datum::Null) => Ordering::Equal,
            (Datum::Bool(a), Datum::Bool(b)) => a.cmp(b),
            (Datum::Int(a), Datum::Int(b)) => a.cmp(b),
            (Datum::Str(a), Datum::Str(b)) => a.cmp(b),
            (Datum::Float(a), Datum::Float(b)) => a.total_cmp(b),
            (Datum::Int(a), Datum::Float(b)) => (*a as f64).total_cmp(b),
            (Datum::Float(a), Datum::Int(b)) => a.total_cmp(&(*b as f64)),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Grouping equality: NULL == NULL (SQL GROUP BY semantics), otherwise
    /// [`Datum::total_cmp`] equality.
    pub fn group_eq(&self, other: &Datum) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// A hashable key for grouping/hash joins (NULL groups together).
    pub fn group_key(&self) -> DatumKey {
        DatumKey(self.clone())
    }

    /// Literal rendering used by plan serializations.
    pub fn render(&self) -> String {
        match self {
            Datum::Null => "NULL".to_owned(),
            Datum::Int(i) => i.to_string(),
            Datum::Float(f) => format!("{f:?}"),
            Datum::Str(s) => format!("'{}'", s.replace('\'', "''")),
            Datum::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_owned(),
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Str(s) => write!(f, "{s}"),
            other => write!(f, "{}", other.render()),
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Datum {}

/// Wrapper giving [`Datum`] the `Ord`/`Hash` impls of its total order, for
/// use as a B-tree or hash key.
#[derive(Debug, Clone, PartialEq)]
pub struct DatumKey(pub Datum);

impl Eq for DatumKey {}

impl PartialOrd for DatumKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DatumKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for DatumKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match &self.0 {
            Datum::Null => 0u8.hash(state),
            Datum::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats must hash alike when they compare alike.
            Datum::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Datum::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Datum::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

/// A table row.
pub type Row = Vec<Datum>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_comparisons_are_three_valued() {
        assert_eq!(Datum::Null.sql_eq(&Datum::Int(1)), None);
        assert_eq!(Datum::Int(1).sql_eq(&Datum::Null), None);
        assert_eq!(Datum::Int(1).sql_eq(&Datum::Int(1)), Some(true));
        assert_eq!(Datum::Int(1).sql_eq(&Datum::Float(1.0)), Some(true));
        assert_eq!(Datum::Int(1).sql_eq(&Datum::Float(1.5)), Some(false));
        assert_eq!(
            Datum::Str("a".into()).sql_cmp(&Datum::Str("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Datum::Str("a".into()).sql_cmp(&Datum::Int(1)), None);
    }

    #[test]
    fn total_order_is_total() {
        let values = [
            Datum::Null,
            Datum::Bool(false),
            Datum::Bool(true),
            Datum::Int(-5),
            Datum::Float(0.5),
            Datum::Int(1),
            Datum::Str("a".into()),
        ];
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                let cmp = a.total_cmp(b);
                match i.cmp(&j) {
                    Ordering::Less => assert_eq!(cmp, Ordering::Less, "{a:?} vs {b:?}"),
                    Ordering::Equal => assert_eq!(cmp, Ordering::Equal),
                    Ordering::Greater => assert_eq!(cmp, Ordering::Greater),
                }
            }
        }
    }

    #[test]
    fn group_semantics_unify_nulls() {
        assert!(Datum::Null.group_eq(&Datum::Null));
        assert!(!Datum::Null.group_eq(&Datum::Int(0)));
        assert!(Datum::Int(2).group_eq(&Datum::Float(2.0)));
    }

    #[test]
    fn keys_hash_consistently_with_equality() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Datum::Int(2).group_key());
        assert!(set.contains(&Datum::Float(2.0).group_key()));
        set.insert(Datum::Null.group_key());
        assert!(set.contains(&Datum::Null.group_key()));
    }

    #[test]
    fn render_quotes_strings() {
        assert_eq!(Datum::Str("o'brien".into()).render(), "'o''brien'");
        assert_eq!(Datum::Null.render(), "NULL");
        assert_eq!(Datum::Float(1.5).render(), "1.5");
        assert_eq!(Datum::Bool(true).render(), "TRUE");
    }

    #[test]
    fn date_strings_compare_chronologically() {
        let early = Datum::Str("1994-01-01".into());
        let late = Datum::Str("1995-12-31".into());
        assert_eq!(early.sql_cmp(&late), Some(Ordering::Less));
    }
}
