//! The volcano-style executor.
//!
//! Each operator materializes its output and records actual rows and wall
//! time into its [`PhysNode`] — the actuals are what `EXPLAIN ANALYZE`
//! serializes and what the paper's q11 analysis (per-operator execution
//! times) and the CERT oracle (estimate vs. actual) consume.
//!
//! This is also where the *logic* faults of the Table V catalog live; each
//! fault fires only on its gating plan feature and is recorded in the
//! [`FaultLog`] for campaign accounting (the testing oracles never read the
//! log — they detect bugs from results alone).

use std::collections::HashMap;
use std::time::Instant;

use crate::datum::{Datum, DatumKey, Row};
use crate::expr::{AggFunc, BoundExpr};
use crate::faults::{BugId, FaultLog, FaultSet};
use crate::physical::{Actual, AggStrategy, ExplainedPlan, IndexAccess, PhysNode, PhysOp};
use crate::profile::EngineProfile;
use crate::sql::ast::{JoinKind, SetOpKind};
use crate::storage::{RowId, Table};
use crate::{Error, Result};

/// Execution context.
pub struct ExecCtx<'a> {
    /// Tables by name.
    pub tables: &'a HashMap<String, Table>,
    /// Engine profile (fault gating).
    pub profile: EngineProfile,
    /// Armed faults.
    pub faults: &'a FaultSet,
    /// Rows updated since their table's indexes were last rebuilt
    /// (feeds the TiDB stale-index fault).
    pub recently_updated: &'a HashMap<String, std::collections::HashSet<RowId>>,
    /// Fault firings (campaign accounting only).
    pub fault_log: &'a mut FaultLog,
    /// Scalar subquery results by slot.
    pub subquery_values: Vec<Datum>,
}

/// Executes a planned statement, filling actuals into the plan.
pub fn execute(plan: &mut ExplainedPlan, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let start = Instant::now();
    // Subplans first: each produces one scalar.
    let mut slots = Vec::with_capacity(plan.subplans.len());
    for sub in &mut plan.subplans {
        let rows = exec_node(sub, ctx)?;
        let value = rows
            .first()
            .and_then(|r| r.first().cloned())
            .unwrap_or(Datum::Null);
        slots.push(value);
    }
    ctx.subquery_values = slots;
    let rows = exec_node(&mut plan.root, ctx)?;
    plan.execution_time_ms = Some(start.elapsed().as_secs_f64() * 1e3);
    Ok(rows)
}

fn exec_node(node: &mut PhysNode, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let start = Instant::now();
    let rows = match &node.op {
        PhysOp::SeqScan { .. } => exec_seq_scan(node, ctx)?,
        PhysOp::IndexScan { .. } => {
            // Parameterized index scans only run inside a nested loop.
            exec_index_scan(node, ctx, None)?
        }
        PhysOp::Filter { .. } => exec_filter(node, ctx)?,
        PhysOp::Project { .. } => exec_project(node, ctx)?,
        PhysOp::HashJoin { .. } => exec_hash_join(node, ctx)?,
        PhysOp::NestedLoopJoin { .. } => exec_nested_loop(node, ctx)?,
        PhysOp::MergeJoin { .. } => exec_merge_join(node, ctx)?,
        PhysOp::Aggregate { .. } => exec_aggregate(node, ctx)?,
        PhysOp::Sort { .. } => exec_sort(node, ctx)?,
        PhysOp::TopN { .. } => exec_topn(node, ctx)?,
        PhysOp::Limit { .. } => exec_limit(node, ctx)?,
        PhysOp::Distinct => exec_distinct(node, ctx)?,
        PhysOp::SetOp { .. } => exec_setop(node, ctx)?,
        PhysOp::Append => exec_append(node, ctx)?,
        PhysOp::Empty => vec![vec![]],
    };
    node.actual = Some(Actual {
        rows: rows.len() as u64,
        time_ms: start.elapsed().as_secs_f64() * 1e3,
    });
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

fn exec_seq_scan(node: &mut PhysNode, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let PhysOp::SeqScan { table, filter, .. } = &node.op else {
        unreachable!()
    };
    let storage = lookup_table(ctx, table)?;
    let mut out = Vec::new();
    let subq = ctx.subquery_values.clone();
    for (_, row) in storage.heap.scan() {
        match filter {
            Some(f) => {
                if f.eval_predicate(row, &subq)? {
                    out.push(row.clone());
                }
            }
            None => out.push(row.clone()),
        }
    }
    Ok(out)
}

/// Executes an index scan. `outer_row` parameterizes `Eq(Column)` accesses
/// inside index nested-loop joins.
fn exec_index_scan(
    node: &mut PhysNode,
    ctx: &mut ExecCtx<'_>,
    outer_row: Option<&Row>,
) -> Result<Vec<Row>> {
    let PhysOp::IndexScan {
        table,
        index,
        access,
        filter,
        automatic,
        ..
    } = &node.op
    else {
        unreachable!()
    };
    let storage = lookup_table(ctx, table)?;
    let subq = ctx.subquery_values.clone();

    // Resolve the probe values.
    let empty_row: Row = vec![];
    let probe_row = outer_row.unwrap_or(&empty_row);

    // Automatic indexes (SQLite) have no materialized index; emulate by
    // scanning the heap with the equality applied.
    let key_col = if *automatic {
        None
    } else {
        storage.index(index).map(|i| i.def.key_columns[0])
    };

    let mut row_ids: Vec<RowId> = match (key_col, access) {
        (Some(_), IndexAccess::Eq(expr)) => {
            let mut key = expr.eval(probe_row, &subq)?;
            // Fault mysql-113302 (Listing 3): fractional probe values are
            // truncated to integers before the index lookup.
            if ctx.faults.is_armed(BugId::Mysql113302) && ctx.profile == EngineProfile::MySql {
                if let Datum::Float(f) = &key {
                    if f.fract() != 0.0 {
                        ctx.fault_log.record(BugId::Mysql113302);
                        key = Datum::Int(*f as i64);
                    }
                }
            }
            if key.is_null() {
                Vec::new()
            } else {
                let idx = storage.index(index).expect("index exists");
                let mut ids = idx.lookup_eq(&key);
                // Fault tidb-51490: duplicate row ids collapse to one.
                if ctx.faults.is_armed(BugId::Tidb51490)
                    && ctx.profile == EngineProfile::TiDb
                    && ids.len() > 1
                {
                    ctx.fault_log.record(BugId::Tidb51490);
                    ids.truncate(1);
                }
                ids
            }
        }
        (Some(_), IndexAccess::Range { low, high }) => {
            let mut lo = match low {
                Some(e) => Some(e.eval(probe_row, &subq)?),
                None => None,
            };
            let hi = match high {
                Some(e) => Some(e.eval(probe_row, &subq)?),
                None => None,
            };
            // Fault mysql-113304: negative lower bounds skip the boundary.
            if ctx.faults.is_armed(BugId::Mysql113304) && ctx.profile == EngineProfile::MySql {
                if let Some(Datum::Int(v)) = &lo {
                    if *v < 0 {
                        ctx.fault_log.record(BugId::Mysql113304);
                        lo = Some(Datum::Int(v + 1));
                    }
                }
            }
            let idx = storage.index(index).expect("index exists");
            idx.lookup_range(lo.as_ref(), hi.as_ref())
        }
        (Some(_), IndexAccess::Full) => storage.index(index).expect("index exists").scan_all(),
        (None, _) => {
            // Automatic covering index: emulate with a filtered heap scan.
            let mut ids = Vec::new();
            if let IndexAccess::Eq(expr) = access {
                let key = expr.eval(probe_row, &subq)?;
                if !key.is_null() {
                    // The automatic index's key column is unknown here; the
                    // planner guarantees the `on` predicate still checks the
                    // equality, so return all candidates.
                    let _ = key;
                }
            }
            for (id, _) in storage.heap.scan() {
                ids.push(id);
            }
            ids
        }
    };

    // Fault tidb-49131: rows updated since the index was built are missed.
    if ctx.faults.is_armed(BugId::Tidb49131) && ctx.profile == EngineProfile::TiDb {
        if let Some(stale) = ctx.recently_updated.get(table) {
            if !stale.is_empty() {
                let before = row_ids.len();
                row_ids.retain(|id| !stale.contains(id));
                if row_ids.len() != before {
                    ctx.fault_log.record(BugId::Tidb49131);
                }
            }
        }
    }

    let mut out = Vec::new();
    for id in row_ids {
        let Some(row) = storage.heap.get(id) else {
            continue;
        };
        match filter {
            Some(f) => {
                // Fault mysql-113317: IS NULL inside a residual filter at an
                // index scan evaluates to FALSE.
                let keep = if ctx.faults.is_armed(BugId::Mysql113317)
                    && ctx.profile == EngineProfile::MySql
                    && contains_is_null(f)
                {
                    let broken = rewrite_is_null_false(f.clone());
                    let correct = f.eval_predicate(row, &subq)?;
                    let buggy = broken.eval_predicate(row, &subq)?;
                    if correct != buggy {
                        ctx.fault_log.record(BugId::Mysql113317);
                    }
                    buggy
                } else {
                    f.eval_predicate(row, &subq)?
                };
                if keep {
                    out.push(row.clone());
                }
            }
            None => out.push(row.clone()),
        }
    }
    Ok(out)
}

fn lookup_table<'a>(ctx: &ExecCtx<'a>, table: &str) -> Result<&'a Table> {
    ctx.tables
        .get(table)
        .ok_or_else(|| Error::Execution(format!("missing table {table:?}")))
}

fn contains_is_null(e: &BoundExpr) -> bool {
    let mut found = false;
    e.visit(&mut |x| {
        if matches!(x, BoundExpr::IsNull(_)) {
            found = true;
        }
    });
    found
}

fn rewrite_is_null_false(e: BoundExpr) -> BoundExpr {
    match e {
        BoundExpr::IsNull(_) => BoundExpr::Literal(Datum::Bool(false)),
        BoundExpr::Binary { op, left, right } => BoundExpr::Binary {
            op,
            left: Box::new(rewrite_is_null_false(*left)),
            right: Box::new(rewrite_is_null_false(*right)),
        },
        BoundExpr::Not(inner) => BoundExpr::Not(Box::new(rewrite_is_null_false(*inner))),
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Filters / projections
// ---------------------------------------------------------------------------

fn exec_filter(node: &mut PhysNode, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let PhysOp::Filter { predicate } = node.op.clone() else {
        unreachable!()
    };
    let input = exec_node(&mut node.children[0], ctx)?;
    let subq = ctx.subquery_values.clone();

    // Fault tidb-49107: IS NULL inside a pushed Selection evaluates FALSE.
    let tidb_null_bug = ctx.faults.is_armed(BugId::Tidb49107)
        && ctx.profile == EngineProfile::TiDb
        && contains_is_null(&predicate);
    // Fault tidb-49108: a top-level NOT whose operand is NULL keeps the row.
    let tidb_not_bug = ctx.faults.is_armed(BugId::Tidb49108)
        && ctx.profile == EngineProfile::TiDb
        && matches!(predicate, BoundExpr::Not(_));

    let broken = tidb_null_bug.then(|| rewrite_is_null_false(predicate.clone()));

    let mut out = Vec::new();
    for row in input {
        let keep = if let Some(b) = &broken {
            let correct = predicate.eval_predicate(&row, &subq)?;
            let buggy = b.eval_predicate(&row, &subq)?;
            if correct != buggy {
                ctx.fault_log.record(BugId::Tidb49107);
            }
            buggy
        } else if tidb_not_bug {
            let BoundExpr::Not(inner) = &predicate else {
                unreachable!()
            };
            let value = inner.eval(&row, &subq)?;
            if value.is_null() {
                ctx.fault_log.record(BugId::Tidb49108);
                true
            } else {
                predicate.eval_predicate(&row, &subq)?
            }
        } else {
            predicate.eval_predicate(&row, &subq)?
        };
        if keep {
            out.push(row);
        }
    }
    Ok(out)
}

fn exec_project(node: &mut PhysNode, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let PhysOp::Project { exprs, .. } = node.op.clone() else {
        unreachable!()
    };
    let input = exec_node(&mut node.children[0], ctx)?;
    let subq = ctx.subquery_values.clone();
    let mut out = Vec::with_capacity(input.len());
    for row in input {
        let mut projected = Vec::with_capacity(exprs.len());
        for e in &exprs {
            projected.push(e.eval(&row, &subq)?);
        }
        out.push(projected);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

fn exec_hash_join(node: &mut PhysNode, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let PhysOp::HashJoin {
        kind,
        keys,
        residual,
    } = node.op.clone()
    else {
        unreachable!()
    };
    let mut children = std::mem::take(&mut node.children);
    let probe_rows = exec_node(&mut children[0], ctx)?;
    let build_rows = exec_node(&mut children[1], ctx)?;
    node.children = children;
    let subq = ctx.subquery_values.clone();

    let null_match_bug =
        ctx.faults.is_armed(BugId::Mysql114204) && ctx.profile == EngineProfile::MySql;
    let dup_drop_bug = ctx.faults.is_armed(BugId::Tidb51523) && ctx.profile == EngineProfile::TiDb;

    // Build.
    let mut table: HashMap<Vec<DatumKey>, Vec<&Row>> = HashMap::new();
    for row in &build_rows {
        let key: Vec<DatumKey> = keys.iter().map(|(_, b)| row[*b].group_key()).collect();
        let has_null = key.iter().any(|k| k.0.is_null());
        if has_null && !null_match_bug {
            continue; // NULL keys never join
        }
        table.entry(key).or_default().push(row);
    }
    if dup_drop_bug {
        for bucket in table.values_mut() {
            if bucket.len() > 1 {
                ctx.fault_log.record(BugId::Tidb51523);
                bucket.pop();
            }
        }
    }

    // Probe.
    let mut out = Vec::new();
    for probe in &probe_rows {
        let key: Vec<DatumKey> = keys.iter().map(|(a, _)| probe[*a].group_key()).collect();
        let has_null = key.iter().any(|k| k.0.is_null());
        let matches = if has_null && !null_match_bug {
            None
        } else {
            if has_null && null_match_bug {
                ctx.fault_log.record(BugId::Mysql114204);
            }
            table.get(&key)
        };
        let mut matched = false;
        if let Some(bucket) = matches {
            for build in bucket {
                let mut combined = probe.clone();
                combined.extend((*build).clone());
                let keep = match &residual {
                    Some(r) => r.eval_predicate(&combined, &subq)?,
                    None => true,
                };
                if keep {
                    matched = true;
                    out.push(combined);
                }
            }
        }
        if !matched && kind == JoinKind::Left {
            let width = build_rows
                .first()
                .map(Vec::len)
                .unwrap_or_else(|| inner_width(&node.children[1], ctx));
            let mut combined = probe.clone();
            combined.extend(std::iter::repeat_n(Datum::Null, width));
            out.push(combined);
        }
    }
    Ok(out)
}

fn exec_nested_loop(node: &mut PhysNode, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let PhysOp::NestedLoopJoin { kind, on } = node.op.clone() else {
        unreachable!()
    };
    let mut children = std::mem::take(&mut node.children);
    let outer_rows = exec_node(&mut children[0], ctx)?;
    let subq = ctx.subquery_values.clone();

    // Parameterized inner (index nested-loop join)?
    let parameterized = matches!(
        &children[1].op,
        PhysOp::IndexScan {
            access: IndexAccess::Eq(BoundExpr::Column { .. }),
            ..
        }
    );

    let mut out = Vec::new();
    if parameterized {
        let dup_miss_bug =
            ctx.faults.is_armed(BugId::Tidb49109) && ctx.profile == EngineProfile::TiDb;
        let mut seen_keys: std::collections::HashSet<Vec<DatumKey>> =
            std::collections::HashSet::new();
        let key_col = match &children[1].op {
            PhysOp::IndexScan {
                access: IndexAccess::Eq(BoundExpr::Column { index, .. }),
                ..
            } => *index,
            _ => unreachable!(),
        };
        let mut inner_total = 0u64;
        let inner_start = Instant::now();
        for outer in &outer_rows {
            // Fault tidb-49109: repeated outer keys get no matches.
            if dup_miss_bug {
                let key = vec![outer[key_col].group_key()];
                if !key[0].0.is_null() && !seen_keys.insert(key) {
                    ctx.fault_log.record(BugId::Tidb49109);
                    if kind == JoinKind::Left {
                        let width = inner_width(&children[1], ctx);
                        let mut combined = outer.clone();
                        combined.extend(std::iter::repeat_n(Datum::Null, width));
                        out.push(combined);
                    }
                    continue;
                }
            }
            let inner_rows = exec_index_scan(&mut children[1], ctx, Some(outer))?;
            inner_total += inner_rows.len() as u64;
            let mut matched = false;
            for inner in inner_rows {
                let mut combined = outer.clone();
                combined.extend(inner);
                let keep = match &on {
                    Some(p) => p.eval_predicate(&combined, &subq)?,
                    None => true,
                };
                if keep {
                    matched = true;
                    out.push(combined);
                }
            }
            if !matched && kind == JoinKind::Left {
                let width = inner_width(&children[1], ctx);
                let mut combined = outer.clone();
                combined.extend(std::iter::repeat_n(Datum::Null, width));
                out.push(combined);
            }
        }
        children[1].actual = Some(Actual {
            rows: inner_total,
            time_ms: inner_start.elapsed().as_secs_f64() * 1e3,
        });
    } else {
        let inner_rows = exec_node(&mut children[1], ctx)?;
        for outer in &outer_rows {
            let mut matched = false;
            for inner in &inner_rows {
                let mut combined = outer.clone();
                combined.extend(inner.clone());
                let keep = match &on {
                    Some(p) => p.eval_predicate(&combined, &subq)?,
                    None => true,
                };
                if keep {
                    matched = true;
                    out.push(combined);
                }
            }
            if !matched && kind == JoinKind::Left {
                let width = inner_rows.first().map_or(0, Vec::len);
                let mut combined = outer.clone();
                combined.extend(std::iter::repeat_n(Datum::Null, width));
                out.push(combined);
            }
        }
    }
    node.children = children;
    Ok(out)
}

fn inner_width(node: &PhysNode, ctx: &ExecCtx<'_>) -> usize {
    match &node.op {
        PhysOp::IndexScan { table, .. } | PhysOp::SeqScan { table, .. } => ctx
            .tables
            .get(table)
            .and_then(|t| t.heap.scan().next().map(|(_, r)| r.len()))
            .unwrap_or(0),
        _ => 0,
    }
}

fn exec_merge_join(node: &mut PhysNode, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let PhysOp::MergeJoin {
        kind,
        key,
        residual,
    } = node.op.clone()
    else {
        unreachable!()
    };
    let mut children = std::mem::take(&mut node.children);
    let mut left = exec_node(&mut children[0], ctx)?;
    let mut right = exec_node(&mut children[1], ctx)?;
    node.children = children;
    let subq = ctx.subquery_values.clone();
    left.sort_by(|a, b| a[key.0].total_cmp(&b[key.0]));
    right.sort_by(|a, b| a[key.1].total_cmp(&b[key.1]));

    let mut out = Vec::new();
    let right_width = right.first().map_or(0, Vec::len);
    let mut r_start = 0usize;
    for l_row in &left {
        let lk = &l_row[key.0];
        if lk.is_null() {
            if kind == JoinKind::Left {
                let mut combined = l_row.clone();
                combined.extend(std::iter::repeat_n(Datum::Null, right_width));
                out.push(combined);
            }
            continue;
        }
        // Advance the right cursor.
        while r_start < right.len()
            && right[r_start][key.1]
                .sql_cmp(lk)
                .is_some_and(|o| o == std::cmp::Ordering::Less)
        {
            r_start += 1;
        }
        while r_start < right.len() && right[r_start][key.1].is_null() {
            r_start += 1;
        }
        let mut matched = false;
        let mut r = r_start;
        while r < right.len() && right[r][key.1].sql_eq(lk) == Some(true) {
            let mut combined = l_row.clone();
            combined.extend(right[r].clone());
            let keep = match &residual {
                Some(p) => p.eval_predicate(&combined, &subq)?,
                None => true,
            };
            if keep {
                matched = true;
                out.push(combined);
            }
            r += 1;
        }
        if !matched && kind == JoinKind::Left {
            let mut combined = l_row.clone();
            combined.extend(std::iter::repeat_n(Datum::Null, right_width));
            out.push(combined);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

struct AggState {
    count: u64,
    sum_int: i64,
    sum_float: f64,
    saw_float: bool,
    min: Option<Datum>,
    max: Option<Datum>,
}

impl AggState {
    fn new() -> AggState {
        AggState {
            count: 0,
            sum_int: 0,
            sum_float: 0.0,
            saw_float: false,
            min: None,
            max: None,
        }
    }

    fn update(&mut self, value: &Datum) {
        if value.is_null() {
            return;
        }
        self.count += 1;
        match value {
            Datum::Int(i) => self.sum_int = self.sum_int.wrapping_add(*i),
            Datum::Float(f) => {
                self.sum_float += f;
                self.saw_float = true;
            }
            _ => {}
        }
        let replace_min = self
            .min
            .as_ref()
            .is_none_or(|m| value.sql_cmp(m) == Some(std::cmp::Ordering::Less));
        if replace_min {
            self.min = Some(value.clone());
        }
        let replace_max = self
            .max
            .as_ref()
            .is_none_or(|m| value.sql_cmp(m) == Some(std::cmp::Ordering::Greater));
        if replace_max {
            self.max = Some(value.clone());
        }
    }

    fn finish(&self, func: AggFunc, sum_zero_bug: bool) -> Datum {
        match func {
            AggFunc::Count => Datum::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    if sum_zero_bug {
                        Datum::Int(0)
                    } else {
                        Datum::Null
                    }
                } else if self.saw_float {
                    Datum::Float(self.sum_float + self.sum_int as f64)
                } else {
                    Datum::Int(self.sum_int)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Datum::Null
                } else {
                    Datum::Float((self.sum_float + self.sum_int as f64) / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Datum::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Datum::Null),
        }
    }
}

fn exec_aggregate(node: &mut PhysNode, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let PhysOp::Aggregate {
        group_by,
        aggs,
        having,
        shared_subplan,
        strategy,
    } = node.op.clone()
    else {
        unreachable!()
    };
    let input = exec_node(&mut node.children[0], ctx)?;
    let subq_before = ctx.subquery_values.clone();

    // TiDB shared sub-aggregation (paper Listing 4): compute the statement's
    // scalar subquery from this aggregate's own input, before HAVING runs.
    if shared_subplan {
        if let Some(spec) = SHARED_SPEC.with(|s| s.borrow().clone()) {
            let mut states: Vec<AggState> = spec.aggs.iter().map(|_| AggState::new()).collect();
            for row in &input {
                for (i, agg) in spec.aggs.iter().enumerate() {
                    let value = match &agg.arg {
                        Some(a) => a.eval(row, &subq_before)?,
                        None => Datum::Int(1),
                    };
                    states[i].update(&value);
                }
            }
            let sub_row: Row = spec
                .aggs
                .iter()
                .enumerate()
                .map(|(i, agg)| states[i].finish(agg.func, false))
                .collect();
            let scalar = spec.project.eval(&sub_row, &subq_before)?;
            while ctx.subquery_values.len() <= spec.slot {
                ctx.subquery_values.push(Datum::Null);
            }
            ctx.subquery_values[spec.slot] = scalar;
        }
    }
    let subq = ctx.subquery_values.clone();

    let sum_zero_bug = ctx.faults.is_armed(BugId::Tidb49110)
        && ctx.profile == EngineProfile::TiDb
        && group_by.is_empty()
        && strategy == AggStrategy::Plain
        && input.is_empty()
        && aggs.iter().any(|a| a.func == AggFunc::Sum);
    if sum_zero_bug {
        ctx.fault_log.record(BugId::Tidb49110);
    }

    // Group.
    let mut order: Vec<Vec<DatumKey>> = Vec::new();
    let mut groups: HashMap<Vec<DatumKey>, (Row, Vec<AggState>)> = HashMap::new();
    if group_by.is_empty() {
        groups.insert(
            vec![],
            (vec![], aggs.iter().map(|_| AggState::new()).collect()),
        );
        order.push(vec![]);
    }
    for row in &input {
        let mut key_vals = Vec::with_capacity(group_by.len());
        for g in &group_by {
            key_vals.push(g.eval(row, &subq)?);
        }
        let key: Vec<DatumKey> = key_vals.iter().map(Datum::group_key).collect();
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (
                key_vals.clone(),
                aggs.iter().map(|_| AggState::new()).collect(),
            )
        });
        for (i, agg) in aggs.iter().enumerate() {
            let value = match &agg.arg {
                Some(a) => a.eval(row, &subq)?,
                None => Datum::Int(1),
            };
            entry.1[i].update(&value);
        }
    }

    // Emit in first-seen order; evaluate HAVING over [groups..., aggs...].
    let mut out = Vec::new();
    for key in order {
        let (group_vals, states) = groups.remove(&key).expect("group recorded");
        let mut row: Row = group_vals;
        for (i, agg) in aggs.iter().enumerate() {
            row.push(states[i].finish(agg.func, sum_zero_bug));
        }
        let keep = match &having {
            Some(h) => h.eval_predicate(&row, &subq)?,
            None => true,
        };
        if keep {
            out.push(row);
        }
    }
    Ok(out)
}

thread_local! {
    /// Shared sub-aggregate spec for the currently executing statement.
    static SHARED_SPEC: std::cell::RefCell<Option<crate::physical::SharedSubAgg>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs the shared sub-aggregate spec for this thread's next execution.
pub fn set_shared_spec(spec: Option<crate::physical::SharedSubAgg>) {
    SHARED_SPEC.with(|s| *s.borrow_mut() = spec);
}

// ---------------------------------------------------------------------------
// Ordering / limiting / set ops
// ---------------------------------------------------------------------------

fn sort_rows(rows: &mut [Row], keys: &[(BoundExpr, bool)], subq: &[Datum]) -> Result<()> {
    // Pre-compute key vectors to keep the comparator infallible.
    let mut keyed: Vec<(Vec<Datum>, Row)> = Vec::with_capacity(rows.len());
    for row in rows.iter() {
        let mut kv = Vec::with_capacity(keys.len());
        for (e, _) in keys {
            kv.push(e.eval(row, subq)?);
        }
        keyed.push((kv, row.clone()));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, (_, desc)) in keys.iter().enumerate() {
            let ord = ka[i].total_cmp(&kb[i]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    for (slot, (_, row)) in rows.iter_mut().zip(keyed) {
        *slot = row;
    }
    Ok(())
}

fn exec_sort(node: &mut PhysNode, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let PhysOp::Sort { keys } = node.op.clone() else {
        unreachable!()
    };
    let mut input = exec_node(&mut node.children[0], ctx)?;
    let subq = ctx.subquery_values.clone();
    sort_rows(&mut input, &keys, &subq)?;
    Ok(input)
}

fn exec_topn(node: &mut PhysNode, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let PhysOp::TopN {
        keys,
        limit,
        offset,
    } = node.op.clone()
    else {
        unreachable!()
    };
    let mut input = exec_node(&mut node.children[0], ctx)?;
    let subq = ctx.subquery_values.clone();
    sort_rows(&mut input, &keys, &subq)?;
    Ok(input
        .into_iter()
        .skip(offset as usize)
        .take(limit as usize)
        .collect())
}

fn exec_limit(node: &mut PhysNode, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let PhysOp::Limit { limit, offset } = node.op else {
        unreachable!()
    };
    let input = exec_node(&mut node.children[0], ctx)?;
    Ok(input
        .into_iter()
        .skip(offset as usize)
        .take(limit.map_or(usize::MAX, |n| n as usize))
        .collect())
}

fn exec_distinct(node: &mut PhysNode, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let input = exec_node(&mut node.children[0], ctx)?;
    // Fault mysql-114217: the group whose first column is NULL vanishes.
    let drop_null_bug =
        ctx.faults.is_armed(BugId::Mysql114217) && ctx.profile == EngineProfile::MySql;
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for row in input {
        if drop_null_bug && row.first().is_some_and(Datum::is_null) {
            ctx.fault_log.record(BugId::Mysql114217);
            continue;
        }
        let key: Vec<DatumKey> = row.iter().map(Datum::group_key).collect();
        if seen.insert(key) {
            out.push(row);
        }
    }
    Ok(out)
}

fn exec_append(node: &mut PhysNode, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let mut children = std::mem::take(&mut node.children);
    let mut out = Vec::new();
    for child in &mut children {
        out.extend(exec_node(child, ctx)?);
    }
    node.children = children;
    // Fault mysql-114218: UNION ALL deduplicates.
    if ctx.faults.is_armed(BugId::Mysql114218) && ctx.profile == EngineProfile::MySql {
        let mut seen = std::collections::HashSet::new();
        let before = out.len();
        out.retain(|row| seen.insert(row.iter().map(Datum::group_key).collect::<Vec<_>>()));
        if out.len() != before {
            ctx.fault_log.record(BugId::Mysql114218);
        }
    }
    Ok(out)
}

fn exec_setop(node: &mut PhysNode, ctx: &mut ExecCtx<'_>) -> Result<Vec<Row>> {
    let PhysOp::SetOp { op, .. } = node.op else {
        unreachable!()
    };
    let mut children = std::mem::take(&mut node.children);
    let left = exec_node(&mut children[0], ctx)?;
    let right = exec_node(&mut children[1], ctx)?;
    node.children = children;
    let right_keys: std::collections::HashSet<Vec<DatumKey>> = right
        .iter()
        .map(|r| r.iter().map(Datum::group_key).collect())
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for row in left {
        let key: Vec<DatumKey> = row.iter().map(Datum::group_key).collect();
        let in_right = right_keys.contains(&key);
        let keep = match op {
            SetOpKind::Intersect => in_right,
            SetOpKind::Except => !in_right,
            SetOpKind::Union => true,
        };
        if keep && seen.insert(key) {
            out.push(row);
        }
    }
    Ok(out)
}
