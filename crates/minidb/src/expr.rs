//! Expressions: parsed form, bound (column-resolved) form, and evaluation
//! under SQL three-valued logic.
//!
//! Three-valued logic matters doubly here: it is both engine semantics and
//! the foundation of the TLP oracle (Rigger & Su), which partitions any
//! predicate `p` into `p`, `NOT p` and `p IS NULL` — exactly the three truth
//! values — and which `uplan-testing` re-implements on top of this engine.

use std::fmt;

use crate::datum::{Datum, Row};
use crate::{Error, Result};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND` (Kleene)
    And,
    /// `OR` (Kleene)
    Or,
}

impl BinOp {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    /// `true` for comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Scalar functions of the SQL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// Greatest of the arguments (NULL if any argument is NULL, as MySQL).
    Greatest,
    /// Least of the arguments.
    Least,
    /// Absolute value.
    Abs,
    /// First non-NULL argument.
    Coalesce,
    /// String length.
    Length,
    /// Uppercase.
    Upper,
    /// Lowercase.
    Lower,
}

impl Func {
    /// Parses a function name.
    pub fn from_name(name: &str) -> Option<Func> {
        Some(match name.to_ascii_uppercase().as_str() {
            "GREATEST" => Func::Greatest,
            "LEAST" => Func::Least,
            "ABS" => Func::Abs,
            "COALESCE" => Func::Coalesce,
            "LENGTH" => Func::Length,
            "UPPER" => Func::Upper,
            "LOWER" => Func::Lower,
            _ => return None,
        })
    }

    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            Func::Greatest => "GREATEST",
            Func::Least => "LEAST",
            Func::Abs => "ABS",
            Func::Coalesce => "COALESCE",
            Func::Length => "LENGTH",
            Func::Upper => "UPPER",
            Func::Lower => "LOWER",
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)`.
    Count,
    /// `SUM`.
    Sum,
    /// `AVG`.
    Avg,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
}

impl AggFunc {
    /// Parses an aggregate name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            _ => return None,
        })
    }

    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// A bound expression: column references resolved to positions in the
/// operator's input row; scalar subqueries resolved to slot ids filled in by
/// the executor before the main plan runs.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Input column at `index`; `name` is kept for plan serialization.
    Column {
        /// Position in the input row.
        index: usize,
        /// Qualified display name (`t0.c0`).
        name: String,
    },
    /// A literal.
    Literal(Datum),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// `NOT expr` (Kleene negation).
    Not(Box<BoundExpr>),
    /// `-expr`.
    Neg(Box<BoundExpr>),
    /// `expr IS NULL` (never NULL itself).
    IsNull(Box<BoundExpr>),
    /// `expr IS NOT NULL`.
    IsNotNull(Box<BoundExpr>),
    /// `expr IN (e1, e2, ...)` with SQL NULL semantics.
    InList {
        /// Probe expression.
        expr: Box<BoundExpr>,
        /// Candidate list.
        list: Vec<BoundExpr>,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// Probe expression.
        expr: Box<BoundExpr>,
        /// Lower bound (inclusive).
        low: Box<BoundExpr>,
        /// Upper bound (inclusive).
        high: Box<BoundExpr>,
    },
    /// `expr LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// Probe expression.
        expr: Box<BoundExpr>,
        /// Pattern literal.
        pattern: String,
        /// Negated (`NOT LIKE`).
        negated: bool,
    },
    /// Scalar function call.
    Call {
        /// The function.
        func: Func,
        /// Arguments.
        args: Vec<BoundExpr>,
    },
    /// Uncorrelated scalar subquery, evaluated once per statement into a
    /// slot; see `exec`.
    Subquery {
        /// Slot index into the statement's subquery results.
        slot: usize,
    },
}

impl BoundExpr {
    /// Evaluates under three-valued logic. `subquery_values[slot]` must hold
    /// the pre-computed scalar results of all subqueries in the statement.
    pub fn eval(&self, row: &Row, subquery_values: &[Datum]) -> Result<Datum> {
        Ok(match self {
            BoundExpr::Column { index, .. } => row
                .get(*index)
                .cloned()
                .ok_or_else(|| Error::Execution(format!("column index {index} out of range")))?,
            BoundExpr::Literal(d) => d.clone(),
            BoundExpr::Binary { op, left, right } => {
                let l = left.eval(row, subquery_values)?;
                // Kleene short-circuiting for AND/OR.
                match op {
                    BinOp::And => {
                        if l.as_bool() == Some(false) {
                            return Ok(Datum::Bool(false));
                        }
                        let r = right.eval(row, subquery_values)?;
                        return Ok(match (to_bool3(&l), to_bool3(&r)) {
                            (Some(true), Some(true)) => Datum::Bool(true),
                            (Some(false), _) | (_, Some(false)) => Datum::Bool(false),
                            _ => Datum::Null,
                        });
                    }
                    BinOp::Or => {
                        if l.as_bool() == Some(true) {
                            return Ok(Datum::Bool(true));
                        }
                        let r = right.eval(row, subquery_values)?;
                        return Ok(match (to_bool3(&l), to_bool3(&r)) {
                            (Some(false), Some(false)) => Datum::Bool(false),
                            (Some(true), _) | (_, Some(true)) => Datum::Bool(true),
                            _ => Datum::Null,
                        });
                    }
                    _ => {}
                }
                let r = right.eval(row, subquery_values)?;
                if op.is_comparison() {
                    return Ok(match l.sql_cmp(&r) {
                        None => Datum::Null,
                        Some(ord) => Datum::Bool(match op {
                            BinOp::Eq => ord == std::cmp::Ordering::Equal,
                            BinOp::Ne => ord != std::cmp::Ordering::Equal,
                            BinOp::Lt => ord == std::cmp::Ordering::Less,
                            BinOp::Le => ord != std::cmp::Ordering::Greater,
                            BinOp::Gt => ord == std::cmp::Ordering::Greater,
                            BinOp::Ge => ord != std::cmp::Ordering::Less,
                            _ => unreachable!("checked is_comparison"),
                        }),
                    });
                }
                arithmetic(*op, &l, &r)?
            }
            BoundExpr::Not(inner) => match to_bool3(&inner.eval(row, subquery_values)?) {
                Some(b) => Datum::Bool(!b),
                None => Datum::Null,
            },
            BoundExpr::Neg(inner) => match inner.eval(row, subquery_values)? {
                Datum::Null => Datum::Null,
                Datum::Int(i) => Datum::Int(-i),
                Datum::Float(f) => Datum::Float(-f),
                other => {
                    return Err(Error::Execution(format!(
                        "cannot negate {}",
                        other.render()
                    )))
                }
            },
            BoundExpr::IsNull(inner) => Datum::Bool(inner.eval(row, subquery_values)?.is_null()),
            BoundExpr::IsNotNull(inner) => {
                Datum::Bool(!inner.eval(row, subquery_values)?.is_null())
            }
            BoundExpr::InList { expr, list } => {
                let probe = expr.eval(row, subquery_values)?;
                if probe.is_null() {
                    return Ok(Datum::Null);
                }
                let mut saw_null = false;
                for candidate in list {
                    match probe.sql_eq(&candidate.eval(row, subquery_values)?) {
                        Some(true) => return Ok(Datum::Bool(true)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Datum::Null
                } else {
                    Datum::Bool(false)
                }
            }
            BoundExpr::Between { expr, low, high } => {
                let v = expr.eval(row, subquery_values)?;
                let lo = low.eval(row, subquery_values)?;
                let hi = high.eval(row, subquery_values)?;
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => Datum::Bool(
                        a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater,
                    ),
                    _ => Datum::Null,
                }
            }
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => match expr.eval(row, subquery_values)? {
                Datum::Null => Datum::Null,
                Datum::Str(s) => {
                    let hit = like_match(&s, pattern);
                    Datum::Bool(hit != *negated)
                }
                other => {
                    return Err(Error::Execution(format!(
                        "LIKE needs text, got {}",
                        other.render()
                    )))
                }
            },
            BoundExpr::Call { func, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(a.eval(row, subquery_values)?);
                }
                eval_func(*func, &values)?
            }
            BoundExpr::Subquery { slot } => subquery_values
                .get(*slot)
                .cloned()
                .ok_or_else(|| Error::Execution(format!("subquery slot {slot} missing")))?,
        })
    }

    /// Evaluates as a WHERE predicate: `true` iff the result is TRUE
    /// (NULL and FALSE both exclude the row).
    pub fn eval_predicate(&self, row: &Row, subquery_values: &[Datum]) -> Result<bool> {
        Ok(self.eval(row, subquery_values)?.as_bool() == Some(true))
    }

    /// All column indices referenced by this expression.
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let BoundExpr::Column { index, .. } = e {
                out.push(*index);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut dyn FnMut(&BoundExpr)) {
        f(self);
        match self {
            BoundExpr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            BoundExpr::Not(e)
            | BoundExpr::Neg(e)
            | BoundExpr::IsNull(e)
            | BoundExpr::IsNotNull(e) => e.visit(f),
            BoundExpr::InList { expr, list } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            BoundExpr::Between { expr, low, high } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            BoundExpr::Like { expr, .. } => expr.visit(f),
            BoundExpr::Call { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            BoundExpr::Column { .. } | BoundExpr::Literal(_) | BoundExpr::Subquery { .. } => {}
        }
    }

    /// Rewrites column indices through `map` (old index → new index), used
    /// when predicates move across projections/joins.
    pub fn remap_columns(&mut self, map: &dyn Fn(usize) -> usize) {
        match self {
            BoundExpr::Column { index, .. } => *index = map(*index),
            BoundExpr::Binary { left, right, .. } => {
                left.remap_columns(map);
                right.remap_columns(map);
            }
            BoundExpr::Not(e)
            | BoundExpr::Neg(e)
            | BoundExpr::IsNull(e)
            | BoundExpr::IsNotNull(e) => e.remap_columns(map),
            BoundExpr::InList { expr, list } => {
                expr.remap_columns(map);
                for e in list {
                    e.remap_columns(map);
                }
            }
            BoundExpr::Between { expr, low, high } => {
                expr.remap_columns(map);
                low.remap_columns(map);
                high.remap_columns(map);
            }
            BoundExpr::Like { expr, .. } => expr.remap_columns(map),
            BoundExpr::Call { args, .. } => {
                for a in args {
                    a.remap_columns(map);
                }
            }
            BoundExpr::Literal(_) | BoundExpr::Subquery { .. } => {}
        }
    }
}

fn to_bool3(d: &Datum) -> Option<bool> {
    match d {
        Datum::Null => None,
        Datum::Bool(b) => Some(*b),
        // Numerics coerce: non-zero is true (MySQL-flavored leniency).
        Datum::Int(i) => Some(*i != 0),
        Datum::Float(f) => Some(*f != 0.0),
        Datum::Str(_) => Some(false),
    }
}

fn arithmetic(op: BinOp, l: &Datum, r: &Datum) -> Result<Datum> {
    if l.is_null() || r.is_null() {
        return Ok(Datum::Null);
    }
    // Integer arithmetic stays integral except for division by zero → NULL.
    if let (Some(a), Some(b)) = (l.as_int(), r.as_int()) {
        return Ok(match op {
            BinOp::Add => Datum::Int(a.wrapping_add(b)),
            BinOp::Sub => Datum::Int(a.wrapping_sub(b)),
            BinOp::Mul => Datum::Int(a.wrapping_mul(b)),
            BinOp::Div => {
                if b == 0 {
                    Datum::Null
                } else {
                    Datum::Int(a.wrapping_div(b))
                }
            }
            BinOp::Mod => {
                if b == 0 {
                    Datum::Null
                } else {
                    Datum::Int(a.wrapping_rem(b))
                }
            }
            other => {
                return Err(Error::Execution(format!(
                    "{} is not arithmetic",
                    other.sql()
                )))
            }
        });
    }
    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
        return Err(Error::Execution(format!(
            "arithmetic on non-numeric values {} and {}",
            l.render(),
            r.render()
        )));
    };
    Ok(match op {
        BinOp::Add => Datum::Float(a + b),
        BinOp::Sub => Datum::Float(a - b),
        BinOp::Mul => Datum::Float(a * b),
        BinOp::Div => {
            if b == 0.0 {
                Datum::Null
            } else {
                Datum::Float(a / b)
            }
        }
        BinOp::Mod => {
            if b == 0.0 {
                Datum::Null
            } else {
                Datum::Float(a % b)
            }
        }
        other => {
            return Err(Error::Execution(format!(
                "{} is not arithmetic",
                other.sql()
            )))
        }
    })
}

fn eval_func(func: Func, args: &[Datum]) -> Result<Datum> {
    match func {
        Func::Greatest | Func::Least => {
            if args.is_empty() {
                return Err(Error::Execution(format!("{} needs arguments", func.sql())));
            }
            if args.iter().any(Datum::is_null) {
                return Ok(Datum::Null);
            }
            let mut best = args[0].clone();
            for a in &args[1..] {
                let keep_new = match a.sql_cmp(&best) {
                    Some(std::cmp::Ordering::Greater) => func == Func::Greatest,
                    Some(std::cmp::Ordering::Less) => func == Func::Least,
                    _ => false,
                };
                if keep_new {
                    best = a.clone();
                }
            }
            Ok(best)
        }
        Func::Abs => match args {
            [Datum::Null] => Ok(Datum::Null),
            [Datum::Int(i)] => Ok(Datum::Int(i.wrapping_abs())),
            [Datum::Float(f)] => Ok(Datum::Float(f.abs())),
            _ => Err(Error::Execution("ABS needs one numeric argument".into())),
        },
        Func::Coalesce => Ok(args
            .iter()
            .find(|a| !a.is_null())
            .cloned()
            .unwrap_or(Datum::Null)),
        Func::Length => match args {
            [Datum::Null] => Ok(Datum::Null),
            [Datum::Str(s)] => Ok(Datum::Int(s.chars().count() as i64)),
            _ => Err(Error::Execution("LENGTH needs one text argument".into())),
        },
        Func::Upper => match args {
            [Datum::Null] => Ok(Datum::Null),
            [Datum::Str(s)] => Ok(Datum::Str(s.to_uppercase())),
            _ => Err(Error::Execution("UPPER needs one text argument".into())),
        },
        Func::Lower => match args {
            [Datum::Null] => Ok(Datum::Null),
            [Datum::Str(s)] => Ok(Datum::Str(s.to_lowercase())),
            _ => Err(Error::Execution("LOWER needs one text argument".into())),
        },
    }
}

/// SQL LIKE matching with `%` (any run) and `_` (any char), case-sensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => s.is_empty(),
            Some(('%', rest)) => (0..=s.len()).any(|skip| rec(&s[skip..], rest)),
            Some(('_', rest)) => !s.is_empty() && rec(&s[1..], rest),
            Some((c, rest)) => s.first() == Some(c) && rec(&s[1..], rest),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

impl fmt::Display for BoundExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundExpr::Column { name, .. } => write!(f, "{name}"),
            BoundExpr::Literal(d) => write!(f, "{}", d.render()),
            BoundExpr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.sql())
            }
            BoundExpr::Not(e) => write!(f, "(NOT {e})"),
            BoundExpr::Neg(e) => write!(f, "(-{e})"),
            BoundExpr::IsNull(e) => write!(f, "({e} IS NULL)"),
            BoundExpr::IsNotNull(e) => write!(f, "({e} IS NOT NULL)"),
            BoundExpr::InList { expr, list } => {
                write!(f, "({expr} IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            BoundExpr::Between { expr, low, high } => {
                write!(f, "({expr} BETWEEN {low} AND {high})")
            }
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE '{pattern}')",
                if *negated { "NOT " } else { "" }
            ),
            BoundExpr::Call { func, args } => {
                write!(f, "{}(", func.sql())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            BoundExpr::Subquery { slot } => write!(f, "(SubPlan {slot})"),
        }
    }
}

/// Helpers for building bound expressions in tests and workloads.
pub mod build {
    use super::*;

    /// Column reference.
    pub fn col(index: usize, name: &str) -> BoundExpr {
        BoundExpr::Column {
            index,
            name: name.to_owned(),
        }
    }

    /// Integer literal.
    pub fn int(v: i64) -> BoundExpr {
        BoundExpr::Literal(Datum::Int(v))
    }

    /// Float literal.
    pub fn float(v: f64) -> BoundExpr {
        BoundExpr::Literal(Datum::Float(v))
    }

    /// String literal.
    pub fn string(v: &str) -> BoundExpr {
        BoundExpr::Literal(Datum::Str(v.to_owned()))
    }

    /// NULL literal.
    pub fn null() -> BoundExpr {
        BoundExpr::Literal(Datum::Null)
    }

    /// Binary operation.
    pub fn bin(op: BinOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    fn eval(e: &BoundExpr) -> Datum {
        e.eval(&vec![], &[]).unwrap()
    }

    #[test]
    fn comparisons_three_valued() {
        assert_eq!(eval(&bin(BinOp::Lt, int(1), int(2))), Datum::Bool(true));
        assert_eq!(eval(&bin(BinOp::Lt, int(2), int(1))), Datum::Bool(false));
        assert_eq!(eval(&bin(BinOp::Lt, null(), int(1))), Datum::Null);
        assert_eq!(eval(&bin(BinOp::Ge, int(2), int(2))), Datum::Bool(true));
        assert_eq!(eval(&bin(BinOp::Ne, int(2), int(3))), Datum::Bool(true));
        assert_eq!(eval(&bin(BinOp::Le, float(1.5), int(2))), Datum::Bool(true));
    }

    #[test]
    fn kleene_and_or() {
        let t = || BoundExpr::Literal(Datum::Bool(true));
        let f = || BoundExpr::Literal(Datum::Bool(false));
        let n = null;
        assert_eq!(eval(&bin(BinOp::And, t(), n())), Datum::Null);
        assert_eq!(eval(&bin(BinOp::And, f(), n())), Datum::Bool(false));
        assert_eq!(eval(&bin(BinOp::And, n(), f())), Datum::Bool(false));
        assert_eq!(eval(&bin(BinOp::Or, t(), n())), Datum::Bool(true));
        assert_eq!(eval(&bin(BinOp::Or, n(), t())), Datum::Bool(true));
        assert_eq!(eval(&bin(BinOp::Or, f(), n())), Datum::Null);
        assert_eq!(eval(&BoundExpr::Not(Box::new(n()))), Datum::Null);
        assert_eq!(eval(&BoundExpr::Not(Box::new(t()))), Datum::Bool(false));
    }

    #[test]
    fn arithmetic_rules() {
        assert_eq!(eval(&bin(BinOp::Add, int(2), int(3))), Datum::Int(5));
        assert_eq!(eval(&bin(BinOp::Div, int(7), int(2))), Datum::Int(3));
        assert_eq!(eval(&bin(BinOp::Div, int(7), int(0))), Datum::Null);
        assert_eq!(eval(&bin(BinOp::Mod, int(7), int(0))), Datum::Null);
        assert_eq!(
            eval(&bin(BinOp::Mul, float(1.5), int(2))),
            Datum::Float(3.0)
        );
        assert_eq!(eval(&bin(BinOp::Add, null(), int(1))), Datum::Null);
        assert!(bin(BinOp::Add, string("a"), int(1))
            .eval(&vec![], &[])
            .is_err());
    }

    #[test]
    fn in_list_null_semantics() {
        // 1 IN (2, NULL) is NULL, not FALSE.
        let e = BoundExpr::InList {
            expr: Box::new(int(1)),
            list: vec![int(2), null()],
        };
        assert_eq!(eval(&e), Datum::Null);
        let e = BoundExpr::InList {
            expr: Box::new(int(2)),
            list: vec![int(2), null()],
        };
        assert_eq!(eval(&e), Datum::Bool(true));
        let e = BoundExpr::InList {
            expr: Box::new(null()),
            list: vec![int(2)],
        };
        assert_eq!(eval(&e), Datum::Null);
        let e = BoundExpr::InList {
            expr: Box::new(int(1)),
            list: vec![int(2), int(3)],
        };
        assert_eq!(eval(&e), Datum::Bool(false));
    }

    #[test]
    fn between_and_like() {
        let e = BoundExpr::Between {
            expr: Box::new(int(5)),
            low: Box::new(int(1)),
            high: Box::new(int(5)),
        };
        assert_eq!(eval(&e), Datum::Bool(true));
        let e = BoundExpr::Between {
            expr: Box::new(null()),
            low: Box::new(int(1)),
            high: Box::new(int(5)),
        };
        assert_eq!(eval(&e), Datum::Null);

        assert!(like_match("PROMO BURNISHED", "PROMO%"));
        assert!(like_match("large brass thing", "%brass%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(!like_match("abc", "abcd"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn functions() {
        let greatest = BoundExpr::Call {
            func: Func::Greatest,
            args: vec![float(0.1), float(0.2)],
        };
        assert_eq!(eval(&greatest), Datum::Float(0.2));
        let least = BoundExpr::Call {
            func: Func::Least,
            args: vec![int(3), int(1), int(2)],
        };
        assert_eq!(eval(&least), Datum::Int(1));
        let coalesce = BoundExpr::Call {
            func: Func::Coalesce,
            args: vec![null(), int(7)],
        };
        assert_eq!(eval(&coalesce), Datum::Int(7));
        let abs = BoundExpr::Call {
            func: Func::Abs,
            args: vec![int(-4)],
        };
        assert_eq!(eval(&abs), Datum::Int(4));
        let length = BoundExpr::Call {
            func: Func::Length,
            args: vec![string("abc")],
        };
        assert_eq!(eval(&length), Datum::Int(3));
        let with_null = BoundExpr::Call {
            func: Func::Greatest,
            args: vec![int(1), null()],
        };
        assert_eq!(eval(&with_null), Datum::Null);
    }

    #[test]
    fn predicate_excludes_null_and_false() {
        let tautology = bin(BinOp::Eq, int(1), int(1));
        assert!(tautology.eval_predicate(&vec![], &[]).unwrap());
        let null_pred = bin(BinOp::Eq, null(), int(1));
        assert!(!null_pred.eval_predicate(&vec![], &[]).unwrap());
    }

    #[test]
    fn columns_and_remap() {
        let mut e = bin(
            BinOp::And,
            bin(BinOp::Lt, col(2, "a.x"), int(5)),
            bin(BinOp::Eq, col(0, "b.y"), col(2, "a.x")),
        );
        assert_eq!(e.columns(), vec![0, 2]);
        e.remap_columns(&|i| i + 10);
        assert_eq!(e.columns(), vec![10, 12]);
        assert_eq!(
            e.eval(
                &{
                    let mut row = vec![Datum::Null; 13];
                    row[12] = Datum::Int(3);
                    row[10] = Datum::Int(3);
                    row
                },
                &[]
            )
            .unwrap(),
            Datum::Bool(true)
        );
    }

    #[test]
    fn display_is_sql_like() {
        let e = bin(BinOp::Lt, col(0, "t0.c0"), int(5));
        assert_eq!(e.to_string(), "(t0.c0 < 5)");
        let like = BoundExpr::Like {
            expr: Box::new(col(0, "p.name")),
            pattern: "%brass%".into(),
            negated: true,
        };
        assert_eq!(like.to_string(), "(p.name NOT LIKE '%brass%')");
    }

    #[test]
    fn subquery_slots() {
        let e = BoundExpr::Subquery { slot: 0 };
        assert_eq!(e.eval(&vec![], &[Datum::Int(42)]).unwrap(), Datum::Int(42));
        assert!(e.eval(&vec![], &[]).is_err());
        assert_eq!(e.to_string(), "(SubPlan 0)");
    }
}
