//! The injected-fault catalog standing in for paper Table V.
//!
//! The paper's QPG/CERT campaign found 17 previously-unknown bugs in real
//! MySQL, PostgreSQL and TiDB builds. Those bugs are fixed upstream and
//! cannot be re-found; what *can* be reproduced is the campaign itself. Each
//! entry below is a seeded fault with the same distribution across engines,
//! detecting oracle, and severity as the paper's table, and each is **gated
//! on a plan feature** (an index access path, a join algorithm, an
//! aggregation strategy, ...), so a testing method only hits it when its
//! generated queries exercise that plan shape — the property that makes
//! plan-guided generation (QPG) outperform blind generation, which the
//! ablation bench measures.
//!
//! Fault identifiers reuse the paper's bug ids. `mysql-113302` is modelled
//! on Listing 3 verbatim: an indexed lookup coerces a fractional probe value
//! to an integer, so `c1 IN (GREATEST(0.1, 0.2))` wrongly matches `c1 = 0`
//! once an index exists.

use std::collections::BTreeSet;

use crate::profile::EngineProfile;

/// Which testing method detects a fault (paper Table V "Found by").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// Logic bug: wrong results, detected by QPG-generated queries + TLP.
    Qpg,
    /// Performance bug: estimate anomaly, detected by CERT.
    Cert,
}

/// Paper Table V severities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Critical.
    Critical,
    /// Serious.
    Serious,
    /// Major.
    Major,
    /// Moderate.
    Moderate,
    /// Minor.
    Minor,
    /// Performance.
    Performance,
}

impl Severity {
    /// Table V spelling.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Critical => "Critical",
            Severity::Serious => "Serious",
            Severity::Major => "Major",
            Severity::Moderate => "Moderate",
            Severity::Minor => "Minor",
            Severity::Performance => "Performance",
        }
    }
}

/// Paper Table V statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugStatus {
    /// Confirmed by developers.
    Confirmed,
    /// Fixed.
    Fixed,
    /// Awaiting response.
    Pending,
}

impl BugStatus {
    /// Table V spelling.
    pub fn name(self) -> &'static str {
        match self {
            BugStatus::Confirmed => "Confirmed",
            BugStatus::Fixed => "Fixed",
            BugStatus::Pending => "Pending",
        }
    }
}

/// The 17 injectable faults (paper Table V rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum BugId {
    Mysql113302,
    Mysql113304,
    Mysql113317,
    Mysql114204,
    Mysql114217,
    Mysql114218,
    Mysql114237,
    PostgresEmail,
    Tidb49107,
    Tidb49108,
    Tidb49109,
    Tidb49110,
    Tidb49131,
    Tidb51490,
    Tidb51523,
    Tidb51524,
    Tidb51525,
}

/// Metadata of one Table V row.
#[derive(Debug, Clone, Copy)]
pub struct BugInfo {
    /// Fault id.
    pub id: BugId,
    /// Affected engine profile.
    pub profile: EngineProfile,
    /// Detecting method.
    pub oracle: Oracle,
    /// Upstream tracker id as reported in the paper.
    pub tracker_id: &'static str,
    /// Paper-reported status.
    pub status: BugStatus,
    /// Paper-reported severity.
    pub severity: Severity,
    /// The plan feature that gates the fault.
    pub gating_feature: &'static str,
}

impl BugId {
    /// All 17 faults in Table V order.
    pub const ALL: [BugId; 17] = [
        BugId::Mysql113302,
        BugId::Mysql113304,
        BugId::Mysql113317,
        BugId::Mysql114204,
        BugId::Mysql114217,
        BugId::Mysql114218,
        BugId::Mysql114237,
        BugId::PostgresEmail,
        BugId::Tidb49107,
        BugId::Tidb49108,
        BugId::Tidb49109,
        BugId::Tidb49110,
        BugId::Tidb49131,
        BugId::Tidb51490,
        BugId::Tidb51523,
        BugId::Tidb51524,
        BugId::Tidb51525,
    ];

    /// Table V metadata.
    pub fn info(self) -> BugInfo {
        use BugId::*;
        use EngineProfile as P;
        match self {
            Mysql113302 => BugInfo {
                id: self,
                profile: P::MySql,
                oracle: Oracle::Qpg,
                tracker_id: "113302",
                status: BugStatus::Confirmed,
                severity: Severity::Critical,
                gating_feature: "index equality lookup with fractional probe value",
            },
            Mysql113304 => BugInfo {
                id: self,
                profile: P::MySql,
                oracle: Oracle::Qpg,
                tracker_id: "113304",
                status: BugStatus::Confirmed,
                severity: Severity::Critical,
                gating_feature: "index range scan with negative lower bound",
            },
            Mysql113317 => BugInfo {
                id: self,
                profile: P::MySql,
                oracle: Oracle::Qpg,
                tracker_id: "113317",
                status: BugStatus::Confirmed,
                severity: Severity::Critical,
                gating_feature: "IS NULL filter evaluated at an index scan",
            },
            Mysql114204 => BugInfo {
                id: self,
                profile: P::MySql,
                oracle: Oracle::Qpg,
                tracker_id: "114204",
                status: BugStatus::Confirmed,
                severity: Severity::Serious,
                gating_feature: "hash join matching NULL keys",
            },
            Mysql114217 => BugInfo {
                id: self,
                profile: P::MySql,
                oracle: Oracle::Qpg,
                tracker_id: "114217",
                status: BugStatus::Confirmed,
                severity: Severity::Serious,
                gating_feature: "DISTINCT dropping a NULL-first group",
            },
            Mysql114218 => BugInfo {
                id: self,
                profile: P::MySql,
                oracle: Oracle::Qpg,
                tracker_id: "114218",
                status: BugStatus::Confirmed,
                severity: Severity::Serious,
                gating_feature: "UNION ALL deduplicating rows",
            },
            Mysql114237 => BugInfo {
                id: self,
                profile: P::MySql,
                oracle: Oracle::Cert,
                tracker_id: "114237",
                status: BugStatus::Confirmed,
                severity: Severity::Performance,
                gating_feature: "conjunction selectivity not combined",
            },
            PostgresEmail => BugInfo {
                id: self,
                profile: P::Postgres,
                oracle: Oracle::Cert,
                tracker_id: "Email",
                status: BugStatus::Pending,
                severity: Severity::Performance,
                gating_feature: "range estimate ignores added conjunct",
            },
            Tidb49107 => BugInfo {
                id: self,
                profile: P::TiDb,
                oracle: Oracle::Qpg,
                tracker_id: "49107",
                status: BugStatus::Fixed,
                severity: Severity::Major,
                gating_feature: "Selection pushdown dropping NULL-filter rows",
            },
            Tidb49108 => BugInfo {
                id: self,
                profile: P::TiDb,
                oracle: Oracle::Qpg,
                tracker_id: "49108",
                status: BugStatus::Confirmed,
                severity: Severity::Major,
                gating_feature: "NOT predicate inverted at pushed Selection",
            },
            Tidb49109 => BugInfo {
                id: self,
                profile: P::TiDb,
                oracle: Oracle::Qpg,
                tracker_id: "49109",
                status: BugStatus::Fixed,
                severity: Severity::Major,
                gating_feature: "index join missing duplicate outer keys",
            },
            Tidb49110 => BugInfo {
                id: self,
                profile: P::TiDb,
                oracle: Oracle::Qpg,
                tracker_id: "49110",
                status: BugStatus::Confirmed,
                severity: Severity::Major,
                gating_feature: "stream aggregation over empty groups",
            },
            Tidb49131 => BugInfo {
                id: self,
                profile: P::TiDb,
                oracle: Oracle::Qpg,
                tracker_id: "49131",
                status: BugStatus::Confirmed,
                severity: Severity::Major,
                gating_feature: "point get reading a stale index after UPDATE",
            },
            Tidb51490 => BugInfo {
                id: self,
                profile: P::TiDb,
                oracle: Oracle::Qpg,
                tracker_id: "51490",
                status: BugStatus::Confirmed,
                severity: Severity::Moderate,
                gating_feature: "index lookup dropping duplicate row ids",
            },
            Tidb51523 => BugInfo {
                id: self,
                profile: P::TiDb,
                oracle: Oracle::Qpg,
                tracker_id: "51523",
                status: BugStatus::Confirmed,
                severity: Severity::Moderate,
                gating_feature: "merge join skipping the last duplicate group",
            },
            Tidb51524 => BugInfo {
                id: self,
                profile: P::TiDb,
                oracle: Oracle::Cert,
                tracker_id: "51524",
                status: BugStatus::Confirmed,
                severity: Severity::Minor,
                gating_feature: "aggregate output estimate exceeds input estimate",
            },
            Tidb51525 => BugInfo {
                id: self,
                profile: P::TiDb,
                oracle: Oracle::Cert,
                tracker_id: "51525",
                status: BugStatus::Confirmed,
                severity: Severity::Minor,
                gating_feature: "index-only scan estimate ignores residual filter",
            },
        }
    }
}

/// The set of armed faults in a database instance.
#[derive(Debug, Clone, Default)]
pub struct FaultSet {
    armed: BTreeSet<BugId>,
}

impl FaultSet {
    /// No faults armed.
    pub fn none() -> FaultSet {
        FaultSet::default()
    }

    /// All faults affecting `profile` armed (the Table V campaign setup).
    pub fn all_for(profile: EngineProfile) -> FaultSet {
        let mut set = FaultSet::none();
        for id in BugId::ALL {
            if id.info().profile == profile {
                set.arm(id);
            }
        }
        set
    }

    /// Arms one fault.
    pub fn arm(&mut self, id: BugId) {
        self.armed.insert(id);
    }

    /// Disarms one fault.
    pub fn disarm(&mut self, id: BugId) {
        self.armed.remove(&id);
    }

    /// Whether a fault is armed.
    pub fn is_armed(&self, id: BugId) -> bool {
        self.armed.contains(&id)
    }

    /// Armed faults in id order.
    pub fn armed(&self) -> impl Iterator<Item = BugId> + '_ {
        self.armed.iter().copied()
    }

    /// Number of armed faults.
    pub fn len(&self) -> usize {
        self.armed.len()
    }

    /// `true` when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }
}

/// Records which faults actually fired during execution. The engine exposes
/// this **for campaign accounting only** (deduplicating Table V rows); the
/// testing oracles never read it — they detect bugs from results and
/// estimates alone, as the real methods must.
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    fired: BTreeSet<BugId>,
}

impl FaultLog {
    /// Empty log.
    pub fn new() -> FaultLog {
        FaultLog::default()
    }

    /// Records a firing.
    pub fn record(&mut self, id: BugId) {
        self.fired.insert(id);
    }

    /// Faults that fired, in id order.
    pub fn fired(&self) -> impl Iterator<Item = BugId> + '_ {
        self.fired.iter().copied()
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.fired.clear();
    }

    /// Whether anything fired.
    pub fn is_empty(&self) -> bool {
        self.fired.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_distribution_matches_the_paper() {
        // 7 MySQL (6 QPG + 1 CERT), 1 PostgreSQL (CERT), 9 TiDB (7 QPG + 2 CERT).
        let mysql: Vec<_> = BugId::ALL
            .iter()
            .filter(|b| b.info().profile == EngineProfile::MySql)
            .collect();
        assert_eq!(mysql.len(), 7);
        assert_eq!(
            mysql
                .iter()
                .filter(|b| b.info().oracle == Oracle::Cert)
                .count(),
            1
        );

        let pg: Vec<_> = BugId::ALL
            .iter()
            .filter(|b| b.info().profile == EngineProfile::Postgres)
            .collect();
        assert_eq!(pg.len(), 1);
        assert_eq!(pg[0].info().oracle, Oracle::Cert);
        assert_eq!(pg[0].info().status, BugStatus::Pending);

        let tidb: Vec<_> = BugId::ALL
            .iter()
            .filter(|b| b.info().profile == EngineProfile::TiDb)
            .collect();
        assert_eq!(tidb.len(), 9);
        assert_eq!(
            tidb.iter()
                .filter(|b| b.info().oracle == Oracle::Cert)
                .count(),
            2
        );

        // "Developers confirmed 16 of the 17 bugs and fixed two bugs."
        let fixed = BugId::ALL
            .iter()
            .filter(|b| b.info().status == BugStatus::Fixed)
            .count();
        assert_eq!(fixed, 2);
        let pending = BugId::ALL
            .iter()
            .filter(|b| b.info().status == BugStatus::Pending)
            .count();
        assert_eq!(pending, 1);

        // "11 of 17 bugs are Critical, Serious, or Major."
        let high = BugId::ALL
            .iter()
            .filter(|b| {
                matches!(
                    b.info().severity,
                    Severity::Critical | Severity::Serious | Severity::Major
                )
            })
            .count();
        assert_eq!(high, 11);
    }

    #[test]
    fn fault_set_operations() {
        let mut set = FaultSet::none();
        assert!(set.is_empty());
        set.arm(BugId::Mysql113302);
        assert!(set.is_armed(BugId::Mysql113302));
        assert!(!set.is_armed(BugId::Tidb49107));
        set.disarm(BugId::Mysql113302);
        assert!(set.is_empty());

        let mysql_all = FaultSet::all_for(EngineProfile::MySql);
        assert_eq!(mysql_all.len(), 7);
        assert_eq!(FaultSet::all_for(EngineProfile::Sqlite).len(), 0);
    }

    #[test]
    fn fault_log_dedups() {
        let mut log = FaultLog::new();
        assert!(log.is_empty());
        log.record(BugId::Tidb49107);
        log.record(BugId::Tidb49107);
        assert_eq!(log.fired().count(), 1);
        log.clear();
        assert!(log.is_empty());
    }
}
