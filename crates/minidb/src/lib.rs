//! # minidb — the relational engine substrate
//!
//! The paper evaluates UPlan against real installations of MySQL, PostgreSQL,
//! TiDB and SQLite. What those systems contribute to the evaluation is
//! precisely three observables:
//!
//! 1. **serialized query plans** (operator trees with estimates),
//! 2. **query results** (consumed by the TLP correctness oracle), and
//! 3. **cardinality estimates vs. actuals** (consumed by CERT).
//!
//! `minidb` reproduces those observables with an in-memory relational engine:
//! a SQL subset ([`sql`]), a catalog and row store ([`schema`], [`storage`]),
//! per-column statistics with equi-depth histograms ([`stats`]), a cost-based
//! physical planner with per-DBMS **engine profiles** ([`planner`],
//! [`profile`]) and a volcano-style executor that records per-operator
//! actual rows and times ([`exec`]).
//!
//! [`faults`] carries the injected bug catalog that stands in for the 17
//! previously-unknown bugs of paper Table V: each fault is gated on a
//! specific plan feature, so a testing method only observes it if its
//! generated queries exercise that feature — which is exactly the property
//! Query Plan Guidance exploits.
//!
//! ```
//! use minidb::{Database, profile::EngineProfile};
//!
//! let mut db = Database::new(EngineProfile::Postgres);
//! db.execute("CREATE TABLE t0 (c0 INT)").unwrap();
//! db.execute("INSERT INTO t0 VALUES (1), (2), (3)").unwrap();
//! let result = db.execute("SELECT c0 FROM t0 WHERE c0 < 3").unwrap();
//! assert_eq!(result.rows.len(), 2);
//! let plan = db.explain("SELECT c0 FROM t0 WHERE c0 < 3").unwrap();
//! assert_eq!(plan.root.op.name(), "Projection");
//! assert!(plan.root.children[0].op.name().contains("Scan"));
//! ```

pub mod database;
pub mod datum;
pub mod exec;
pub mod expr;
pub mod faults;
pub mod logical;
pub mod physical;
pub mod planner;
pub mod profile;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod storage;

pub use database::{Database, QueryResult};
pub use datum::{DataType, Datum};
pub use physical::{ExplainedPlan, PhysNode};

/// Engine error type.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// SQL lexing/parsing failure.
    Parse(String),
    /// Name resolution / typing failure.
    Binding(String),
    /// Catalog conflicts (duplicate table, unknown index, ...).
    Catalog(String),
    /// Runtime evaluation failure.
    Execution(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Binding(m) => write!(f, "binding error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, Error>;
