//! Logical plans and the binder (name resolution, aggregate extraction,
//! scalar-subquery registration).

use std::collections::HashMap;

use crate::datum::Datum;
use crate::expr::{AggFunc, BoundExpr, Func};
use crate::schema::Catalog;
use crate::sql::ast::{Expr, JoinKind, Query, Select, SelectItem, SetExpr, SetOpKind, TableRef};
use crate::{Error, Result};

/// Output-column metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColMeta {
    /// Table alias qualifying the column, if any.
    pub qualifier: Option<String>,
    /// Column (or projection alias) name.
    pub name: String,
}

impl ColMeta {
    /// Qualified display name (`t0.c0`).
    pub fn display(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A logical plan node with its output schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Logical {
    /// The operator.
    pub node: LNode,
    /// Output columns.
    pub schema: Vec<ColMeta>,
}

/// One aggregate computation of an [`LNode::Aggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument; `None` for `COUNT(*)`.
    pub arg: Option<BoundExpr>,
    /// `DISTINCT` inside the aggregate is unsupported; kept for clarity.
    pub display: String,
}

/// Logical operators.
#[derive(Debug, Clone, PartialEq)]
pub enum LNode {
    /// Base-table scan.
    Scan {
        /// Catalog table name.
        table: String,
        /// Binding alias.
        alias: String,
    },
    /// Row filter.
    Filter {
        /// Input.
        input: Box<Logical>,
        /// Predicate over the input schema.
        predicate: BoundExpr,
    },
    /// Projection.
    Project {
        /// Input.
        input: Box<Logical>,
        /// Output expressions over the input schema.
        exprs: Vec<BoundExpr>,
    },
    /// Join of two inputs; the condition ranges over the concatenated
    /// schemas.
    Join {
        /// Left input.
        left: Box<Logical>,
        /// Right input.
        right: Box<Logical>,
        /// Join kind.
        kind: JoinKind,
        /// Condition (`None` = cross).
        on: Option<BoundExpr>,
    },
    /// Grouped aggregation; output schema = group columns then aggregates.
    Aggregate {
        /// Input.
        input: Box<Logical>,
        /// Group-by expressions over the input schema.
        group_by: Vec<BoundExpr>,
        /// Aggregates over the input schema.
        aggs: Vec<AggExpr>,
        /// Post-grouping filter over the *output* schema.
        having: Option<BoundExpr>,
        /// TiDB-style shared-subplan flag: the statement's subquery slots
        /// are computed from this aggregation's own input (see planner).
        shared_subplan: bool,
    },
    /// Sort.
    Sort {
        /// Input.
        input: Box<Logical>,
        /// `(key, descending)` pairs over the input schema.
        keys: Vec<(BoundExpr, bool)>,
    },
    /// Limit/offset.
    Limit {
        /// Input.
        input: Box<Logical>,
        /// Max rows.
        limit: Option<u64>,
        /// Skipped rows.
        offset: u64,
    },
    /// Duplicate elimination over whole rows.
    Distinct {
        /// Input.
        input: Box<Logical>,
    },
    /// Set operation.
    SetOp {
        /// Which operation.
        op: SetOpKind,
        /// Bag semantics.
        all: bool,
        /// Left input.
        left: Box<Logical>,
        /// Right input.
        right: Box<Logical>,
    },
    /// One empty row (for `SELECT 1`).
    Empty,
}

/// A bound statement ready for physical planning.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundQuery {
    /// The main plan.
    pub plan: Logical,
    /// Uncorrelated scalar subqueries, indexed by slot.
    pub subqueries: Vec<Logical>,
    /// `true` when subquery slots were deduplicated against the main block
    /// (TiDB shared-aggregation optimization; see paper Listing 4).
    pub shared_subquery: bool,
}

/// The binder.
pub struct Binder<'a> {
    catalog: &'a Catalog,
    /// Deduplicate textually identical scalar subqueries into one slot.
    dedup_subqueries: bool,
    subqueries: Vec<Logical>,
    subquery_slots: HashMap<String, usize>,
    subquery_sources: Vec<String>,
}

impl<'a> Binder<'a> {
    /// A binder over the catalog. `dedup_subqueries` enables the TiDB-style
    /// sharing of identical scalar subqueries.
    pub fn new(catalog: &'a Catalog, dedup_subqueries: bool) -> Self {
        Binder {
            catalog,
            dedup_subqueries,
            subqueries: Vec::new(),
            subquery_slots: HashMap::new(),
            subquery_sources: Vec::new(),
        }
    }

    /// Binds a query to a logical plan.
    pub fn bind_query(mut self, query: &Query) -> Result<BoundQuery> {
        let plan = self.bind_query_inner(query)?;
        // Shared-subquery detection: with dedup on, if some subquery's FROM
        // matches the outer FROM (same tables and filter), mark the main
        // aggregate to compute it in-pass (paper Listing 4's 3-scan plan).
        let shared = self.dedup_subqueries && !self.subqueries.is_empty();
        Ok(BoundQuery {
            plan,
            subqueries: self.subqueries,
            shared_subquery: shared,
        })
    }

    fn bind_query_inner(&mut self, query: &Query) -> Result<Logical> {
        let mut plan = self.bind_set_expr(&query.body)?;
        if !query.order_by.is_empty() {
            let keys = query
                .order_by
                .iter()
                .map(|(e, desc)| Ok((self.bind_output_expr(e, &plan)?, *desc)))
                .collect::<Result<Vec<_>>>()?;
            let schema = plan.schema.clone();
            plan = Logical {
                node: LNode::Sort {
                    input: Box::new(plan),
                    keys,
                },
                schema,
            };
        }
        if query.limit.is_some() || query.offset.is_some() {
            let schema = plan.schema.clone();
            plan = Logical {
                node: LNode::Limit {
                    input: Box::new(plan),
                    limit: query.limit,
                    offset: query.offset.unwrap_or(0),
                },
                schema,
            };
        }
        Ok(plan)
    }

    /// Binds an ORDER BY key against a plan's output: by alias, by column
    /// name, by 1-based position, or (fallback) any expression over the
    /// output columns.
    fn bind_output_expr(&mut self, e: &Expr, plan: &Logical) -> Result<BoundExpr> {
        if let Expr::Literal(Datum::Int(position)) = e {
            let idx = (*position as usize)
                .checked_sub(1)
                .filter(|&i| i < plan.schema.len())
                .ok_or_else(|| {
                    Error::Binding(format!("ORDER BY position {position} out of range"))
                })?;
            return Ok(BoundExpr::Column {
                index: idx,
                name: plan.schema[idx].display(),
            });
        }
        let scope = Scope::from_schema(&plan.schema);
        match self.bind_expr(e, &scope) {
            Ok(bound) => Ok(bound),
            // `ORDER BY t0.c0` after a projection that renamed the column
            // to plain `c0`: retry unqualified, as real engines do.
            Err(err) => {
                if let Expr::Column {
                    qualifier: Some(_),
                    name,
                } = e
                {
                    let retry = Expr::Column {
                        qualifier: None,
                        name: name.clone(),
                    };
                    if let Ok(bound) = self.bind_expr(&retry, &scope) {
                        return Ok(bound);
                    }
                }
                Err(err)
            }
        }
    }

    fn bind_set_expr(&mut self, body: &SetExpr) -> Result<Logical> {
        match body {
            SetExpr::Select(select) => self.bind_select(select),
            SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let l = self.bind_set_expr(left)?;
                let r = self.bind_set_expr(right)?;
                if l.schema.len() != r.schema.len() {
                    return Err(Error::Binding(format!(
                        "{} inputs have {} vs {} columns",
                        op.sql(),
                        l.schema.len(),
                        r.schema.len()
                    )));
                }
                let schema = l.schema.clone();
                Ok(Logical {
                    node: LNode::SetOp {
                        op: *op,
                        all: *all,
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                    schema,
                })
            }
        }
    }

    fn bind_select(&mut self, select: &Select) -> Result<Logical> {
        // FROM
        let mut plan = match &select.from {
            Some(table_ref) => self.bind_table_ref(table_ref)?,
            None => Logical {
                node: LNode::Empty,
                schema: vec![],
            },
        };
        let scope = Scope::from_schema(&plan.schema);

        // WHERE
        if let Some(filter) = &select.filter {
            if filter.contains_aggregate() {
                return Err(Error::Binding("aggregates are not allowed in WHERE".into()));
            }
            let predicate = self.bind_expr(filter, &scope)?;
            let schema = plan.schema.clone();
            plan = Logical {
                node: LNode::Filter {
                    input: Box::new(plan),
                    predicate,
                },
                schema,
            };
        }

        let is_aggregate = !select.group_by.is_empty()
            || select.projection.iter().any(
                |item| matches!(item, SelectItem::Expr { expr, .. } if expr.contains_aggregate()),
            )
            || select.having.is_some();

        if is_aggregate {
            self.bind_aggregate_select(select, plan, &scope)
        } else {
            // Plain projection.
            let (exprs, names) = self.bind_projection(&select.projection, &scope)?;
            let schema: Vec<ColMeta> = names
                .into_iter()
                .map(|name| ColMeta {
                    qualifier: None,
                    name,
                })
                .collect();
            let mut out = Logical {
                node: LNode::Project {
                    input: Box::new(plan),
                    exprs,
                },
                schema,
            };
            if select.distinct {
                let schema = out.schema.clone();
                out = Logical {
                    node: LNode::Distinct {
                        input: Box::new(out),
                    },
                    schema,
                };
            }
            Ok(out)
        }
    }

    fn bind_projection(
        &mut self,
        projection: &[SelectItem],
        scope: &Scope,
    ) -> Result<(Vec<BoundExpr>, Vec<String>)> {
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for item in projection {
            match item {
                SelectItem::Wildcard => {
                    for (i, meta) in scope.columns.iter().enumerate() {
                        exprs.push(BoundExpr::Column {
                            index: i,
                            name: meta.display(),
                        });
                        names.push(meta.name.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_expr(expr, scope)?;
                    names.push(alias.clone().unwrap_or_else(|| display_name(expr, &bound)));
                    exprs.push(bound);
                }
            }
        }
        if exprs.is_empty() {
            return Err(Error::Binding("empty projection".into()));
        }
        Ok((exprs, names))
    }

    fn bind_aggregate_select(
        &mut self,
        select: &Select,
        input: Logical,
        scope: &Scope,
    ) -> Result<Logical> {
        // Bind group-by expressions over the input scope.
        let group_bound: Vec<BoundExpr> = select
            .group_by
            .iter()
            .map(|e| self.bind_expr(e, scope))
            .collect::<Result<_>>()?;

        // Collect aggregate calls from projection and HAVING.
        let mut agg_registry: Vec<(AggFunc, Option<Expr>, String)> = Vec::new();
        for item in &select.projection {
            if let SelectItem::Expr { expr, .. } = item {
                collect_aggregates(expr, &mut agg_registry)?;
            }
        }
        if let Some(having) = &select.having {
            collect_aggregates(having, &mut agg_registry)?;
        }
        if agg_registry.is_empty() && select.group_by.is_empty() {
            return Err(Error::Binding(
                "HAVING without aggregates or GROUP BY".into(),
            ));
        }

        let aggs: Vec<AggExpr> = agg_registry
            .iter()
            .map(|(func, arg, display)| {
                Ok(AggExpr {
                    func: *func,
                    arg: arg.as_ref().map(|a| self.bind_expr(a, scope)).transpose()?,
                    display: display.clone(),
                })
            })
            .collect::<Result<_>>()?;

        // Aggregate output scope: group columns then aggregates.
        let mut agg_schema: Vec<ColMeta> = Vec::new();
        for (i, g) in select.group_by.iter().enumerate() {
            agg_schema.push(ColMeta {
                qualifier: None,
                name: match g {
                    Expr::Column { name, .. } => name.clone(),
                    _ => format!("group_{i}"),
                },
            });
        }
        for agg in &aggs {
            agg_schema.push(ColMeta {
                qualifier: None,
                name: agg.display.clone(),
            });
        }

        // HAVING over the aggregate output.
        let having = select
            .having
            .as_ref()
            .map(|h| self.bind_post_agg(h, &select.group_by, &agg_registry, scope))
            .transpose()?;

        let plan = Logical {
            node: LNode::Aggregate {
                input: Box::new(input),
                group_by: group_bound,
                aggs,
                having,
                shared_subplan: false,
            },
            schema: agg_schema.clone(),
        };

        // Final projection over the aggregate output.
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for item in &select.projection {
            match item {
                SelectItem::Wildcard => {
                    return Err(Error::Binding("SELECT * is invalid with GROUP BY".into()))
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_post_agg(expr, &select.group_by, &agg_registry, scope)?;
                    names.push(alias.clone().unwrap_or_else(|| display_name(expr, &bound)));
                    exprs.push(bound);
                }
            }
        }
        let schema: Vec<ColMeta> = names
            .into_iter()
            .map(|name| ColMeta {
                qualifier: None,
                name,
            })
            .collect();
        let mut out = Logical {
            node: LNode::Project {
                input: Box::new(plan),
                exprs,
            },
            schema,
        };
        if select.distinct {
            let schema = out.schema.clone();
            out = Logical {
                node: LNode::Distinct {
                    input: Box::new(out),
                },
                schema,
            };
        }
        Ok(out)
    }

    /// Binds an expression over the *output* of an Aggregate node: group-by
    /// expressions and aggregate calls become column references.
    // `base_scope` is threaded for future non-recursive uses (e.g. falling
    // back to pre-aggregation columns in error paths).
    #[allow(clippy::only_used_in_recursion)]
    fn bind_post_agg(
        &mut self,
        expr: &Expr,
        group_by: &[Expr],
        aggs: &[(AggFunc, Option<Expr>, String)],
        base_scope: &Scope,
    ) -> Result<BoundExpr> {
        // Textual match against a group-by expression.
        if let Some(idx) = group_by.iter().position(|g| g == expr) {
            let name = match expr {
                Expr::Column { name, .. } => name.clone(),
                _ => format!("group_{idx}"),
            };
            return Ok(BoundExpr::Column { index: idx, name });
        }
        // An aggregate call.
        if let Expr::Call {
            name,
            args,
            wildcard,
        } = expr
        {
            if let Some(func) = AggFunc::from_name(name) {
                let arg = if *wildcard {
                    None
                } else {
                    args.first().cloned()
                };
                let idx = aggs
                    .iter()
                    .position(|(f, a, _)| *f == func && *a == arg)
                    .ok_or_else(|| Error::Binding(format!("unregistered aggregate {name}")))?;
                return Ok(BoundExpr::Column {
                    index: group_by.len() + idx,
                    name: aggs[idx].2.clone(),
                });
            }
        }
        // Recurse structurally.
        match expr {
            Expr::Literal(d) => Ok(BoundExpr::Literal(d.clone())),
            Expr::Binary { op, left, right } => Ok(BoundExpr::Binary {
                op: *op,
                left: Box::new(self.bind_post_agg(left, group_by, aggs, base_scope)?),
                right: Box::new(self.bind_post_agg(right, group_by, aggs, base_scope)?),
            }),
            Expr::Not(e) => Ok(BoundExpr::Not(Box::new(
                self.bind_post_agg(e, group_by, aggs, base_scope)?,
            ))),
            Expr::Neg(e) => Ok(BoundExpr::Neg(Box::new(
                self.bind_post_agg(e, group_by, aggs, base_scope)?,
            ))),
            Expr::IsNull(e) => Ok(BoundExpr::IsNull(Box::new(
                self.bind_post_agg(e, group_by, aggs, base_scope)?,
            ))),
            Expr::IsNotNull(e) => Ok(BoundExpr::IsNotNull(Box::new(
                self.bind_post_agg(e, group_by, aggs, base_scope)?,
            ))),
            Expr::InList { expr, list } => Ok(BoundExpr::InList {
                expr: Box::new(self.bind_post_agg(expr, group_by, aggs, base_scope)?),
                list: list
                    .iter()
                    .map(|e| self.bind_post_agg(e, group_by, aggs, base_scope))
                    .collect::<Result<_>>()?,
            }),
            Expr::Between { expr, low, high } => Ok(BoundExpr::Between {
                expr: Box::new(self.bind_post_agg(expr, group_by, aggs, base_scope)?),
                low: Box::new(self.bind_post_agg(low, group_by, aggs, base_scope)?),
                high: Box::new(self.bind_post_agg(high, group_by, aggs, base_scope)?),
            }),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Ok(BoundExpr::Like {
                expr: Box::new(self.bind_post_agg(expr, group_by, aggs, base_scope)?),
                pattern: pattern.clone(),
                negated: *negated,
            }),
            Expr::Call { name, args, .. } => {
                let func = Func::from_name(name)
                    .ok_or_else(|| Error::Binding(format!("unknown function {name:?}")))?;
                Ok(BoundExpr::Call {
                    func,
                    args: args
                        .iter()
                        .map(|a| self.bind_post_agg(a, group_by, aggs, base_scope))
                        .collect::<Result<_>>()?,
                })
            }
            Expr::Subquery(q) => self.bind_subquery(q),
            Expr::Column { .. } => Err(Error::Binding(format!(
                "column {expr:?} must appear in GROUP BY or inside an aggregate"
            ))),
        }
    }

    fn bind_table_ref(&mut self, table_ref: &TableRef) -> Result<Logical> {
        match table_ref {
            TableRef::Table { name, alias } => {
                let schema = self
                    .catalog
                    .table(name)
                    .ok_or_else(|| Error::Binding(format!("unknown table {name:?}")))?;
                let alias = alias.clone().unwrap_or_else(|| name.clone());
                let cols: Vec<ColMeta> = schema
                    .columns
                    .iter()
                    .map(|c| ColMeta {
                        qualifier: Some(alias.clone()),
                        name: c.name.clone(),
                    })
                    .collect();
                Ok(Logical {
                    node: LNode::Scan {
                        table: schema.name.clone(),
                        alias,
                    },
                    schema: cols,
                })
            }
            TableRef::Join {
                left,
                right,
                on,
                kind,
            } => {
                let l = self.bind_table_ref(left)?;
                let r = self.bind_table_ref(right)?;
                let mut schema = l.schema.clone();
                schema.extend(r.schema.clone());
                let scope = Scope::from_schema(&schema);
                let on_bound = on.as_ref().map(|e| self.bind_expr(e, &scope)).transpose()?;
                Ok(Logical {
                    node: LNode::Join {
                        left: Box::new(l),
                        right: Box::new(r),
                        kind: *kind,
                        on: on_bound,
                    },
                    schema,
                })
            }
            TableRef::Subquery { query, alias } => {
                let inner = self.bind_query_inner(query)?;
                let schema: Vec<ColMeta> = inner
                    .schema
                    .iter()
                    .map(|c| ColMeta {
                        qualifier: Some(alias.clone()),
                        name: c.name.clone(),
                    })
                    .collect();
                Ok(Logical {
                    node: inner.node,
                    schema,
                })
            }
        }
    }

    fn bind_subquery(&mut self, query: &Query) -> Result<BoundExpr> {
        let key = format!("{query:?}");
        if self.dedup_subqueries {
            if let Some(&slot) = self.subquery_slots.get(&key) {
                return Ok(BoundExpr::Subquery { slot });
            }
        }
        let plan = {
            // Subqueries get their own binder so their subqueries nest.
            let sub = Binder::new(self.catalog, self.dedup_subqueries);
            let bound = sub.bind_query(query)?;
            if !bound.subqueries.is_empty() {
                return Err(Error::Binding(
                    "nested scalar subqueries are unsupported".into(),
                ));
            }
            bound.plan
        };
        if plan.schema.len() != 1 {
            return Err(Error::Binding(format!(
                "scalar subquery must return one column, got {}",
                plan.schema.len()
            )));
        }
        let slot = self.subqueries.len();
        self.subqueries.push(plan);
        self.subquery_slots.insert(key.clone(), slot);
        self.subquery_sources.push(key);
        Ok(BoundExpr::Subquery { slot })
    }

    /// Binds a scalar expression against a scope.
    pub fn bind_expr(&mut self, expr: &Expr, scope: &Scope) -> Result<BoundExpr> {
        Ok(match expr {
            Expr::Column { qualifier, name } => {
                let (index, meta) = scope.resolve(qualifier.as_deref(), name)?;
                BoundExpr::Column {
                    index,
                    name: meta.display(),
                }
            }
            Expr::Literal(d) => BoundExpr::Literal(d.clone()),
            Expr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(self.bind_expr(left, scope)?),
                right: Box::new(self.bind_expr(right, scope)?),
            },
            Expr::Not(e) => BoundExpr::Not(Box::new(self.bind_expr(e, scope)?)),
            Expr::Neg(e) => BoundExpr::Neg(Box::new(self.bind_expr(e, scope)?)),
            Expr::IsNull(e) => BoundExpr::IsNull(Box::new(self.bind_expr(e, scope)?)),
            Expr::IsNotNull(e) => BoundExpr::IsNotNull(Box::new(self.bind_expr(e, scope)?)),
            Expr::InList { expr, list } => BoundExpr::InList {
                expr: Box::new(self.bind_expr(expr, scope)?),
                list: list
                    .iter()
                    .map(|e| self.bind_expr(e, scope))
                    .collect::<Result<_>>()?,
            },
            Expr::Between { expr, low, high } => BoundExpr::Between {
                expr: Box::new(self.bind_expr(expr, scope)?),
                low: Box::new(self.bind_expr(low, scope)?),
                high: Box::new(self.bind_expr(high, scope)?),
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => BoundExpr::Like {
                expr: Box::new(self.bind_expr(expr, scope)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::Call {
                name,
                args,
                wildcard,
            } => {
                if AggFunc::from_name(name).is_some() {
                    return Err(Error::Binding(format!(
                        "aggregate {name} is not allowed in this context"
                    )));
                }
                if *wildcard {
                    return Err(Error::Binding(format!("{name}(*) is not a function call")));
                }
                let func = Func::from_name(name)
                    .ok_or_else(|| Error::Binding(format!("unknown function {name:?}")))?;
                BoundExpr::Call {
                    func,
                    args: args
                        .iter()
                        .map(|a| self.bind_expr(a, scope))
                        .collect::<Result<_>>()?,
                }
            }
            Expr::Subquery(q) => self.bind_subquery(q)?,
        })
    }
}

/// A name-resolution scope.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Visible columns in row order.
    pub columns: Vec<ColMeta>,
}

impl Scope {
    /// Scope over a schema.
    pub fn from_schema(schema: &[ColMeta]) -> Scope {
        Scope {
            columns: schema.to_vec(),
        }
    }

    /// Resolves `[qualifier.]name` to a column index.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<(usize, &ColMeta)> {
        let mut matches = self.columns.iter().enumerate().filter(|(_, c)| {
            c.name == name
                && match qualifier {
                    Some(q) => c.qualifier.as_deref() == Some(q),
                    None => true,
                }
        });
        let first = matches.next();
        let second = matches.next();
        match (first, second) {
            (Some((i, meta)), None) => Ok((i, meta)),
            (Some(_), Some(_)) => Err(Error::Binding(format!("ambiguous column {name:?}"))),
            (None, _) => Err(Error::Binding(match qualifier {
                Some(q) => format!("unknown column {q}.{name}"),
                None => format!("unknown column {name:?}"),
            })),
        }
    }
}

/// A display name for an unaliased projection expression.
fn display_name(expr: &Expr, bound: &BoundExpr) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Call { name, .. } => name.to_ascii_lowercase(),
        _ => bound.to_string(),
    }
}

/// Registers every aggregate call in `expr` (deduplicated).
fn collect_aggregates(
    expr: &Expr,
    registry: &mut Vec<(AggFunc, Option<Expr>, String)>,
) -> Result<()> {
    match expr {
        Expr::Call {
            name,
            args,
            wildcard,
        } => {
            if let Some(func) = AggFunc::from_name(name) {
                if args.iter().any(Expr::contains_aggregate) {
                    return Err(Error::Binding("nested aggregates are invalid".into()));
                }
                let arg = if *wildcard {
                    None
                } else {
                    args.first().cloned()
                };
                if !registry.iter().any(|(f, a, _)| *f == func && *a == arg) {
                    let display = match (&arg, wildcard) {
                        (_, true) | (None, _) => format!("{}(*)", func.sql().to_lowercase()),
                        (Some(a), _) => format!("{}({:?})", func.sql().to_lowercase(), a)
                            .chars()
                            .take(48)
                            .collect(),
                    };
                    let display = keywordish(&display, registry.len());
                    registry.push((func, arg, display));
                }
                return Ok(());
            }
            for a in args {
                collect_aggregates(a, registry)?;
            }
            Ok(())
        }
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, registry)?;
            collect_aggregates(right, registry)
        }
        Expr::Not(e) | Expr::Neg(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => {
            collect_aggregates(e, registry)
        }
        Expr::InList { expr, list } => {
            collect_aggregates(expr, registry)?;
            for e in list {
                collect_aggregates(e, registry)?;
            }
            Ok(())
        }
        Expr::Between { expr, low, high } => {
            collect_aggregates(expr, registry)?;
            collect_aggregates(low, registry)?;
            collect_aggregates(high, registry)
        }
        Expr::Like { expr, .. } => collect_aggregates(expr, registry),
        // Subqueries are bound separately; their aggregates are their own.
        Expr::Column { .. } | Expr::Literal(_) | Expr::Subquery(_) => Ok(()),
    }
}

/// Agg output column name: short, unique, readable.
fn keywordish(display: &str, ordinal: usize) -> String {
    let head: String = display
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if head.is_empty() {
        format!("agg_{ordinal}")
    } else {
        format!("{head}_{ordinal}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::DataType;
    use crate::schema::{Column, TableSchema};
    use crate::sql::parse_statement;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (table, cols) in [
            ("t0", vec!["c0", "c1"]),
            ("t1", vec!["c0"]),
            ("t2", vec!["c0"]),
        ] {
            c.create_table(TableSchema {
                name: table.into(),
                columns: cols
                    .into_iter()
                    .map(|n| Column {
                        name: n.into(),
                        data_type: DataType::Int,
                        primary_key: false,
                    })
                    .collect(),
            })
            .unwrap();
        }
        c
    }

    fn bind(sql: &str) -> Result<BoundQuery> {
        let cat = catalog();
        let crate::sql::ast::Statement::Query(q) = parse_statement(sql)? else {
            panic!("not a query");
        };
        Binder::new(&cat, false).bind_query(&q)
    }

    #[test]
    fn binds_simple_select() {
        let bound = bind("SELECT c0 FROM t0 WHERE c0 < 5").unwrap();
        let LNode::Project { input, exprs } = &bound.plan.node else {
            panic!()
        };
        assert_eq!(exprs.len(), 1);
        assert!(matches!(input.node, LNode::Filter { .. }));
        assert_eq!(bound.plan.schema[0].name, "c0");
    }

    #[test]
    fn wildcard_expands_in_order() {
        let bound = bind("SELECT * FROM t0").unwrap();
        assert_eq!(bound.plan.schema.len(), 2);
        assert_eq!(bound.plan.schema[0].name, "c0");
        assert_eq!(bound.plan.schema[1].name, "c1");
    }

    #[test]
    fn join_concatenates_schemas() {
        let bound = bind("SELECT t0.c0, t1.c0 FROM t0 JOIN t1 ON t0.c0 = t1.c0").unwrap();
        let LNode::Project { input, .. } = &bound.plan.node else {
            panic!()
        };
        let LNode::Join { on, .. } = &input.node else {
            panic!()
        };
        let on = on.as_ref().unwrap();
        assert_eq!(on.to_string(), "(t0.c0 = t1.c0)");
    }

    #[test]
    fn ambiguity_and_unknowns_are_errors() {
        assert!(bind("SELECT c0 FROM t0 JOIN t1 ON t0.c0 = t1.c0").is_err());
        assert!(bind("SELECT zzz FROM t0").is_err());
        assert!(bind("SELECT t9.c0 FROM t0").is_err());
        assert!(bind("SELECT c0 FROM missing").is_err());
    }

    #[test]
    fn aliases_rename_qualifiers() {
        let bound = bind("SELECT a.c0 FROM t0 AS a").unwrap();
        assert!(bound.plan.schema[0].name == "c0");
        assert!(
            bind("SELECT t0.c0 FROM t0 AS a").is_err(),
            "old name hidden"
        );
    }

    #[test]
    fn aggregate_binding() {
        let bound = bind("SELECT c0, SUM(c1) FROM t0 GROUP BY c0 HAVING SUM(c1) > 5").unwrap();
        let LNode::Project { input, .. } = &bound.plan.node else {
            panic!()
        };
        let LNode::Aggregate {
            group_by,
            aggs,
            having,
            ..
        } = &input.node
        else {
            panic!()
        };
        assert_eq!(group_by.len(), 1);
        assert_eq!(
            aggs.len(),
            1,
            "SUM(c1) deduplicated between SELECT and HAVING"
        );
        assert!(having.is_some());
    }

    #[test]
    fn ungrouped_column_is_rejected() {
        assert!(bind("SELECT c1 FROM t0 GROUP BY c0").is_err());
        assert!(bind("SELECT c0, COUNT(*) FROM t0").is_err());
    }

    #[test]
    fn count_star_without_group() {
        let bound = bind("SELECT COUNT(*) FROM t0").unwrap();
        let LNode::Project { input, .. } = &bound.plan.node else {
            panic!()
        };
        assert!(matches!(input.node, LNode::Aggregate { .. }));
    }

    #[test]
    fn scalar_subqueries_get_slots() {
        let bound = bind("SELECT c0 FROM t0 WHERE c1 > (SELECT COUNT(*) FROM t1)").unwrap();
        assert_eq!(bound.subqueries.len(), 1);
        assert!(!bound.shared_subquery);
    }

    #[test]
    fn subquery_dedup_is_profile_driven() {
        let cat = catalog();
        let sql = "SELECT c0, SUM(c1) FROM t0 GROUP BY c0 \
                   HAVING SUM(c1) > (SELECT COUNT(*) FROM t1) AND SUM(c1) < (SELECT COUNT(*) FROM t1)";
        let crate::sql::ast::Statement::Query(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let plain = Binder::new(&cat, false).bind_query(&q).unwrap();
        assert_eq!(
            plain.subqueries.len(),
            2,
            "each occurrence planned separately"
        );
        let dedup = Binder::new(&cat, true).bind_query(&q).unwrap();
        assert_eq!(
            dedup.subqueries.len(),
            1,
            "identical subqueries share a slot"
        );
        assert!(dedup.shared_subquery);
    }

    #[test]
    fn multi_column_scalar_subquery_rejected() {
        assert!(bind("SELECT c0 FROM t0 WHERE c1 > (SELECT c0, c0 FROM t1)").is_err());
    }

    #[test]
    fn set_ops_require_same_arity() {
        assert!(bind("SELECT c0 FROM t0 UNION SELECT c0 FROM t2").is_ok());
        assert!(bind("SELECT c0, c1 FROM t0 UNION SELECT c0 FROM t2").is_err());
    }

    #[test]
    fn order_by_position_and_alias() {
        let bound = bind("SELECT c0 AS k FROM t0 ORDER BY 1 DESC").unwrap();
        let LNode::Sort { keys, .. } = &bound.plan.node else {
            panic!()
        };
        assert!(keys[0].1);
        assert!(bind("SELECT c0 AS k FROM t0 ORDER BY k").is_ok());
        assert!(bind("SELECT c0 FROM t0 ORDER BY 99").is_err());
    }

    #[test]
    fn derived_tables_re_qualify() {
        let bound = bind("SELECT s.c0 FROM (SELECT c0 FROM t0) AS s").unwrap();
        assert_eq!(bound.plan.schema[0].name, "c0");
    }

    #[test]
    fn where_aggregates_rejected() {
        assert!(bind("SELECT c0 FROM t0 WHERE SUM(c1) > 5").is_err());
    }

    #[test]
    fn select_without_from() {
        let bound = bind("SELECT 1 + 1").unwrap();
        let LNode::Project { input, .. } = &bound.plan.node else {
            panic!()
        };
        assert!(matches!(input.node, LNode::Empty));
    }
}
