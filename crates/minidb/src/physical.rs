//! Physical plans: executable operator trees with estimates and actuals.
//!
//! The physical representation is engine-generic; the per-DBMS *rendering*
//! of these operators (PostgreSQL's `Hash` build nodes, TiDB's
//! `TableReader`/`IndexLookUp` wrappers, SQLite's `SEARCH ... USING INDEX`
//! lines) lives in the `dialects` crate, which serializes an
//! [`ExplainedPlan`] the way the corresponding real system would.

use crate::expr::{AggFunc, BoundExpr};

use crate::profile::EngineProfile;
use crate::sql::ast::{JoinKind, SetOpKind};

/// Aggregation strategies (display-relevant; execution is hash-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggStrategy {
    /// Hash aggregation (PG `HashAggregate`, TiDB `HashAgg`).
    Hash,
    /// Aggregation over sorted input (PG `GroupAggregate`, TiDB `StreamAgg`).
    Sorted,
    /// Ungrouped single-row aggregation (PG `Aggregate`).
    Plain,
}

/// One aggregate computation.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysAgg {
    /// The function.
    pub func: AggFunc,
    /// Argument over the input row; `None` for `COUNT(*)`.
    pub arg: Option<BoundExpr>,
    /// Output column label.
    pub label: String,
}

/// How an index access selects rows.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexAccess {
    /// Equality on the leading key column.
    Eq(BoundExpr),
    /// Range on the leading key column `(low, high)`; both optional.
    Range {
        /// Inclusive lower bound.
        low: Option<BoundExpr>,
        /// Inclusive upper bound.
        high: Option<BoundExpr>,
    },
    /// Full index sweep (index-only scans without a condition).
    Full,
}

/// Physical operators.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysOp {
    /// Full table scan with an optional pushed-down filter.
    SeqScan {
        /// Catalog table.
        table: String,
        /// Binding alias.
        alias: String,
        /// Residual filter evaluated at the scan.
        filter: Option<BoundExpr>,
        /// PostgreSQL-style parallel scan (rendered under Gather).
        parallel: bool,
    },
    /// Index-driven scan (covers TiDB `IndexLookUp`, PG `Index Scan`,
    /// SQLite `SEARCH`).
    IndexScan {
        /// Catalog table.
        table: String,
        /// Binding alias.
        alias: String,
        /// Index name.
        index: String,
        /// Access condition.
        access: IndexAccess,
        /// Residual filter on fetched rows.
        filter: Option<BoundExpr>,
        /// `true` when only indexed columns are needed (index-only scan);
        /// row fetch is skipped in dialect rendering.
        index_only: bool,
        /// `true` when the index was fabricated at plan time (SQLite's
        /// automatic covering index).
        automatic: bool,
    },
    /// Standalone filter (TiDB `Selection`; also post-join residuals).
    Filter {
        /// Predicate over the child's output.
        predicate: BoundExpr,
    },
    /// Projection.
    Project {
        /// Output expressions over the child's output.
        exprs: Vec<BoundExpr>,
        /// Output labels.
        labels: Vec<String>,
    },
    /// Hash join; children are `[probe, build]`.
    HashJoin {
        /// Join kind (Inner/Left).
        kind: JoinKind,
        /// Equi-key pairs `(probe column, build column)`.
        keys: Vec<(usize, usize)>,
        /// Residual predicate over the concatenated row.
        residual: Option<BoundExpr>,
    },
    /// Nested-loop join; children are `[outer, inner]`.
    NestedLoopJoin {
        /// Join kind (Inner/Left/Cross).
        kind: JoinKind,
        /// Condition over the concatenated row.
        on: Option<BoundExpr>,
    },
    /// Sort-merge join on one equi-key pair; children `[left, right]`.
    MergeJoin {
        /// Join kind.
        kind: JoinKind,
        /// `(left column, right column)`.
        key: (usize, usize),
        /// Residual predicate.
        residual: Option<BoundExpr>,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Strategy for display.
        strategy: AggStrategy,
        /// Group-by expressions over the child's output.
        group_by: Vec<BoundExpr>,
        /// Aggregates.
        aggs: Vec<PhysAgg>,
        /// Post-grouping filter over `[group..., agg...]`.
        having: Option<BoundExpr>,
        /// TiDB shared-subplan evaluation (paper Listing 4): the statement's
        /// single subquery slot is computed from this node's input.
        shared_subplan: bool,
    },
    /// Full sort.
    Sort {
        /// `(key, descending)` pairs.
        keys: Vec<(BoundExpr, bool)>,
    },
    /// Bounded sort (TiDB `TopN`, SQL Server `Top`).
    TopN {
        /// Sort keys.
        keys: Vec<(BoundExpr, bool)>,
        /// Bound.
        limit: u64,
        /// Offset skipped after sorting.
        offset: u64,
    },
    /// Limit/offset without sorting.
    Limit {
        /// Max rows (`None` = offset only).
        limit: Option<u64>,
        /// Skipped rows.
        offset: u64,
    },
    /// Hash-based duplicate elimination.
    Distinct,
    /// Set operation over two children.
    SetOp {
        /// Which operation.
        op: SetOpKind,
        /// Bag semantics.
        all: bool,
    },
    /// Bag concatenation of all children (UNION ALL spine).
    Append,
    /// One empty row.
    Empty,
}

impl PhysOp {
    /// Generic operator name (dialect-independent; used in tests and the
    /// default textual rendering).
    pub fn name(&self) -> &'static str {
        match self {
            PhysOp::SeqScan { parallel: true, .. } => "Parallel Seq Scan",
            PhysOp::SeqScan { .. } => "Seq Scan",
            PhysOp::IndexScan {
                index_only: true, ..
            } => "Index Only Scan",
            PhysOp::IndexScan { .. } => "Index Scan",
            PhysOp::Filter { .. } => "Filter",
            PhysOp::Project { .. } => "Projection",
            PhysOp::HashJoin { .. } => "Hash Join",
            PhysOp::NestedLoopJoin { .. } => "Nested Loop",
            PhysOp::MergeJoin { .. } => "Merge Join",
            PhysOp::Aggregate { strategy, .. } => match strategy {
                AggStrategy::Hash => "HashAggregate",
                AggStrategy::Sorted => "GroupAggregate",
                AggStrategy::Plain => "Aggregate",
            },
            PhysOp::Sort { .. } => "Sort",
            PhysOp::TopN { .. } => "TopN",
            PhysOp::Limit { .. } => "Limit",
            PhysOp::Distinct => "Distinct",
            PhysOp::SetOp { op, .. } => match op {
                SetOpKind::Union => "Union",
                SetOpKind::Intersect => "Intersect",
                SetOpKind::Except => "Except",
            },
            PhysOp::Append => "Append",
            PhysOp::Empty => "Result",
        }
    }

    /// The table scanned by this operator, if it is a scan.
    pub fn scanned_table(&self) -> Option<&str> {
        match self {
            PhysOp::SeqScan { table, .. } | PhysOp::IndexScan { table, .. } => Some(table),
            _ => None,
        }
    }
}

/// Actual execution statistics, filled by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Actual {
    /// Rows produced.
    pub rows: u64,
    /// Wall-clock milliseconds spent in this operator's subtree.
    pub time_ms: f64,
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysNode {
    /// The operator.
    pub op: PhysOp,
    /// Inputs.
    pub children: Vec<PhysNode>,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated cost to first row.
    pub est_startup_cost: f64,
    /// Estimated total cost.
    pub est_total_cost: f64,
    /// Actuals after `EXPLAIN ANALYZE` / execution.
    pub actual: Option<Actual>,
}

impl PhysNode {
    /// A node with estimates to be filled by the planner.
    pub fn new(op: PhysOp, children: Vec<PhysNode>) -> PhysNode {
        PhysNode {
            op,
            children,
            est_rows: 1.0,
            est_startup_cost: 0.0,
            est_total_cost: 0.0,
            actual: None,
        }
    }

    /// Nodes in the subtree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(PhysNode::node_count)
            .sum::<usize>()
    }

    /// Pre-order traversal.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a PhysNode)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    /// Number of scan operators (Producer census for a plan).
    pub fn scan_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |node| {
            if node.op.scanned_table().is_some() {
                n += 1;
            }
        });
        n
    }
}

/// Shared sub-aggregate spec for the TiDB q11-style optimization: the
/// statement's scalar subquery aggregates the same input as the main
/// Aggregate, so it is computed in the same pass instead of via separate
/// scans (paper Listing 4's three-scan plan).
#[derive(Debug, Clone, PartialEq)]
pub struct SharedSubAgg {
    /// Aggregates over the shared input.
    pub aggs: Vec<PhysAgg>,
    /// Projection over the sub-aggregate outputs producing the scalar.
    pub project: BoundExpr,
    /// Subquery slot receiving the scalar.
    pub slot: usize,
}

/// A fully planned statement: the main tree, its scalar-subquery plans, and
/// plan-level metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainedPlan {
    /// The main operator tree.
    pub root: PhysNode,
    /// Scalar-subquery plans by slot; executed before the main tree.
    pub subplans: Vec<PhysNode>,
    /// Shared sub-aggregate evaluated inside the main Aggregate
    /// (mutually exclusive with `subplans`).
    pub shared_subagg: Option<SharedSubAgg>,
    /// The profile that planned this.
    pub profile: EngineProfile,
    /// Planning wall-clock time in milliseconds.
    pub planning_time_ms: f64,
    /// Execution wall-clock time (EXPLAIN ANALYZE only).
    pub execution_time_ms: Option<f64>,
    /// Output column labels.
    pub output: Vec<String>,
}

impl ExplainedPlan {
    /// Total operators including subplans.
    pub fn operator_count(&self) -> usize {
        self.root.node_count()
            + self
                .subplans
                .iter()
                .map(PhysNode::node_count)
                .sum::<usize>()
    }

    /// Estimated rows of the root (what CERT reads).
    pub fn estimated_rows(&self) -> f64 {
        self.root.est_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(table: &str) -> PhysNode {
        PhysNode::new(
            PhysOp::SeqScan {
                table: table.into(),
                alias: table.into(),
                filter: None,
                parallel: false,
            },
            vec![],
        )
    }

    #[test]
    fn names_and_counts() {
        let join = PhysNode::new(
            PhysOp::HashJoin {
                kind: JoinKind::Inner,
                keys: vec![(0, 0)],
                residual: None,
            },
            vec![scan("a"), scan("b")],
        );
        assert_eq!(join.op.name(), "Hash Join");
        assert_eq!(join.node_count(), 3);
        assert_eq!(join.scan_count(), 2);
        assert_eq!(scan("a").op.scanned_table(), Some("a"));
        let mut names = Vec::new();
        join.walk(&mut |node| names.push(node.op.name()));
        assert_eq!(names, ["Hash Join", "Seq Scan", "Seq Scan"]);
    }

    #[test]
    fn parallel_scan_renders_differently() {
        let mut node = scan("a");
        if let PhysOp::SeqScan { parallel, .. } = &mut node.op {
            *parallel = true;
        }
        assert_eq!(node.op.name(), "Parallel Seq Scan");
    }

    #[test]
    fn explained_plan_counts_subplans() {
        let plan = ExplainedPlan {
            root: scan("a"),
            subplans: vec![scan("b"), scan("c")],
            shared_subagg: None,
            profile: EngineProfile::Postgres,
            planning_time_ms: 0.1,
            execution_time_ms: None,
            output: vec!["c0".into()],
        };
        assert_eq!(plan.operator_count(), 3);
        assert_eq!(plan.estimated_rows(), 1.0);
    }
}
