//! The cost-based physical planner.
//!
//! Translates bound logical plans into [`PhysNode`] trees, making the
//! profile-specific choices the paper's study observed in real plans:
//! access paths (seq scan / index scan / index-only scan), join algorithms
//! (hash vs. index nested-loop vs. plain nested-loop with SQLite's automatic
//! indexes), PostgreSQL parallel scans, TiDB standalone `Selection`
//! operators, and TiDB's shared evaluation of scalar subqueries over the
//! same input (the paper's q11 three-scan plan, Listing 4).

use std::time::Instant;

use crate::expr::{BinOp, BoundExpr};
use crate::faults::{BugId, FaultSet};
use crate::logical::{BoundQuery, LNode, Logical};
use crate::physical::{
    AggStrategy, ExplainedPlan, IndexAccess, PhysAgg, PhysNode, PhysOp, SharedSubAgg,
};
use crate::profile::EngineProfile;
use crate::schema::Catalog;
use crate::sql::ast::{JoinKind, SetOpKind};
use crate::stats::{self, TableStats};
use crate::{Error, Result};

/// Planner inputs.
pub struct PlannerCtx<'a> {
    /// The catalog (for index lookup).
    pub catalog: &'a Catalog,
    /// Per-table statistics.
    pub stats_of: &'a dyn Fn(&str) -> Option<&'a TableStats>,
    /// Engine profile.
    pub profile: EngineProfile,
    /// Armed faults (estimator faults act here).
    pub faults: &'a FaultSet,
}

/// Plans a bound query.
pub fn plan(bound: &BoundQuery, ctx: &PlannerCtx<'_>) -> Result<ExplainedPlan> {
    let start = Instant::now();
    let pushed = push_filters(bound.plan.clone());

    // TiDB shared-subquery detection (paper Listing 4): the single deduped
    // subquery aggregates the same input as the main aggregate.
    let mut shared: Option<SharedSubAgg> = None;
    if bound.shared_subquery && bound.subqueries.len() == 1 {
        shared = detect_shared_subagg(&pushed, &bound.subqueries[0]);
    }

    let mut planned = plan_node(&pushed, ctx, shared.as_ref())?;

    // Peephole: Limit over Sort becomes TopN for TiDB-style engines.
    if ctx.profile == EngineProfile::TiDb {
        planned.node = fuse_topn(planned.node);
    }

    let subplans = if shared.is_some() {
        Vec::new()
    } else {
        bound
            .subqueries
            .iter()
            .map(|sub| {
                let pushed = push_filters(sub.clone());
                Ok(plan_node(&pushed, ctx, None)?.node)
            })
            .collect::<Result<Vec<_>>>()?
    };

    let output = pushed.schema.iter().map(|c| c.name.clone()).collect();
    Ok(ExplainedPlan {
        root: planned.node,
        subplans,
        shared_subagg: shared,
        profile: ctx.profile,
        planning_time_ms: start.elapsed().as_secs_f64() * 1e3,
        execution_time_ms: None,
        output,
    })
}

// ---------------------------------------------------------------------------
// Filter pushdown (logical rewrite)
// ---------------------------------------------------------------------------

/// Splits a predicate into its top-level conjuncts.
pub fn conjuncts(expr: BoundExpr) -> Vec<BoundExpr> {
    match expr {
        BoundExpr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut out = conjuncts(*left);
            out.extend(conjuncts(*right));
            out
        }
        other => vec![other],
    }
}

/// Rebuilds a conjunction.
pub fn conjoin(mut parts: Vec<BoundExpr>) -> Option<BoundExpr> {
    let first = parts.pop()?;
    Some(parts.into_iter().fold(first, |acc, p| BoundExpr::Binary {
        op: BinOp::And,
        left: Box::new(p),
        right: Box::new(acc),
    }))
}

/// Pushes filters down through joins toward scans.
fn push_filters(plan: Logical) -> Logical {
    let schema = plan.schema.clone();
    let node = match plan.node {
        LNode::Filter { input, predicate } => {
            let input = push_filters(*input);
            return push_predicate(input, predicate);
        }
        LNode::Join {
            left,
            right,
            kind,
            on,
        } => {
            let left = push_filters(*left);
            let right = push_filters(*right);
            // Inner-join ON conjuncts referencing one side can sink.
            if kind == JoinKind::Inner {
                if let Some(on_expr) = on {
                    let left_width = left.schema.len();
                    let mut keep = Vec::new();
                    let mut left_parts = Vec::new();
                    let mut right_parts = Vec::new();
                    for part in conjuncts(on_expr) {
                        let cols = part.columns();
                        if !cols.is_empty() && cols.iter().all(|&c| c < left_width) {
                            left_parts.push(part);
                        } else if !cols.is_empty() && cols.iter().all(|&c| c >= left_width) {
                            let mut moved = part;
                            moved.remap_columns(&|c| c - left_width);
                            right_parts.push(moved);
                        } else {
                            keep.push(part);
                        }
                    }
                    let left = apply_filter(left, left_parts);
                    let right = apply_filter(right, right_parts);
                    let schema = plan.schema;
                    return Logical {
                        node: LNode::Join {
                            left: Box::new(left),
                            right: Box::new(right),
                            kind,
                            on: conjoin(keep),
                        },
                        schema,
                    };
                }
            }
            LNode::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            }
        }
        LNode::Project { input, exprs } => LNode::Project {
            input: Box::new(push_filters(*input)),
            exprs,
        },
        LNode::Aggregate {
            input,
            group_by,
            aggs,
            having,
            shared_subplan,
        } => LNode::Aggregate {
            input: Box::new(push_filters(*input)),
            group_by,
            aggs,
            having,
            shared_subplan,
        },
        LNode::Sort { input, keys } => LNode::Sort {
            input: Box::new(push_filters(*input)),
            keys,
        },
        LNode::Limit {
            input,
            limit,
            offset,
        } => LNode::Limit {
            input: Box::new(push_filters(*input)),
            limit,
            offset,
        },
        LNode::Distinct { input } => LNode::Distinct {
            input: Box::new(push_filters(*input)),
        },
        LNode::SetOp {
            op,
            all,
            left,
            right,
        } => LNode::SetOp {
            op,
            all,
            left: Box::new(push_filters(*left)),
            right: Box::new(push_filters(*right)),
        },
        leaf @ (LNode::Scan { .. } | LNode::Empty) => leaf,
    };
    Logical { node, schema }
}

/// Pushes one predicate into a subtree as far as it goes.
fn push_predicate(plan: Logical, predicate: BoundExpr) -> Logical {
    match plan.node {
        // Comma-syntax cross joins with a connecting WHERE become inner joins.
        LNode::Join {
            left,
            right,
            kind: kind @ (JoinKind::Inner | JoinKind::Cross),
            on,
        } => {
            let _ = kind;
            let left_width = left.schema.len();
            let mut keep = Vec::new();
            let mut left_parts = Vec::new();
            let mut right_parts = Vec::new();
            for part in conjuncts(predicate) {
                let cols = part.columns();
                if !cols.is_empty() && cols.iter().all(|&c| c < left_width) {
                    left_parts.push(part);
                } else if !cols.is_empty() && cols.iter().all(|&c| c >= left_width) {
                    let mut moved = part;
                    moved.remap_columns(&|c| c - left_width);
                    right_parts.push(moved);
                } else {
                    keep.push(part);
                }
            }
            let new_left = apply_filter(push_filters(*left), left_parts);
            let new_right = apply_filter(push_filters(*right), right_parts);
            let on = match (on, conjoin(keep)) {
                (Some(a), Some(b)) => Some(BoundExpr::Binary {
                    op: BinOp::And,
                    left: Box::new(a),
                    right: Box::new(b),
                }),
                (Some(a), None) => Some(a),
                (None, b) => b,
            };
            let schema = plan.schema;
            Logical {
                node: LNode::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    kind: JoinKind::Inner,
                    on,
                },
                schema,
            }
        }
        // Merge adjacent filters.
        LNode::Filter {
            input,
            predicate: inner,
        } => {
            let merged = BoundExpr::Binary {
                op: BinOp::And,
                left: Box::new(predicate),
                right: Box::new(inner),
            };
            push_predicate(*input, merged)
        }
        node => {
            let schema = plan.schema.clone();
            Logical {
                node: LNode::Filter {
                    input: Box::new(Logical { node, schema }),
                    predicate,
                },
                schema: plan.schema,
            }
        }
    }
}

fn apply_filter(plan: Logical, parts: Vec<BoundExpr>) -> Logical {
    match conjoin(parts) {
        Some(predicate) => {
            let schema = plan.schema.clone();
            push_predicate(
                Logical {
                    node: plan.node,
                    schema: plan.schema,
                },
                predicate,
            )
            .with_schema(schema)
        }
        None => plan,
    }
}

impl Logical {
    fn with_schema(mut self, schema: Vec<crate::logical::ColMeta>) -> Logical {
        self.schema = schema;
        self
    }
}

// ---------------------------------------------------------------------------
// Shared-subquery detection (TiDB q11 optimization)
// ---------------------------------------------------------------------------

fn detect_shared_subagg(main: &Logical, sub: &Logical) -> Option<SharedSubAgg> {
    // The subquery must be Project(Aggregate(input)) with an ungrouped
    // aggregate whose input equals the main block's aggregate input.
    let main_agg_input = find_aggregate_input(main)?;
    let (sub_project, sub_agg) = match &sub.node {
        LNode::Project { input, exprs } => match &input.node {
            LNode::Aggregate {
                input: agg_input,
                group_by,
                aggs,
                having: None,
                ..
            } if group_by.is_empty() => (exprs.first()?.clone(), (agg_input, aggs)),
            _ => return None,
        },
        _ => return None,
    };
    let (sub_input, sub_aggs) = sub_agg;
    let sub_pushed = push_filters((**sub_input).clone());
    if sub_pushed.node != main_agg_input.node {
        return None;
    }
    Some(SharedSubAgg {
        aggs: sub_aggs
            .iter()
            .map(|a| PhysAgg {
                func: a.func,
                arg: a.arg.clone(),
                label: a.display.clone(),
            })
            .collect(),
        project: sub_project,
        slot: 0,
    })
}

fn find_aggregate_input(plan: &Logical) -> Option<Logical> {
    match &plan.node {
        LNode::Aggregate { input, .. } => Some((**input).clone()),
        LNode::Project { input, .. }
        | LNode::Sort { input, .. }
        | LNode::Limit { input, .. }
        | LNode::Distinct { input } => find_aggregate_input(input),
        LNode::Filter { input, .. } => find_aggregate_input(input),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Physical planning
// ---------------------------------------------------------------------------

/// Column provenance: which base-table column a plan column carries.
type Prov = Vec<Option<(String, usize)>>;

struct Planned {
    node: PhysNode,
    prov: Prov,
}

fn plan_node(
    plan: &Logical,
    ctx: &PlannerCtx<'_>,
    shared: Option<&SharedSubAgg>,
) -> Result<Planned> {
    match &plan.node {
        LNode::Scan { table, alias } => plan_scan(table, alias, None, ctx),
        LNode::Filter { input, predicate } => {
            if let LNode::Scan { table, alias } = &input.node {
                return plan_scan(table, alias, Some(predicate.clone()), ctx);
            }
            let child = plan_node(input, ctx, shared)?;
            let sel = selectivity_of(predicate, &child.prov, ctx);
            let est = (child.node.est_rows * sel).max(0.0);
            let cost =
                child.node.est_total_cost + child.node.est_rows * ctx.profile.cpu_tuple_cost();
            let prov = child.prov.clone();
            let mut node = PhysNode::new(
                PhysOp::Filter {
                    predicate: predicate.clone(),
                },
                vec![child.node],
            );
            node.est_rows = est;
            node.est_total_cost = cost;
            Ok(Planned { node, prov })
        }
        LNode::Project { input, exprs } => {
            let child = plan_node(input, ctx, shared)?;
            let prov: Prov = exprs
                .iter()
                .map(|e| match e {
                    BoundExpr::Column { index, .. } => child.prov.get(*index).cloned().flatten(),
                    _ => None,
                })
                .collect();
            let labels = plan.schema.iter().map(|c| c.name.clone()).collect();
            let est = child.node.est_rows;
            let cost =
                child.node.est_total_cost + child.node.est_rows * ctx.profile.cpu_tuple_cost();
            let mut node = PhysNode::new(
                PhysOp::Project {
                    exprs: exprs.clone(),
                    labels,
                },
                vec![child.node],
            );
            node.est_rows = est;
            node.est_total_cost = cost;
            Ok(Planned { node, prov })
        }
        LNode::Join {
            left,
            right,
            kind,
            on,
        } => plan_join(left, right, *kind, on.as_ref(), ctx, shared),
        LNode::Aggregate {
            input,
            group_by,
            aggs,
            having,
            ..
        } => {
            let child = plan_node(input, ctx, shared)?;
            let phys_aggs: Vec<PhysAgg> = aggs
                .iter()
                .map(|a| PhysAgg {
                    func: a.func,
                    arg: a.arg.clone(),
                    label: a.display.clone(),
                })
                .collect();
            let strategy = if group_by.is_empty() {
                AggStrategy::Plain
            } else if matches!(
                child.node.op,
                PhysOp::IndexScan { .. } | PhysOp::Sort { .. }
            ) {
                AggStrategy::Sorted
            } else {
                AggStrategy::Hash
            };
            // Group count estimate: product of per-column NDVs, capped.
            let mut groups = 1.0;
            for g in group_by {
                let ndv = match g {
                    BoundExpr::Column { index, .. } => child
                        .prov
                        .get(*index)
                        .and_then(|p| p.as_ref())
                        .and_then(|(t, c)| {
                            (ctx.stats_of)(t).map(|s| s.columns[*c].n_distinct as f64)
                        })
                        .unwrap_or(10.0),
                    _ => 10.0,
                };
                groups *= ndv.max(1.0);
            }
            let mut est = if group_by.is_empty() {
                1.0
            } else {
                groups.min(child.node.est_rows.max(1.0))
            };
            if ctx.faults.is_armed(BugId::Tidb51524)
                && ctx.profile == EngineProfile::TiDb
                && !group_by.is_empty()
            {
                // Injected CERT fault: grouped output estimated *larger*
                // than the input.
                est = child.node.est_rows * 1.2 + 10.0;
            }
            if having.is_some() {
                est *= 0.5;
            }
            let cost = child.node.est_total_cost
                + child.node.est_rows * ctx.profile.cpu_tuple_cost() * 2.0;
            let prov = vec![None; plan.schema.len()];
            let mut node = PhysNode::new(
                PhysOp::Aggregate {
                    strategy,
                    group_by: group_by.clone(),
                    aggs: phys_aggs,
                    having: having.clone(),
                    shared_subplan: shared.is_some(),
                },
                vec![child.node],
            );
            node.est_rows = est;
            node.est_startup_cost = cost;
            node.est_total_cost = cost;
            Ok(Planned { node, prov })
        }
        LNode::Sort { input, keys } => {
            let child = plan_node(input, ctx, shared)?;
            let est = child.node.est_rows;
            let n = est.max(2.0);
            let cost = child.node.est_total_cost + n * n.log2() * ctx.profile.cpu_tuple_cost();
            let prov = child.prov.clone();
            let mut node = PhysNode::new(PhysOp::Sort { keys: keys.clone() }, vec![child.node]);
            node.est_rows = est;
            node.est_startup_cost = cost;
            node.est_total_cost = cost;
            Ok(Planned { node, prov })
        }
        LNode::Limit {
            input,
            limit,
            offset,
        } => {
            let child = plan_node(input, ctx, shared)?;
            let est = match limit {
                Some(n) => (*n as f64).min(child.node.est_rows),
                None => (child.node.est_rows - *offset as f64).max(0.0),
            };
            let cost = child.node.est_total_cost;
            let prov = child.prov.clone();
            let mut node = PhysNode::new(
                PhysOp::Limit {
                    limit: *limit,
                    offset: *offset,
                },
                vec![child.node],
            );
            node.est_rows = est;
            node.est_total_cost = cost;
            Ok(Planned { node, prov })
        }
        LNode::Distinct { input } => {
            let child = plan_node(input, ctx, shared)?;
            let est = (child.node.est_rows * 0.7).max(1.0);
            let cost =
                child.node.est_total_cost + child.node.est_rows * ctx.profile.cpu_tuple_cost();
            let prov = child.prov.clone();
            let mut node = PhysNode::new(PhysOp::Distinct, vec![child.node]);
            node.est_rows = est;
            node.est_total_cost = cost;
            Ok(Planned { node, prov })
        }
        LNode::SetOp {
            op,
            all,
            left,
            right,
        } => {
            let l = plan_node(left, ctx, shared)?;
            let r = plan_node(right, ctx, shared)?;
            let prov = vec![None; plan.schema.len()];
            let (est, make_distinct) = match (op, all) {
                (SetOpKind::Union, true) => (l.node.est_rows + r.node.est_rows, false),
                (SetOpKind::Union, false) => ((l.node.est_rows + r.node.est_rows) * 0.8, true),
                (SetOpKind::Intersect, _) => (l.node.est_rows.min(r.node.est_rows) * 0.5, false),
                (SetOpKind::Except, _) => (l.node.est_rows * 0.5, false),
            };
            let cost = l.node.est_total_cost
                + r.node.est_total_cost
                + (l.node.est_rows + r.node.est_rows) * ctx.profile.cpu_tuple_cost();
            let mut node = if *op == SetOpKind::Union {
                let mut append = PhysNode::new(PhysOp::Append, vec![l.node, r.node]);
                append.est_rows = est;
                append.est_total_cost = cost;
                if make_distinct {
                    let mut d = PhysNode::new(PhysOp::Distinct, vec![append]);
                    d.est_rows = est;
                    d.est_total_cost = cost;
                    d
                } else {
                    append
                }
            } else {
                PhysNode::new(PhysOp::SetOp { op: *op, all: *all }, vec![l.node, r.node])
            };
            node.est_rows = est;
            node.est_total_cost = cost;
            Ok(Planned { node, prov })
        }
        LNode::Empty => {
            let mut node = PhysNode::new(PhysOp::Empty, vec![]);
            node.est_rows = 1.0;
            Ok(Planned { node, prov: vec![] })
        }
    }
}

/// Access-path selection for a (possibly filtered) base-table scan.
fn plan_scan(
    table: &str,
    alias: &str,
    filter: Option<BoundExpr>,
    ctx: &PlannerCtx<'_>,
) -> Result<Planned> {
    let schema = ctx
        .catalog
        .table(table)
        .ok_or_else(|| Error::Binding(format!("unknown table {table:?}")))?;
    let prov: Prov = (0..schema.columns.len())
        .map(|c| Some((table.to_owned(), c)))
        .collect();
    let table_rows = (ctx.stats_of)(table).map_or(100.0, |s| s.row_count as f64);

    // Try to peel one index-usable conjunct off the filter.
    let mut best: Option<(usize, IndexAccess, String, Vec<BoundExpr>)> = None;
    if let Some(filter_expr) = &filter {
        let parts = conjuncts(filter_expr.clone());
        for (i, part) in parts.iter().enumerate() {
            if let Some((col, access, recheck)) = index_access_of(part) {
                if let Some(index) = ctx.catalog.index_on_column(table, col) {
                    // Strict bounds stay in the residual: the range access
                    // over-approximates them.
                    let rest: Vec<BoundExpr> = parts
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i || recheck)
                        .map(|(_, p)| p.clone())
                        .collect();
                    // Prefer equality over range; first match wins otherwise.
                    let better = match &best {
                        None => true,
                        Some((_, IndexAccess::Eq(_), _, _)) => false,
                        Some(_) => matches!(access, IndexAccess::Eq(_)),
                    };
                    if better {
                        best = Some((col, access, index.name.clone(), rest));
                    }
                }
            }
        }
    }

    let stats_fn = |c: usize| (ctx.stats_of)(table).and_then(|s| s.columns.get(c).cloned());
    let inflate = estimator_fault(ctx);

    if let Some((col, access, index, rest)) = best {
        let access_sel = match &access {
            IndexAccess::Eq(BoundExpr::Literal(v)) => {
                stats_fn(col).map_or(stats::defaults::EQ, |s| s.eq_selectivity(v))
            }
            IndexAccess::Eq(_) => stats::defaults::EQ,
            IndexAccess::Range { low, high } => {
                let lo = match low {
                    Some(BoundExpr::Literal(v)) => Some(v.clone()),
                    _ => None,
                };
                let hi = match high {
                    Some(BoundExpr::Literal(v)) => Some(v.clone()),
                    _ => None,
                };
                stats_fn(col).map_or(stats::defaults::RANGE, |s| {
                    s.range_selectivity(lo.as_ref(), hi.as_ref())
                })
            }
            IndexAccess::Full => 1.0,
        };
        let residual = conjoin(rest);
        let residual_sel = residual
            .as_ref()
            .map_or(1.0, |r| stats::selectivity(r, &stats_fn, inflate));
        // Injected CERT fault (TiDB 51525): index scans with residual
        // filters drop the residual's selectivity and over-correct, so the
        // restricted query's estimate *exceeds* the unrestricted one.
        let effective_residual_sel = if ctx.faults.is_armed(BugId::Tidb51525)
            && ctx.profile == EngineProfile::TiDb
            && residual.is_some()
        {
            1.25
        } else {
            residual_sel
        };
        let index_only = residual.is_none()
            && ctx
                .catalog
                .indexes_on(table)
                .iter()
                .find(|i| i.name == index)
                .is_some_and(|i| i.key_columns == vec![col]);
        let est = (table_rows * access_sel * effective_residual_sel).max(0.0);
        let matched = (table_rows * access_sel).max(1.0);
        let cost = matched.log2().max(1.0) * ctx.profile.cpu_tuple_cost()
            + matched
                * if index_only {
                    ctx.profile.cpu_tuple_cost()
                } else {
                    ctx.profile.random_page_cost() * 0.01
                };
        let mut node = PhysNode::new(
            PhysOp::IndexScan {
                table: table.to_owned(),
                alias: alias.to_owned(),
                index,
                access,
                filter: residual,
                index_only,
                automatic: false,
            },
            vec![],
        );
        node.est_rows = est;
        node.est_total_cost = cost;
        return Ok(Planned { node, prov });
    }

    let sel = filter
        .as_ref()
        .map_or(1.0, |f| stats::selectivity(f, &stats_fn, inflate));
    let est = table_rows * sel;
    let parallel = ctx
        .profile
        .parallel_seq_scan_threshold()
        .is_some_and(|t| table_rows >= t);
    let cost = table_rows * (ctx.profile.seq_page_cost() * 0.01 + ctx.profile.cpu_tuple_cost());
    let mut node = PhysNode::new(
        PhysOp::SeqScan {
            table: table.to_owned(),
            alias: alias.to_owned(),
            filter,
            parallel,
        },
        vec![],
    );
    node.est_rows = est;
    node.est_total_cost = cost;
    Ok(Planned { node, prov })
}

fn estimator_fault(ctx: &PlannerCtx<'_>) -> bool {
    (ctx.faults.is_armed(BugId::Mysql114237) && ctx.profile == EngineProfile::MySql)
        || (ctx.faults.is_armed(BugId::PostgresEmail) && ctx.profile == EngineProfile::Postgres)
}

/// Extracts `(column, index access, needs_recheck)` from an index-usable
/// conjunct. Strict comparisons (`<`, `>`) need a residual recheck because
/// the B-tree range API is bound-inclusive.
fn index_access_of(expr: &BoundExpr) -> Option<(usize, IndexAccess, bool)> {
    match expr {
        BoundExpr::Binary { op, left, right } => {
            let (col, lit, flipped) = match (left.as_ref(), right.as_ref()) {
                (BoundExpr::Column { index, .. }, lit @ BoundExpr::Literal(_)) => {
                    (*index, lit.clone(), false)
                }
                (lit @ BoundExpr::Literal(_), BoundExpr::Column { index, .. }) => {
                    (*index, lit.clone(), true)
                }
                _ => return None,
            };
            let strict = matches!(op, BinOp::Lt | BinOp::Gt);
            let access = match (op, flipped) {
                (BinOp::Eq, _) => IndexAccess::Eq(lit),
                (BinOp::Lt | BinOp::Le, false) | (BinOp::Gt | BinOp::Ge, true) => {
                    IndexAccess::Range {
                        low: None,
                        high: Some(lit),
                    }
                }
                (BinOp::Gt | BinOp::Ge, false) | (BinOp::Lt | BinOp::Le, true) => {
                    IndexAccess::Range {
                        low: Some(lit),
                        high: None,
                    }
                }
                _ => return None,
            };
            Some((col, access, strict))
        }
        BoundExpr::Between { expr, low, high } => {
            let BoundExpr::Column { index, .. } = expr.as_ref() else {
                return None;
            };
            if !matches!(low.as_ref(), BoundExpr::Literal(_))
                || !matches!(high.as_ref(), BoundExpr::Literal(_))
            {
                return None;
            }
            Some((
                *index,
                IndexAccess::Range {
                    low: Some((**low).clone()),
                    high: Some((**high).clone()),
                },
                false,
            ))
        }
        // Single-element IN behaves like equality (the Listing 3 shape).
        BoundExpr::InList { expr, list } if list.len() == 1 => {
            let BoundExpr::Column { index, .. } = expr.as_ref() else {
                return None;
            };
            Some((*index, IndexAccess::Eq(list[0].clone()), false))
        }
        _ => None,
    }
}

fn plan_join(
    left: &Logical,
    right: &Logical,
    kind: JoinKind,
    on: Option<&BoundExpr>,
    ctx: &PlannerCtx<'_>,
    shared: Option<&SharedSubAgg>,
) -> Result<Planned> {
    let l = plan_node(left, ctx, shared)?;
    let left_width = left.schema.len();

    // Split the condition into equi pairs and residual.
    let mut equi: Vec<(usize, usize)> = Vec::new();
    let mut residual_parts = Vec::new();
    if let Some(on_expr) = on {
        for part in conjuncts(on_expr.clone()) {
            if let BoundExpr::Binary {
                op: BinOp::Eq,
                left: a,
                right: b,
            } = &part
            {
                if let (BoundExpr::Column { index: ia, .. }, BoundExpr::Column { index: ib, .. }) =
                    (a.as_ref(), b.as_ref())
                {
                    let (lo, hi) = if ia < ib { (*ia, *ib) } else { (*ib, *ia) };
                    if lo < left_width && hi >= left_width {
                        equi.push((lo, hi - left_width));
                        continue;
                    }
                }
            }
            residual_parts.push(part);
        }
    }
    let residual = conjoin(residual_parts);

    // Index nested-loop: inner side is a scan with an index on its equi key.
    let index_join = ctx.profile.prefers_index_join()
        && kind != JoinKind::Cross
        && !equi.is_empty()
        && matches!(right.node, LNode::Scan { .. } | LNode::Filter { .. });
    if index_join {
        if let Some(inner) = try_index_inner(right, &equi, ctx)? {
            let est = join_estimate(&l, &inner, &equi, residual.as_ref(), ctx);
            let cost =
                l.node.est_total_cost + l.node.est_rows * ctx.profile.random_page_cost() * 0.02;
            let on_expr = rebuild_join_on(&equi, left_width, on, residual.clone());
            let mut prov = l.prov.clone();
            prov.extend(inner.prov.clone());
            let mut node = PhysNode::new(
                PhysOp::NestedLoopJoin { kind, on: on_expr },
                vec![l.node, inner.node],
            );
            node.est_rows = est;
            node.est_total_cost = cost;
            return Ok(Planned { node, prov });
        }
    }

    let r = plan_node(right, ctx, shared)?;
    let est = join_estimate(&l, &r, &equi, residual.as_ref(), ctx);
    let mut prov = l.prov.clone();
    prov.extend(r.prov.clone());

    if ctx.profile.hash_join_capable() && !equi.is_empty() && kind != JoinKind::Cross {
        let cost = l.node.est_total_cost
            + r.node.est_total_cost
            + (l.node.est_rows + r.node.est_rows) * ctx.profile.cpu_tuple_cost() * 1.5;
        let keys: Vec<(usize, usize)> = equi.clone();
        let mut node = PhysNode::new(
            PhysOp::HashJoin {
                kind,
                keys,
                residual,
            },
            vec![l.node, r.node],
        );
        node.est_rows = est;
        node.est_startup_cost = node.children[1].est_total_cost;
        node.est_total_cost = cost;
        return Ok(Planned { node, prov });
    }

    // Fall back to a nested loop (possibly with an automatic index for
    // SQLite-style engines).
    let mut inner_node = r.node;
    if ctx.profile.builds_automatic_indexes() && !equi.is_empty() {
        if let PhysOp::SeqScan {
            table,
            alias,
            filter,
            ..
        } = &inner_node.op
        {
            let (_, inner_col) = equi[0];
            let est_rows = inner_node.est_rows;
            let mut auto = PhysNode::new(
                PhysOp::IndexScan {
                    table: table.clone(),
                    alias: alias.clone(),
                    index: format!("auto_{table}_{inner_col}"),
                    access: IndexAccess::Eq(BoundExpr::Column {
                        index: equi[0].0,
                        name: "outer".into(),
                    }),
                    filter: filter.clone(),
                    index_only: true,
                    automatic: true,
                },
                vec![],
            );
            auto.est_rows = est_rows;
            auto.est_total_cost = inner_node.est_total_cost;
            inner_node = auto;
        }
    }
    let on_expr = rebuild_join_on(&equi, left_width, on, residual);
    let cost =
        l.node.est_total_cost + l.node.est_rows.max(1.0) * inner_node.est_total_cost.max(0.01);
    let mut node = PhysNode::new(
        PhysOp::NestedLoopJoin { kind, on: on_expr },
        vec![l.node, inner_node],
    );
    node.est_rows = est;
    node.est_total_cost = cost;
    Ok(Planned { node, prov })
}

/// Plans the inner side of an index nested-loop join as an index scan keyed
/// by the outer column (children order: `[outer, inner]`; the inner
/// `IndexScan`'s `Eq` expression references the *outer* row).
fn try_index_inner(
    right: &Logical,
    equi: &[(usize, usize)],
    ctx: &PlannerCtx<'_>,
) -> Result<Option<Planned>> {
    let (scan_table, scan_alias, filter) = match &right.node {
        LNode::Scan { table, alias } => (table, alias, None),
        LNode::Filter { input, predicate } => match &input.node {
            LNode::Scan { table, alias } => (table, alias, Some(predicate.clone())),
            _ => return Ok(None),
        },
        _ => return Ok(None),
    };
    let (outer_col, inner_col) = equi[0];
    let Some(index) = ctx.catalog.index_on_column(scan_table, inner_col) else {
        return Ok(None);
    };
    let schema = ctx
        .catalog
        .table(scan_table)
        .ok_or_else(|| Error::Binding(format!("unknown table {scan_table:?}")))?;
    let prov: Prov = (0..schema.columns.len())
        .map(|c| Some((scan_table.clone(), c)))
        .collect();
    let table_rows = (ctx.stats_of)(scan_table).map_or(100.0, |s| s.row_count as f64);
    let ndv = (ctx.stats_of)(scan_table)
        .map(|s| s.columns[inner_col].n_distinct.max(1) as f64)
        .unwrap_or(10.0);
    let index_only = filter.is_none() && index.key_columns == vec![inner_col];
    let mut node = PhysNode::new(
        PhysOp::IndexScan {
            table: scan_table.clone(),
            alias: scan_alias.clone(),
            index: index.name.clone(),
            access: IndexAccess::Eq(BoundExpr::Column {
                index: outer_col,
                name: "outer_key".into(),
            }),
            filter,
            index_only,
            automatic: false,
        },
        vec![],
    );
    node.est_rows = (table_rows / ndv).max(1.0);
    node.est_total_cost = node.est_rows * ctx.profile.random_page_cost() * 0.01;
    Ok(Some(Planned { node, prov }))
}

fn rebuild_join_on(
    equi: &[(usize, usize)],
    left_width: usize,
    original: Option<&BoundExpr>,
    residual: Option<BoundExpr>,
) -> Option<BoundExpr> {
    if original.is_some() {
        let mut parts: Vec<BoundExpr> = equi
            .iter()
            .map(|(a, b)| BoundExpr::Binary {
                op: BinOp::Eq,
                left: Box::new(BoundExpr::Column {
                    index: *a,
                    name: format!("left_{a}"),
                }),
                right: Box::new(BoundExpr::Column {
                    index: b + left_width,
                    name: format!("right_{b}"),
                }),
            })
            .collect();
        if let Some(r) = residual {
            parts.push(r);
        }
        conjoin(parts)
    } else {
        residual
    }
}

fn join_estimate(
    l: &Planned,
    r: &Planned,
    equi: &[(usize, usize)],
    residual: Option<&BoundExpr>,
    ctx: &PlannerCtx<'_>,
) -> f64 {
    let mut est = l.node.est_rows.max(0.0) * r.node.est_rows.max(0.0);
    for (lc, rc) in equi {
        let ndv_l = l
            .prov
            .get(*lc)
            .and_then(|p| p.as_ref())
            .and_then(|(t, c)| (ctx.stats_of)(t).map(|s| s.columns[*c].n_distinct as f64));
        let ndv_r = r
            .prov
            .get(*rc)
            .and_then(|p| p.as_ref())
            .and_then(|(t, c)| (ctx.stats_of)(t).map(|s| s.columns[*c].n_distinct as f64));
        let ndv = ndv_l.unwrap_or(10.0).max(ndv_r.unwrap_or(10.0)).max(1.0);
        est /= ndv;
    }
    if residual.is_some() {
        est *= stats::defaults::RANGE;
    }
    est.max(0.0)
}

/// Fuses `Limit(Sort)` into `TopN` (TiDB rendering).
fn fuse_topn(mut node: PhysNode) -> PhysNode {
    node.children = node.children.into_iter().map(fuse_topn).collect();
    if let PhysOp::Limit {
        limit: Some(n),
        offset,
    } = &node.op
    {
        if node.children.len() == 1 {
            if let PhysOp::Sort { keys } = &node.children[0].op {
                let keys = keys.clone();
                let (n, offset) = (*n, *offset);
                let child = node.children.remove(0);
                let inner = child.children.into_iter().next().expect("sort has input");
                let mut fused = PhysNode::new(
                    PhysOp::TopN {
                        keys,
                        limit: n,
                        offset,
                    },
                    vec![inner],
                );
                fused.est_rows = (n as f64).min(child.est_rows);
                fused.est_total_cost = child.est_total_cost;
                return fused;
            }
        }
    }
    node
}

fn selectivity_of(predicate: &BoundExpr, prov: &Prov, ctx: &PlannerCtx<'_>) -> f64 {
    let stats_fn = |c: usize| {
        prov.get(c)
            .and_then(|p| p.as_ref())
            .and_then(|(t, col)| (ctx.stats_of)(t).and_then(|s| s.columns.get(*col).cloned()))
    };
    stats::selectivity(predicate, &stats_fn, estimator_fault(ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::build::*;

    #[test]
    fn conjunct_split_and_rebuild() {
        let e = bin(
            BinOp::And,
            bin(BinOp::Lt, col(0, "a"), int(5)),
            bin(
                BinOp::And,
                bin(BinOp::Gt, col(1, "b"), int(1)),
                bin(BinOp::Eq, col(2, "c"), int(0)),
            ),
        );
        let parts = conjuncts(e);
        assert_eq!(parts.len(), 3);
        let rebuilt = conjoin(parts.clone()).unwrap();
        assert_eq!(conjuncts(rebuilt).len(), 3);
        assert!(conjoin(vec![]).is_none());
    }

    #[test]
    fn index_access_extraction() {
        let (c, a, recheck) = index_access_of(&bin(BinOp::Eq, col(1, "x"), int(5))).unwrap();
        assert_eq!(c, 1);
        assert!(matches!(a, IndexAccess::Eq(_)));
        assert!(!recheck);

        let (_, a, recheck) = index_access_of(&bin(BinOp::Lt, col(0, "x"), int(5))).unwrap();
        assert!(matches!(
            a,
            IndexAccess::Range {
                low: None,
                high: Some(_)
            }
        ));
        assert!(recheck, "strict bounds need a residual recheck");

        let (_, _, recheck) = index_access_of(&bin(BinOp::Le, col(0, "x"), int(5))).unwrap();
        assert!(!recheck);

        // Flipped literal side: 5 > x  ≡  x < 5.
        let (_, a, recheck) = index_access_of(&bin(BinOp::Gt, int(5), col(0, "x"))).unwrap();
        assert!(matches!(
            a,
            IndexAccess::Range {
                low: None,
                high: Some(_)
            }
        ));
        assert!(recheck);

        // Single-element IN (the Listing 3 shape).
        let in1 = BoundExpr::InList {
            expr: Box::new(col(0, "c1")),
            list: vec![float(0.2)],
        };
        let (_, a, recheck) = index_access_of(&in1).unwrap();
        assert!(matches!(a, IndexAccess::Eq(_)));
        assert!(!recheck, "equality probes stay exact (the Listing 3 gate)");

        assert!(index_access_of(&bin(BinOp::Eq, col(0, "x"), col(1, "y"))).is_none());
        assert!(index_access_of(&BoundExpr::IsNull(Box::new(col(0, "x")))).is_none());
    }
}
