//! Engine profiles: the per-DBMS planning idioms of the studied systems.
//!
//! A profile does not change *what* a query computes — it changes which
//! physical plan shapes the planner prefers, mirroring the differences the
//! paper's study observed between MySQL, PostgreSQL, TiDB and SQLite plans
//! (e.g. Listing 1's PostgreSQL parallel hash plan vs SQLite's nested-loop
//! with an automatic index; Listing 4's TiDB index-lookup, subquery-sharing
//! plan vs PostgreSQL's six-scan plan).

/// The relational engines emulated by `minidb`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineProfile {
    /// PostgreSQL-style: hash joins with explicit build sides, parallel
    /// sequential scans under Gather, scalar subqueries planned per
    /// occurrence.
    Postgres,
    /// MySQL-style: index nested-loop joins when the inner side has a
    /// usable index, hash joins otherwise; no parallel operators.
    MySql,
    /// TiDB-style: distributed wrappers (TableReader/IndexLookUp),
    /// standalone Selection/Projection operators, identical scalar
    /// subqueries shared (the Listing 4 optimization).
    TiDb,
    /// SQLite-style: nested loops only, automatic covering indexes for
    /// joins, heuristic (non-statistics) estimates.
    Sqlite,
}

impl EngineProfile {
    /// All profiles.
    pub const ALL: [EngineProfile; 4] = [
        EngineProfile::Postgres,
        EngineProfile::MySql,
        EngineProfile::TiDb,
        EngineProfile::Sqlite,
    ];

    /// Display name of the emulated DBMS.
    pub fn name(self) -> &'static str {
        match self {
            EngineProfile::Postgres => "PostgreSQL",
            EngineProfile::MySql => "MySQL",
            EngineProfile::TiDb => "TiDB",
            EngineProfile::Sqlite => "SQLite",
        }
    }

    /// Share identical scalar subqueries (TiDB; paper §A.3 q11 analysis).
    pub fn dedup_subqueries(self) -> bool {
        matches!(self, EngineProfile::TiDb)
    }

    /// Row-count threshold above which sequential scans go parallel
    /// (PostgreSQL's Gather / Workers Planned idiom).
    pub fn parallel_seq_scan_threshold(self) -> Option<f64> {
        match self {
            EngineProfile::Postgres => Some(10_000.0),
            _ => None,
        }
    }

    /// Prefer hash joins when no index is usable on the inner side.
    pub fn hash_join_capable(self) -> bool {
        !matches!(self, EngineProfile::Sqlite)
    }

    /// Prefer an index nested-loop join over a hash join when the inner
    /// side has a usable index.
    pub fn prefers_index_join(self) -> bool {
        matches!(
            self,
            EngineProfile::MySql | EngineProfile::Sqlite | EngineProfile::TiDb
        )
    }

    /// Build a query-time automatic index for un-indexed join columns
    /// (SQLite's `AUTOMATIC COVERING INDEX`).
    pub fn builds_automatic_indexes(self) -> bool {
        matches!(self, EngineProfile::Sqlite)
    }

    /// Whether the engine's estimates come from real statistics; SQLite
    /// uses fixed heuristics and exposes no cardinalities (paper Table II).
    pub fn has_statistics(self) -> bool {
        !matches!(self, EngineProfile::Sqlite)
    }

    /// Random per-statement operator-id suffixes (`TableReader_7`), the
    /// TiDB idiom whose mishandling caused the original QPG parser bug.
    pub fn random_operator_ids(self) -> bool {
        matches!(self, EngineProfile::TiDb)
    }

    /// Per-tuple CPU cost (arbitrary cost units; relative magnitudes are
    /// what matters).
    pub fn cpu_tuple_cost(self) -> f64 {
        0.01
    }

    /// Per-page-equivalent sequential read cost.
    pub fn seq_page_cost(self) -> f64 {
        1.0
    }

    /// Random-access multiplier for index lookups.
    pub fn random_page_cost(self) -> f64 {
        match self {
            EngineProfile::TiDb => 2.0, // distributed fetch is pricier
            _ => 4.0,
        }
    }
}

impl std::fmt::Display for EngineProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_knobs_match_the_studied_systems() {
        assert!(EngineProfile::TiDb.dedup_subqueries());
        assert!(!EngineProfile::Postgres.dedup_subqueries());
        assert!(EngineProfile::Postgres
            .parallel_seq_scan_threshold()
            .is_some());
        assert!(EngineProfile::MySql.parallel_seq_scan_threshold().is_none());
        assert!(!EngineProfile::Sqlite.hash_join_capable());
        assert!(EngineProfile::Sqlite.builds_automatic_indexes());
        assert!(!EngineProfile::Sqlite.has_statistics());
        assert!(EngineProfile::TiDb.random_operator_ids());
        assert!(!EngineProfile::MySql.random_operator_ids());
        assert_eq!(EngineProfile::ALL.len(), 4);
        assert_eq!(EngineProfile::Postgres.name(), "PostgreSQL");
    }
}
