//! Catalog: table schemas and index definitions.

use crate::datum::DataType;
use crate::{Error, Result};
use std::collections::BTreeMap;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lowercased on creation).
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// Declared PRIMARY KEY (implies an index and uniqueness).
    pub primary_key: bool,
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (lowercased).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Position of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// The primary-key column index, if declared.
    pub fn primary_key(&self) -> Option<usize> {
        self.columns.iter().position(|c| c.primary_key)
    }
}

/// An index definition over one or more columns of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name (lowercased).
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed column positions, in key order.
    pub key_columns: Vec<usize>,
    /// Uniqueness (primary-key indexes are unique).
    pub unique: bool,
    /// `true` for the implicitly created primary-key index.
    pub is_primary: bool,
}

/// The catalog: schemas and indexes by name.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, TableSchema>,
    indexes: BTreeMap<String, IndexDef>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table schema.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        if self.tables.contains_key(&schema.name) {
            return Err(Error::Catalog(format!(
                "table {:?} already exists",
                schema.name
            )));
        }
        if schema.columns.is_empty() {
            return Err(Error::Catalog("tables need at least one column".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for c in &schema.columns {
            if !seen.insert(&c.name) {
                return Err(Error::Catalog(format!("duplicate column {:?}", c.name)));
            }
        }
        // PRIMARY KEY implies an index.
        if let Some(pk) = schema.primary_key() {
            let index = IndexDef {
                name: format!("{}_pkey", schema.name),
                table: schema.name.clone(),
                key_columns: vec![pk],
                unique: true,
                is_primary: true,
            };
            self.indexes.insert(index.name.clone(), index);
        }
        self.tables.insert(schema.name.clone(), schema);
        Ok(())
    }

    /// Drops a table and its indexes.
    pub fn drop_table(&mut self, name: &str) -> Result<TableSchema> {
        let lower = name.to_ascii_lowercase();
        let schema = self
            .tables
            .remove(&lower)
            .ok_or_else(|| Error::Catalog(format!("unknown table {name:?}")))?;
        self.indexes.retain(|_, idx| idx.table != lower);
        Ok(schema)
    }

    /// Registers a secondary index.
    pub fn create_index(&mut self, index: IndexDef) -> Result<()> {
        if self.indexes.contains_key(&index.name) {
            return Err(Error::Catalog(format!(
                "index {:?} already exists",
                index.name
            )));
        }
        if !self.tables.contains_key(&index.table) {
            return Err(Error::Catalog(format!("unknown table {:?}", index.table)));
        }
        self.indexes.insert(index.name.clone(), index);
        Ok(())
    }

    /// Looks up a table schema.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// All table schemas in name order.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    /// All indexes on a table.
    pub fn indexes_on(&self, table: &str) -> Vec<&IndexDef> {
        let lower = table.to_ascii_lowercase();
        self.indexes.values().filter(|i| i.table == lower).collect()
    }

    /// An index whose leading key column is `column`, preferring unique ones.
    pub fn index_on_column(&self, table: &str, column: usize) -> Option<&IndexDef> {
        let mut best: Option<&IndexDef> = None;
        for idx in self.indexes_on(table) {
            if idx.key_columns.first() == Some(&column) {
                match best {
                    Some(b) if b.unique || !idx.unique => {}
                    _ => best = Some(idx),
                }
            }
        }
        best
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of indexes (including primary-key indexes).
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> TableSchema {
        TableSchema {
            name: "t0".into(),
            columns: vec![
                Column {
                    name: "c0".into(),
                    data_type: DataType::Int,
                    primary_key: true,
                },
                Column {
                    name: "c1".into(),
                    data_type: DataType::Text,
                    primary_key: false,
                },
            ],
        }
    }

    #[test]
    fn create_table_registers_pkey_index() {
        let mut catalog = Catalog::new();
        catalog.create_table(t0()).unwrap();
        assert_eq!(catalog.table_count(), 1);
        assert_eq!(catalog.index_count(), 1);
        let indexes = catalog.indexes_on("t0");
        assert_eq!(indexes.len(), 1);
        assert_eq!(indexes[0].name, "t0_pkey");
        assert!(indexes[0].unique && indexes[0].is_primary);
    }

    #[test]
    fn duplicate_tables_and_columns_rejected() {
        let mut catalog = Catalog::new();
        catalog.create_table(t0()).unwrap();
        assert!(catalog.create_table(t0()).is_err());
        let dup = TableSchema {
            name: "bad".into(),
            columns: vec![
                Column {
                    name: "x".into(),
                    data_type: DataType::Int,
                    primary_key: false,
                },
                Column {
                    name: "x".into(),
                    data_type: DataType::Int,
                    primary_key: false,
                },
            ],
        };
        assert!(catalog.create_table(dup).is_err());
        let empty = TableSchema {
            name: "e".into(),
            columns: vec![],
        };
        assert!(catalog.create_table(empty).is_err());
    }

    #[test]
    fn secondary_indexes() {
        let mut catalog = Catalog::new();
        catalog.create_table(t0()).unwrap();
        catalog
            .create_index(IndexDef {
                name: "i0".into(),
                table: "t0".into(),
                key_columns: vec![1],
                unique: false,
                is_primary: false,
            })
            .unwrap();
        assert_eq!(catalog.indexes_on("t0").len(), 2);
        let idx = catalog.index_on_column("t0", 1).unwrap();
        assert_eq!(idx.name, "i0");
        // Unique index preferred over non-unique on the same column.
        let pk = catalog.index_on_column("t0", 0).unwrap();
        assert!(pk.unique);
        assert!(catalog.index_on_column("t0", 9).is_none());
        assert!(catalog
            .create_index(IndexDef {
                name: "i0".into(),
                table: "t0".into(),
                key_columns: vec![0],
                unique: false,
                is_primary: false,
            })
            .is_err());
        assert!(catalog
            .create_index(IndexDef {
                name: "i1".into(),
                table: "zzz".into(),
                key_columns: vec![0],
                unique: false,
                is_primary: false,
            })
            .is_err());
    }

    #[test]
    fn drop_table_removes_indexes() {
        let mut catalog = Catalog::new();
        catalog.create_table(t0()).unwrap();
        catalog.drop_table("T0").unwrap();
        assert_eq!(catalog.table_count(), 0);
        assert_eq!(catalog.index_count(), 0);
        assert!(catalog.drop_table("t0").is_err());
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let schema = t0();
        assert_eq!(schema.column_index("C1"), Some(1));
        assert_eq!(schema.column_index("missing"), None);
        assert_eq!(schema.primary_key(), Some(0));
    }
}
