//! The SQL abstract syntax tree.

use crate::datum::{DataType, Datum};
use crate::expr::BinOp;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type [PRIMARY KEY], ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// `(name, type, primary_key)` triples.
        columns: Vec<(String, DataType, bool)>,
    },
    /// `CREATE [UNIQUE] INDEX name ON table (col, ...)`
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Key column names.
        columns: Vec<String>,
        /// Uniqueness.
        unique: bool,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table name.
        name: String,
    },
    /// `ANALYZE [table]` — refresh statistics.
    Analyze {
        /// Specific table, or all when `None`.
        table: Option<String>,
    },
    /// `INSERT INTO t [(cols)] VALUES (...), ...`
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Value rows.
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE t SET c = e, ... [WHERE p]`
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE p]`
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// A query.
    Query(Query),
    /// `EXPLAIN [ANALYZE] query`
    Explain {
        /// Execute and collect actuals.
        analyze: bool,
        /// The explained query.
        query: Query,
    },
}

/// A query: set-expression body plus ordering and limits.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Body (`SELECT` or set operation).
    pub body: SetExpr,
    /// `ORDER BY` keys, `(expr, descending)`.
    pub order_by: Vec<(Expr, bool)>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
    /// `OFFSET n`.
    pub offset: Option<u64>,
}

/// Set-expression: a plain select or a set operation over two bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A `SELECT` block.
    Select(Box<Select>),
    /// `left (UNION|INTERSECT|EXCEPT) [ALL] right`.
    SetOp {
        /// Which set operation.
        op: SetOpKind,
        /// Bag semantics (`ALL`).
        all: bool,
        /// Left input.
        left: Box<SetExpr>,
        /// Right input.
        right: Box<SetExpr>,
    },
}

/// Set operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// `UNION`
    Union,
    /// `INTERSECT`
    Intersect,
    /// `EXCEPT`
    Except,
}

impl SetOpKind {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            SetOpKind::Union => "UNION",
            SetOpKind::Intersect => "INTERSECT",
            SetOpKind::Except => "EXCEPT",
        }
    }
}

/// One `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `DISTINCT`.
    pub distinct: bool,
    /// Projection items.
    pub projection: Vec<SelectItem>,
    /// `FROM` content; empty for `SELECT 1`.
    pub from: Option<TableRef>,
    /// `WHERE`.
    pub filter: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING`.
    pub having: Option<Expr>,
}

/// A projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The expression.
        expr: Expr,
        /// Optional alias.
        alias: Option<String>,
    },
}

/// Table references with joins.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// `name [AS alias]`
    Table {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// `left [INNER|LEFT] JOIN right ON cond` (or comma → `Cross`).
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join condition; `None` for cross joins.
        on: Option<Expr>,
        /// Join kind.
        kind: JoinKind,
    },
    /// `(query) AS alias`
    Subquery {
        /// The derived-table query.
        query: Box<Query>,
        /// Mandatory alias.
        alias: String,
    },
}

/// Join kinds of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `INNER JOIN` / `JOIN`.
    Inner,
    /// `LEFT [OUTER] JOIN`.
    Left,
    /// Comma or `CROSS JOIN`.
    Cross,
}

/// A parsed (unbound) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `[qualifier.]name`
    Column {
        /// Table name or alias, if qualified.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal value.
    Literal(Datum),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT e`
    Not(Box<Expr>),
    /// `-e`
    Neg(Box<Expr>),
    /// `e IS NULL`
    IsNull(Box<Expr>),
    /// `e IS NOT NULL`
    IsNotNull(Box<Expr>),
    /// `e IN (e1, ...)`
    InList {
        /// Probe.
        expr: Box<Expr>,
        /// Candidates.
        list: Vec<Expr>,
    },
    /// `e BETWEEN lo AND hi`
    Between {
        /// Probe.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
    },
    /// `e [NOT] LIKE 'pattern'`
    Like {
        /// Probe.
        expr: Box<Expr>,
        /// Pattern.
        pattern: String,
        /// Negated.
        negated: bool,
    },
    /// Function or aggregate call; `COUNT(*)` sets `wildcard`.
    Call {
        /// Function name (unresolved).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `COUNT(*)`.
        wildcard: bool,
    },
    /// `(SELECT ...)` — uncorrelated scalar subquery.
    Subquery(Box<Query>),
}

impl Expr {
    /// Column shorthand.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_owned(),
        }
    }

    /// Qualified column shorthand.
    pub fn qcol(qualifier: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.to_owned()),
            name: name.to_owned(),
        }
    }

    /// Integer literal shorthand.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Datum::Int(v))
    }

    /// Binary-op shorthand.
    pub fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `true` if the expression contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Call { name, args, .. } => {
                crate::expr::AggFunc::from_name(name).is_some()
                    || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Not(e) | Expr::Neg(e) | Expr::IsNull(e) | Expr::IsNotNull(e) => {
                e.contains_aggregate()
            }
            Expr::InList { expr, list } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between { expr, low, high } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::Like { expr, .. } => expr.contains_aggregate(),
            Expr::Column { .. } | Expr::Literal(_) | Expr::Subquery(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Call {
            name: "SUM".into(),
            args: vec![Expr::col("x")],
            wildcard: false,
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::bin(BinOp::Gt, agg, Expr::int(5));
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        let func = Expr::Call {
            name: "ABS".into(),
            args: vec![Expr::col("x")],
            wildcard: false,
        };
        assert!(!func.contains_aggregate());
        // A subquery's aggregates do not make the outer expression aggregated.
        let sub = Expr::Subquery(Box::new(Query {
            body: SetExpr::Select(Box::new(Select {
                distinct: false,
                projection: vec![],
                from: None,
                filter: None,
                group_by: vec![],
                having: None,
            })),
            order_by: vec![],
            limit: None,
            offset: None,
        }));
        assert!(!sub.contains_aggregate());
    }
}
