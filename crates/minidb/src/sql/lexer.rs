//! SQL tokenizer.

use crate::{Error, Result};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original spelling preserved).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, `''` unescaped).
    Str(String),
    /// One of `( ) , . * + - / % = < > <= >= <> !=` and `;`.
    Symbol(&'static str),
}

impl Token {
    /// Keyword test (case-insensitive); identifiers double as keywords.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => pos += 1,
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                // Line comment.
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'\'' => {
                pos += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(pos) {
                        None => return Err(Error::Parse("unterminated string literal".into())),
                        Some(b'\'') if bytes.get(pos + 1) == Some(&b'\'') => {
                            s.push('\'');
                            pos += 2;
                        }
                        Some(b'\'') => {
                            pos += 1;
                            break;
                        }
                        Some(&c) if c < 0x80 => {
                            s.push(c as char);
                            pos += 1;
                        }
                        Some(_) => {
                            // Multi-byte UTF-8.
                            let start = pos;
                            pos += 1;
                            while pos < bytes.len() && bytes[pos] & 0xC0 == 0x80 {
                                pos += 1;
                            }
                            s.push_str(
                                std::str::from_utf8(&bytes[start..pos])
                                    .map_err(|_| Error::Parse("invalid UTF-8".into()))?,
                            );
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            b'0'..=b'9' => {
                let start = pos;
                let mut is_float = false;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_digit()
                        || (bytes[pos] == b'.'
                            && !is_float
                            && bytes.get(pos + 1).is_some_and(u8::is_ascii_digit)))
                {
                    if bytes[pos] == b'.' {
                        is_float = true;
                    }
                    pos += 1;
                }
                let text = std::str::from_utf8(&bytes[start..pos]).expect("digits are ASCII");
                if is_float {
                    tokens
                        .push(Token::Float(text.parse().map_err(|e| {
                            Error::Parse(format!("bad float {text:?}: {e}"))
                        })?));
                } else {
                    tokens
                        .push(Token::Int(text.parse().map_err(|e| {
                            Error::Parse(format!("bad integer {text:?}: {e}"))
                        })?));
                }
            }
            b'.' if bytes.get(pos + 1).is_some_and(u8::is_ascii_digit) => {
                let start = pos;
                pos += 1;
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                let text = std::str::from_utf8(&bytes[start..pos]).expect("digits are ASCII");
                tokens
                    .push(Token::Float(text.parse().map_err(|e| {
                        Error::Parse(format!("bad float {text:?}: {e}"))
                    })?));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                tokens.push(Token::Word(
                    std::str::from_utf8(&bytes[start..pos])
                        .expect("identifier bytes are ASCII")
                        .to_owned(),
                ));
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol("<="));
                    pos += 2;
                } else if bytes.get(pos + 1) == Some(&b'>') {
                    tokens.push(Token::Symbol("<>"));
                    pos += 2;
                } else {
                    tokens.push(Token::Symbol("<"));
                    pos += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(">="));
                    pos += 2;
                } else {
                    tokens.push(Token::Symbol(">"));
                    pos += 1;
                }
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol("<>"));
                    pos += 2;
                } else {
                    return Err(Error::Parse("unexpected '!'".into()));
                }
            }
            b'(' | b')' | b',' | b'.' | b'*' | b'+' | b'-' | b'/' | b'%' | b'=' | b';' => {
                let symbol = match b {
                    b'(' => "(",
                    b')' => ")",
                    b',' => ",",
                    b'.' => ".",
                    b'*' => "*",
                    b'+' => "+",
                    b'-' => "-",
                    b'/' => "/",
                    b'%' => "%",
                    b'=' => "=",
                    _ => ";",
                };
                tokens.push(Token::Symbol(symbol));
                pos += 1;
            }
            other => {
                return Err(Error::Parse(format!(
                    "unexpected character {:?} at byte {pos}",
                    other as char
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_query() {
        let tokens =
            tokenize("SELECT t0.c0 FROM t0 WHERE c0 <= 1.5 -- comment\nAND x <> 'o''k'").unwrap();
        assert!(tokens.contains(&Token::Symbol("<=")));
        assert!(tokens.contains(&Token::Float(1.5)));
        assert!(tokens.contains(&Token::Str("o'k".into())));
        assert!(tokens.iter().any(|t| t.is_kw("select")));
        assert!(tokens.iter().any(|t| t.is_kw("AND")));
    }

    #[test]
    fn numbers() {
        assert_eq!(tokenize("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(tokenize("0.25").unwrap(), vec![Token::Float(0.25)]);
        assert_eq!(tokenize(".5").unwrap(), vec![Token::Float(0.5)]);
        // `1.` does not consume the dot (it could be `tuple.column`).
        assert_eq!(
            tokenize("1.c0").unwrap(),
            vec![Token::Int(1), Token::Symbol("."), Token::Word("c0".into())]
        );
    }

    #[test]
    fn not_equals_spellings() {
        assert_eq!(tokenize("a != b").unwrap()[1], Token::Symbol("<>"));
        assert_eq!(tokenize("a <> b").unwrap()[1], Token::Symbol("<>"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ? b").is_err());
    }

    #[test]
    fn unicode_strings() {
        let tokens = tokenize("SELECT 'café'").unwrap();
        assert_eq!(tokens[1], Token::Str("café".into()));
    }
}
