//! The SQL front-end: lexer, AST and recursive-descent parser.
//!
//! The subset covers what the paper's evaluation needs: DDL (`CREATE TABLE`,
//! `CREATE INDEX`, `DROP TABLE`, `ANALYZE`), DML (`INSERT`, `UPDATE`,
//! `DELETE`), and queries with joins, grouping, `HAVING` with uncorrelated
//! scalar subqueries (TPC-H q11), set operations, `ORDER BY` and `LIMIT`,
//! plus the `EXPLAIN` / `EXPLAIN ANALYZE` prefixes that expose serialized
//! plans.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::*;
pub use parser::parse_statement;
