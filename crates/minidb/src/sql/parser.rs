//! Recursive-descent SQL parser.

use crate::datum::{DataType, Datum};
use crate::expr::BinOp;
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Token};
use crate::{Error, Result};

/// Parses one SQL statement (a trailing `;` is tolerated).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let statement = parser.statement()?;
    parser.eat_symbol(";");
    if parser.pos < parser.tokens.len() {
        return Err(Error::Parse(format!(
            "trailing tokens after statement: {:?}",
            &parser.tokens[parser.pos..]
        )));
    }
    Ok(statement)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, symbol: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == symbol) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, symbol: &str) -> Result<()> {
        if self.eat_symbol(symbol) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected '{symbol}', found {:?}",
                self.peek()
            )))
        }
    }

    fn identifier(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Word(w)) => Ok(w.to_ascii_lowercase()),
            other => Err(Error::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // -- statements --------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(t) if t.is_kw("CREATE") => self.create(),
            Some(t) if t.is_kw("DROP") => self.drop(),
            Some(t) if t.is_kw("INSERT") => self.insert(),
            Some(t) if t.is_kw("UPDATE") => self.update(),
            Some(t) if t.is_kw("DELETE") => self.delete(),
            Some(t) if t.is_kw("ANALYZE") => {
                self.pos += 1;
                let table = match self.peek() {
                    Some(Token::Word(_)) => Some(self.identifier()?),
                    _ => None,
                };
                Ok(Statement::Analyze { table })
            }
            Some(t) if t.is_kw("EXPLAIN") => {
                self.pos += 1;
                let analyze = self.eat_kw("ANALYZE");
                // Tolerate a PostgreSQL-style options list: EXPLAIN (...).
                if self.eat_symbol("(") {
                    let mut depth = 1;
                    while depth > 0 {
                        match self.next() {
                            Some(Token::Symbol("(")) => depth += 1,
                            Some(Token::Symbol(")")) => depth -= 1,
                            Some(_) => {}
                            None => {
                                return Err(Error::Parse("unterminated EXPLAIN options".into()))
                            }
                        }
                    }
                }
                Ok(Statement::Explain {
                    analyze,
                    query: self.query()?,
                })
            }
            Some(t) if t.is_kw("SELECT") || matches!(t, Token::Symbol("(")) => {
                Ok(Statement::Query(self.query()?))
            }
            other => Err(Error::Parse(format!(
                "unexpected start of statement: {other:?}"
            ))),
        }
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            let name = self.identifier()?;
            self.expect_symbol("(")?;
            let mut columns = Vec::new();
            loop {
                let col = self.identifier()?;
                let data_type = self.data_type()?;
                let mut pk = false;
                if self.eat_kw("PRIMARY") {
                    self.expect_kw("KEY")?;
                    pk = true;
                }
                // Tolerate NOT NULL / NULL noise.
                if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                } else {
                    let _ = self.eat_kw("NULL");
                }
                columns.push((col, data_type, pk));
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            Ok(Statement::CreateTable { name, columns })
        } else {
            let unique = self.eat_kw("UNIQUE");
            self.expect_kw("INDEX")?;
            let name = self.identifier()?;
            self.expect_kw("ON")?;
            let table = self.identifier()?;
            self.expect_symbol("(")?;
            let mut columns = vec![self.identifier()?];
            while self.eat_symbol(",") {
                columns.push(self.identifier()?);
            }
            self.expect_symbol(")")?;
            Ok(Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
            })
        }
    }

    fn data_type(&mut self) -> Result<DataType> {
        let word = self.identifier()?;
        let dt = match word.as_str() {
            "int" | "integer" | "bigint" | "smallint" => DataType::Int,
            "float" | "real" | "double" | "decimal" | "numeric" => DataType::Float,
            "text" | "varchar" | "char" | "string" => DataType::Text,
            "bool" | "boolean" => DataType::Bool,
            "date" => DataType::Date,
            other => return Err(Error::Parse(format!("unknown type {other:?}"))),
        };
        // VARCHAR(n) / DECIMAL(p, s) width specs are parsed and ignored.
        if self.eat_symbol("(") {
            while !self.eat_symbol(")") {
                if self.next().is_none() {
                    return Err(Error::Parse("unterminated type parameters".into()));
                }
            }
        }
        Ok(dt)
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.identifier()?;
        let mut columns = None;
        if matches!(self.peek(), Some(Token::Symbol("(")))
            && !self.peek2().is_some_and(|t| t.is_kw("SELECT"))
        {
            // Could be a column list or VALUES-less form; column list only.
            self.expect_symbol("(")?;
            let mut cols = vec![self.identifier()?];
            while self.eat_symbol(",") {
                cols.push(self.identifier()?);
            }
            self.expect_symbol(")")?;
            columns = Some(cols);
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol("(")?;
            let mut row = vec![self.expr()?];
            while self.eat_symbol(",") {
                row.push(self.expr()?);
            }
            self.expect_symbol(")")?;
            rows.push(row);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.identifier()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_symbol("=")?;
            sets.push((col, self.expr()?));
            if !self.eat_symbol(",") {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            filter,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.identifier()?;
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn drop(&mut self) -> Result<Statement> {
        self.expect_kw("DROP")?;
        self.expect_kw("TABLE")?;
        let name = self.identifier()?;
        Ok(Statement::DropTable { name })
    }

    // -- queries ------------------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        let body = self.set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    let _ = self.eat_kw("ASC");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.unsigned()?);
        }
        if self.eat_kw("OFFSET") {
            offset = Some(self.unsigned()?);
        }
        Ok(Query {
            body,
            order_by,
            limit,
            offset,
        })
    }

    fn unsigned(&mut self) -> Result<u64> {
        match self.next() {
            Some(Token::Int(i)) if i >= 0 => Ok(i as u64),
            other => Err(Error::Parse(format!(
                "expected non-negative integer, found {other:?}"
            ))),
        }
    }

    fn set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.set_primary()?;
        loop {
            let op = if self.peek().is_some_and(|t| t.is_kw("UNION")) {
                SetOpKind::Union
            } else if self.peek().is_some_and(|t| t.is_kw("INTERSECT")) {
                SetOpKind::Intersect
            } else if self.peek().is_some_and(|t| t.is_kw("EXCEPT")) {
                SetOpKind::Except
            } else {
                break;
            };
            self.pos += 1;
            let all = self.eat_kw("ALL");
            let right = self.set_primary()?;
            left = SetExpr::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn set_primary(&mut self) -> Result<SetExpr> {
        if self.eat_symbol("(") {
            let inner = self.set_expr()?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        Ok(SetExpr::Select(Box::new(self.select()?)))
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut projection = vec![self.select_item()?];
        while self.eat_symbol(",") {
            projection.push(self.select_item()?);
        }
        let from = if self.eat_kw("FROM") {
            Some(self.table_ref()?)
        } else {
            None
        };
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat_symbol(",") {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            filter,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Wildcard);
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.identifier()?)
        } else {
            match self.peek() {
                // Bare alias (not a keyword that continues the query).
                Some(Token::Word(w)) if !is_reserved(w) => Some(self.identifier()?),
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_factor()?;
        loop {
            if self.eat_symbol(",") {
                let right = self.table_factor()?;
                left = TableRef::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    on: None,
                    kind: JoinKind::Cross,
                };
            } else if self.peek().is_some_and(|t| {
                t.is_kw("JOIN") || t.is_kw("INNER") || t.is_kw("LEFT") || t.is_kw("CROSS")
            }) {
                let kind = if self.eat_kw("LEFT") {
                    let _ = self.eat_kw("OUTER");
                    JoinKind::Left
                } else if self.eat_kw("CROSS") {
                    JoinKind::Cross
                } else {
                    let _ = self.eat_kw("INNER");
                    JoinKind::Inner
                };
                self.expect_kw("JOIN")?;
                let right = self.table_factor()?;
                let on = if kind != JoinKind::Cross {
                    self.expect_kw("ON")?;
                    Some(self.expr()?)
                } else {
                    None
                };
                left = TableRef::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    on,
                    kind,
                };
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn table_factor(&mut self) -> Result<TableRef> {
        if self.eat_symbol("(") {
            // Derived table.
            let query = self.query()?;
            self.expect_symbol(")")?;
            let _ = self.eat_kw("AS");
            let alias = self.identifier()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.identifier()?;
        let alias = if self.eat_kw("AS") {
            Some(self.identifier()?)
        } else {
            match self.peek() {
                Some(Token::Word(w)) if !is_reserved(w) => Some(self.identifier()?),
                _ => None,
            }
        };
        Ok(TableRef::Table { name, alias })
    }

    // -- expressions ---------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(if negated {
                Expr::IsNotNull(Box::new(left))
            } else {
                Expr::IsNull(Box::new(left))
            });
        }
        // [NOT] IN / BETWEEN / LIKE
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect_symbol("(")?;
            if self.peek().is_some_and(|t| t.is_kw("SELECT")) {
                return Err(Error::Parse(
                    "IN (SELECT ...) is not supported; use scalar comparisons".into(),
                ));
            }
            let mut list = vec![self.expr()?];
            while self.eat_symbol(",") {
                list.push(self.expr()?);
            }
            self.expect_symbol(")")?;
            let in_expr = Expr::InList {
                expr: Box::new(left),
                list,
            };
            return Ok(if negated {
                Expr::Not(Box::new(in_expr))
            } else {
                in_expr
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            let between = Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
            };
            return Ok(if negated {
                Expr::Not(Box::new(between))
            } else {
                between
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.next() {
                Some(Token::Str(s)) => s,
                other => {
                    return Err(Error::Parse(format!(
                        "LIKE needs a string pattern, found {other:?}"
                    )))
                }
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if negated {
            return Err(Error::Parse("dangling NOT".into()));
        }
        let op = match self.peek() {
            Some(Token::Symbol("=")) => Some(BinOp::Eq),
            Some(Token::Symbol("<>")) => Some(BinOp::Ne),
            Some(Token::Symbol("<")) => Some(BinOp::Lt),
            Some(Token::Symbol("<=")) => Some(BinOp::Le),
            Some(Token::Symbol(">")) => Some(BinOp::Gt),
            Some(Token::Symbol(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::bin(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol("+")) => BinOp::Add,
                Some(Token::Symbol("-")) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol("*")) => BinOp::Mul,
                Some(Token::Symbol("/")) => BinOp::Div,
                Some(Token::Symbol("%")) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat_symbol("+") {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::Literal(Datum::Int(i))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Datum::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Datum::Str(s))),
            Some(Token::Symbol("(")) => {
                if self.peek().is_some_and(|t| t.is_kw("SELECT")) {
                    let query = self.query()?;
                    self.expect_symbol(")")?;
                    return Ok(Expr::Subquery(Box::new(query)));
                }
                let inner = self.expr()?;
                self.expect_symbol(")")?;
                Ok(inner)
            }
            Some(Token::Word(w)) => {
                if is_reserved(&w) {
                    return Err(Error::Parse(format!(
                        "reserved word {w:?} cannot start an expression"
                    )));
                }
                if w.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Datum::Null));
                }
                if w.eq_ignore_ascii_case("TRUE") {
                    return Ok(Expr::Literal(Datum::Bool(true)));
                }
                if w.eq_ignore_ascii_case("FALSE") {
                    return Ok(Expr::Literal(Datum::Bool(false)));
                }
                // Function call.
                if matches!(self.peek(), Some(Token::Symbol("("))) {
                    self.pos += 1;
                    if self.eat_symbol("*") {
                        self.expect_symbol(")")?;
                        return Ok(Expr::Call {
                            name: w,
                            args: vec![],
                            wildcard: true,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.eat_symbol(")") {
                        args.push(self.expr()?);
                        while self.eat_symbol(",") {
                            args.push(self.expr()?);
                        }
                        self.expect_symbol(")")?;
                    }
                    return Ok(Expr::Call {
                        name: w,
                        args,
                        wildcard: false,
                    });
                }
                // Qualified column.
                if self.eat_symbol(".") {
                    let name = self.identifier()?;
                    return Ok(Expr::Column {
                        qualifier: Some(w.to_ascii_lowercase()),
                        name,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name: w.to_ascii_lowercase(),
                })
            }
            other => Err(Error::Parse(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }
}

/// Keywords that terminate an implicit alias position.
fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "select",
        "from",
        "where",
        "group",
        "having",
        "order",
        "limit",
        "offset",
        "union",
        "intersect",
        "except",
        "join",
        "inner",
        "left",
        "right",
        "cross",
        "on",
        "as",
        "and",
        "or",
        "not",
        "asc",
        "desc",
        "values",
        "set",
        "by",
        "all",
        "distinct",
    ];
    RESERVED.contains(&word.to_ascii_lowercase().as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ddl() {
        let s = parse_statement("CREATE TABLE t2 (c0 INT PRIMARY KEY, c1 VARCHAR(10) NOT NULL)")
            .unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "t2");
                assert_eq!(columns.len(), 2);
                assert!(columns[0].2);
                assert_eq!(columns[1].1, DataType::Text);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("CREATE UNIQUE INDEX i0 ON t0(c1)").unwrap(),
            Statement::CreateIndex { unique: true, .. }
        ));
        assert!(matches!(
            parse_statement("DROP TABLE t0").unwrap(),
            Statement::DropTable { .. }
        ));
        assert!(matches!(
            parse_statement("ANALYZE t0").unwrap(),
            Statement::Analyze { table: Some(_) }
        ));
    }

    #[test]
    fn parses_insert_update_delete() {
        let s = parse_statement("INSERT INTO t0(c1, c0) VALUES(0, 1), (2, NULL)").unwrap();
        match s {
            Statement::Insert { columns, rows, .. } => {
                assert_eq!(columns.unwrap(), vec!["c1", "c0"]);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], Expr::Literal(Datum::Null));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("UPDATE t0 SET c0 = c0 + 1 WHERE c0 < 5").unwrap(),
            Statement::Update { .. }
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t0").unwrap(),
            Statement::Delete { filter: None, .. }
        ));
    }

    #[test]
    fn parses_the_papers_listing1_query() {
        let sql = "SELECT t1.c0 FROM t0 INNER JOIN t1 ON t0.c0 = t1.c0 WHERE t0.c0 < 100 \
                   GROUP BY t1.c0 UNION SELECT c0 FROM t2 WHERE c0 < 10";
        let Statement::Query(q) = parse_statement(sql).unwrap() else {
            panic!("expected query");
        };
        let SetExpr::SetOp { op, all, .. } = &q.body else {
            panic!("expected set op");
        };
        assert_eq!(*op, SetOpKind::Union);
        assert!(!all);
    }

    #[test]
    fn parses_the_papers_listing3_query() {
        let sql = "SELECT * FROM t0 WHERE t0.c1 IN (GREATEST(0.1, 0.2))";
        let Statement::Query(q) = parse_statement(sql).unwrap() else {
            panic!("expected query");
        };
        let SetExpr::Select(select) = &q.body else {
            panic!()
        };
        assert!(matches!(select.projection[0], SelectItem::Wildcard));
        assert!(matches!(select.filter, Some(Expr::InList { .. })));
    }

    #[test]
    fn parses_explain_variants() {
        assert!(matches!(
            parse_statement("EXPLAIN SELECT * FROM t0").unwrap(),
            Statement::Explain { analyze: false, .. }
        ));
        assert!(matches!(
            parse_statement("EXPLAIN ANALYZE SELECT * FROM t0").unwrap(),
            Statement::Explain { analyze: true, .. }
        ));
        assert!(matches!(
            parse_statement("EXPLAIN (SUMMARY TRUE) SELECT * FROM t0").unwrap(),
            Statement::Explain { analyze: false, .. }
        ));
    }

    #[test]
    fn parses_group_having_subquery() {
        let sql = "SELECT c0, SUM(c1) s FROM t0 GROUP BY c0 \
                   HAVING SUM(c1) > (SELECT SUM(c1) * 0.0001 FROM t0) ORDER BY s DESC LIMIT 10";
        let Statement::Query(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].1, "DESC");
        let SetExpr::Select(select) = &q.body else {
            panic!()
        };
        assert!(select.having.as_ref().unwrap().contains_aggregate());
    }

    #[test]
    fn parses_joins_and_aliases() {
        let sql = "SELECT a.x FROM t0 AS a, t1 b LEFT JOIN t2 ON b.y = t2.y CROSS JOIN t3";
        let Statement::Query(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let SetExpr::Select(select) = &q.body else {
            panic!()
        };
        // ((t0 a , t1 b) LEFT JOIN t2) CROSS JOIN t3
        let TableRef::Join { kind, on, .. } = select.from.as_ref().unwrap() else {
            panic!()
        };
        assert_eq!(*kind, JoinKind::Cross);
        assert!(on.is_none());
    }

    #[test]
    fn parses_derived_tables() {
        let sql = "SELECT s.x FROM (SELECT c0 AS x FROM t0) AS s WHERE s.x > 1";
        let Statement::Query(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let SetExpr::Select(select) = &q.body else {
            panic!()
        };
        assert!(matches!(select.from, Some(TableRef::Subquery { .. })));
    }

    #[test]
    fn expression_precedence() {
        let Statement::Query(q) = parse_statement("SELECT 1 + 2 * 3").unwrap() else {
            panic!()
        };
        let SetExpr::Select(select) = &q.body else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &select.projection[0] else {
            panic!()
        };
        // + at the top, * nested.
        let Expr::Binary {
            op: BinOp::Add,
            right,
            ..
        } = expr
        else {
            panic!("{expr:?}")
        };
        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn not_between_like() {
        let sql = "SELECT * FROM t WHERE a NOT BETWEEN 1 AND 2 AND b NOT LIKE 'x%' AND NOT c = 1";
        assert!(parse_statement(sql).is_ok());
    }

    #[test]
    fn rejects_malformed_sql() {
        for bad in [
            "SELECT",
            "SELECT FROM t",
            "CREATE TABLE t",
            "INSERT INTO t VALUES",
            "SELECT * FROM t WHERE a IN (SELECT b FROM u)",
            "SELECT * FROM t extra garbage (",
            "UPDATE t SET",
            "SELECT * FROM (SELECT 1)",
        ] {
            assert!(parse_statement(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn tolerates_trailing_semicolon() {
        assert!(parse_statement("SELECT 1;").is_ok());
    }
}
