//! Table statistics and selectivity estimation.
//!
//! The estimates flowing out of this module are what CERT (paper A.1)
//! audits: the planner derives each operator's estimated cardinality from
//! per-column statistics — row counts, null fractions, distinct counts,
//! min/max, and equi-depth histograms — mirroring the histogram lineage the
//! paper cites (Ioannidis). CERT's oracle is *monotonicity*: a query made
//! strictly more restrictive must not get a larger estimate.

use crate::datum::{Datum, Row};
use crate::expr::{BinOp, BoundExpr};
use crate::storage::Heap;

/// Number of histogram buckets (PostgreSQL's default statistics target is
/// 100; a smaller resolution is plenty at our table sizes).
const HISTOGRAM_BUCKETS: usize = 32;

/// Default selectivities for predicates the estimator cannot resolve,
/// matching PostgreSQL's `DEFAULT_*_SEL` spirit.
pub mod defaults {
    /// Equality against an unknown value.
    pub const EQ: f64 = 0.005;
    /// Inequality/range against an unknown value.
    pub const RANGE: f64 = 1.0 / 3.0;
    /// LIKE pattern.
    pub const LIKE: f64 = 0.1;
}

/// Statistics for one column.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Fraction of NULLs.
    pub null_frac: f64,
    /// Number of distinct non-null values.
    pub n_distinct: usize,
    /// Minimum non-null value.
    pub min: Option<Datum>,
    /// Maximum non-null value.
    pub max: Option<Datum>,
    /// Equi-depth histogram bucket boundaries (ascending, non-null), with
    /// `boundaries[0]` = min and `boundaries[last]` = max.
    pub histogram: Vec<Datum>,
}

impl ColumnStats {
    /// Computes stats over the column values.
    pub fn compute(values: &[&Datum]) -> ColumnStats {
        let total = values.len();
        if total == 0 {
            return ColumnStats::default();
        }
        let mut non_null: Vec<&Datum> = values.iter().copied().filter(|d| !d.is_null()).collect();
        let null_frac = (total - non_null.len()) as f64 / total as f64;
        non_null.sort_by(|a, b| a.total_cmp(b));
        let mut n_distinct = 0;
        for (i, v) in non_null.iter().enumerate() {
            if i == 0 || !v.group_eq(non_null[i - 1]) {
                n_distinct += 1;
            }
        }
        let min = non_null.first().map(|d| (*d).clone());
        let max = non_null.last().map(|d| (*d).clone());
        let mut histogram = Vec::new();
        if !non_null.is_empty() {
            let buckets = HISTOGRAM_BUCKETS.min(non_null.len());
            for b in 0..=buckets {
                let idx = (b * (non_null.len() - 1)) / buckets.max(1);
                histogram.push(non_null[idx].clone());
            }
        }
        ColumnStats {
            null_frac,
            n_distinct,
            min,
            max,
            histogram,
        }
    }

    /// Selectivity of `col = value`.
    pub fn eq_selectivity(&self, value: &Datum) -> f64 {
        if value.is_null() {
            return 0.0; // `= NULL` never matches
        }
        if self.n_distinct == 0 {
            return 0.0;
        }
        // Outside the observed domain → tiny.
        if let (Some(min), Some(max)) = (&self.min, &self.max) {
            let below = value.sql_cmp(min) == Some(std::cmp::Ordering::Less);
            let above = value.sql_cmp(max) == Some(std::cmp::Ordering::Greater);
            if below || above {
                return 0.0;
            }
        }
        (1.0 - self.null_frac) / self.n_distinct as f64
    }

    /// Selectivity of a range predicate over the histogram. Open bounds are
    /// `None`; boundaries are inclusive on both ends (BETWEEN semantics; the
    /// off-by-one of strict bounds is below histogram resolution).
    pub fn range_selectivity(&self, low: Option<&Datum>, high: Option<&Datum>) -> f64 {
        if self.histogram.len() < 2 {
            return defaults::RANGE;
        }
        let frac_below = |v: &Datum| -> f64 {
            // Fraction of non-null values strictly below v.
            let n = self.histogram.len() - 1;
            let mut covered = 0.0;
            for w in self.histogram.windows(2) {
                let (lo, hi) = (&w[0], &w[1]);
                if v.sql_cmp(lo) != Some(std::cmp::Ordering::Greater) {
                    break;
                }
                if v.sql_cmp(hi) == Some(std::cmp::Ordering::Greater) {
                    covered += 1.0;
                } else {
                    // Linear interpolation within the bucket where possible.
                    covered += match (lo.as_f64(), hi.as_f64(), v.as_f64()) {
                        (Some(a), Some(b), Some(x)) if b > a => ((x - a) / (b - a)).clamp(0.0, 1.0),
                        _ => 0.5,
                    };
                    break;
                }
            }
            covered / n as f64
        };
        let lo_frac = low.map_or(0.0, &frac_below);
        let hi_frac = high.map_or(1.0, |v| {
            // Inclusive high bound: everything below, plus one distinct value.
            let mut f = frac_below(v);
            if self.n_distinct > 0 {
                f += 1.0 / self.n_distinct as f64;
            }
            f.min(1.0)
        });
        ((hi_frac - lo_frac).max(0.0) * (1.0 - self.null_frac)).clamp(0.0, 1.0)
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Live row count at ANALYZE time.
    pub row_count: usize,
    /// Per-column statistics.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Computes statistics over the heap.
    pub fn compute(heap: &Heap, column_count: usize) -> TableStats {
        let rows: Vec<&Row> = heap.scan().map(|(_, r)| r).collect();
        let mut columns = Vec::with_capacity(column_count);
        for c in 0..column_count {
            let values: Vec<&Datum> = rows.iter().map(|r| &r[c]).collect();
            columns.push(ColumnStats::compute(&values));
        }
        TableStats {
            row_count: rows.len(),
            columns,
        }
    }
}

/// Estimates the selectivity of a bound predicate, resolving column indices
/// to per-column stats through `stats_of`. Conjunctions multiply
/// (independence assumption), disjunctions use inclusion–exclusion.
///
/// `fault_inflate_conjuncts` models the CERT-class estimator bugs of paper
/// Table V: when set, conjunctions take the *maximum* instead of the product
/// (so adding a predicate can fail to shrink — or can grow — the estimate).
pub fn selectivity(
    expr: &BoundExpr,
    stats_of: &dyn Fn(usize) -> Option<ColumnStats>,
    fault_inflate_conjuncts: bool,
) -> f64 {
    match expr {
        BoundExpr::Binary { op, left, right } => match op {
            BinOp::And => {
                let l = selectivity(left, stats_of, fault_inflate_conjuncts);
                let r = selectivity(right, stats_of, fault_inflate_conjuncts);
                if fault_inflate_conjuncts {
                    // Injected fault: the optimizer "forgets" to combine
                    // conjunct selectivities.
                    l.max(r).min(1.0)
                } else {
                    l * r
                }
            }
            BinOp::Or => {
                let l = selectivity(left, stats_of, fault_inflate_conjuncts);
                let r = selectivity(right, stats_of, fault_inflate_conjuncts);
                (l + r - l * r).clamp(0.0, 1.0)
            }
            BinOp::Eq => column_vs_literal(left, right)
                .map(|(col, lit)| stats_of(col).map_or(defaults::EQ, |s| s.eq_selectivity(&lit)))
                .unwrap_or(defaults::EQ),
            BinOp::Ne => {
                1.0 - column_vs_literal(left, right)
                    .map(|(col, lit)| {
                        stats_of(col).map_or(defaults::EQ, |s| s.eq_selectivity(&lit))
                    })
                    .unwrap_or(defaults::EQ)
            }
            BinOp::Lt | BinOp::Le => range_sel(left, right, stats_of, false),
            BinOp::Gt | BinOp::Ge => range_sel(left, right, stats_of, true),
            _ => defaults::RANGE,
        },
        BoundExpr::Not(inner) => {
            (1.0 - selectivity(inner, stats_of, fault_inflate_conjuncts)).clamp(0.0, 1.0)
        }
        BoundExpr::IsNull(inner) => single_column(inner)
            .and_then(stats_of)
            .map_or(defaults::EQ, |s| s.null_frac),
        BoundExpr::IsNotNull(inner) => single_column(inner)
            .and_then(stats_of)
            .map_or(1.0 - defaults::EQ, |s| 1.0 - s.null_frac),
        BoundExpr::InList { expr, list } => {
            let per_item = column_of(expr)
                .and_then(stats_of)
                .map_or(defaults::EQ, |s| {
                    if s.n_distinct == 0 {
                        0.0
                    } else {
                        (1.0 - s.null_frac) / s.n_distinct as f64
                    }
                });
            (per_item * list.len() as f64).min(1.0)
        }
        BoundExpr::Between { expr, low, high } => {
            if let (Some(col), BoundExpr::Literal(lo), BoundExpr::Literal(hi)) =
                (column_of(expr), low.as_ref(), high.as_ref())
            {
                stats_of(col).map_or(defaults::RANGE, |s| s.range_selectivity(Some(lo), Some(hi)))
            } else {
                defaults::RANGE
            }
        }
        BoundExpr::Like { negated, .. } => {
            if *negated {
                1.0 - defaults::LIKE
            } else {
                defaults::LIKE
            }
        }
        BoundExpr::Literal(Datum::Bool(true)) => 1.0,
        BoundExpr::Literal(Datum::Bool(false)) | BoundExpr::Literal(Datum::Null) => 0.0,
        _ => defaults::RANGE,
    }
}

fn range_sel(
    left: &BoundExpr,
    right: &BoundExpr,
    stats_of: &dyn Fn(usize) -> Option<ColumnStats>,
    greater: bool,
) -> f64 {
    if let Some((col, lit)) = column_vs_literal(left, right) {
        // `col > x` when the literal is on the right; flipped when the
        // column is on the right (`x > col` ≡ `col < x`).
        let column_on_left = column_of(left).is_some();
        let effective_greater = greater == column_on_left;
        return stats_of(col).map_or(defaults::RANGE, |s| {
            if effective_greater {
                s.range_selectivity(Some(&lit), None)
            } else {
                s.range_selectivity(None, Some(&lit))
            }
        });
    }
    defaults::RANGE
}

fn column_of(e: &BoundExpr) -> Option<usize> {
    match e {
        BoundExpr::Column { index, .. } => Some(*index),
        _ => None,
    }
}

fn single_column(e: &BoundExpr) -> Option<usize> {
    column_of(e)
}

/// Extracts `(column, literal)` from `col ⊗ lit` or `lit ⊗ col`.
fn column_vs_literal(left: &BoundExpr, right: &BoundExpr) -> Option<(usize, Datum)> {
    match (left, right) {
        (BoundExpr::Column { index, .. }, BoundExpr::Literal(d)) => Some((*index, d.clone())),
        (BoundExpr::Literal(d), BoundExpr::Column { index, .. }) => Some((*index, d.clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::build::*;

    fn int_stats(values: &[i64], nulls: usize) -> ColumnStats {
        let mut owned: Vec<Datum> = values.iter().map(|&v| Datum::Int(v)).collect();
        owned.extend(std::iter::repeat_n(Datum::Null, nulls));
        let refs: Vec<&Datum> = owned.iter().collect();
        ColumnStats::compute(&refs)
    }

    #[test]
    fn computes_basic_stats() {
        let stats = int_stats(&[1, 2, 2, 3, 4], 5);
        assert_eq!(stats.n_distinct, 4);
        assert!((stats.null_frac - 0.5).abs() < 1e-9);
        assert_eq!(stats.min, Some(Datum::Int(1)));
        assert_eq!(stats.max, Some(Datum::Int(4)));
        assert!(stats.histogram.len() >= 2);
    }

    #[test]
    fn empty_column_stats() {
        let stats = ColumnStats::compute(&[]);
        assert_eq!(stats.n_distinct, 0);
        assert_eq!(stats.eq_selectivity(&Datum::Int(1)), 0.0);
        assert_eq!(stats.range_selectivity(None, None), defaults::RANGE);
    }

    #[test]
    fn eq_selectivity_uses_ndv() {
        let stats = int_stats(&[1, 2, 3, 4], 0);
        assert!((stats.eq_selectivity(&Datum::Int(2)) - 0.25).abs() < 1e-9);
        assert_eq!(stats.eq_selectivity(&Datum::Int(99)), 0.0, "out of range");
        assert_eq!(stats.eq_selectivity(&Datum::Null), 0.0);
    }

    #[test]
    fn range_selectivity_tracks_histogram() {
        let values: Vec<i64> = (0..1000).collect();
        let stats = int_stats(&values, 0);
        let half = stats.range_selectivity(None, Some(&Datum::Int(499)));
        assert!((half - 0.5).abs() < 0.05, "got {half}");
        let none = stats.range_selectivity(Some(&Datum::Int(2000)), None);
        assert!(none < 0.01);
        let all = stats.range_selectivity(None, None);
        assert!((all - 1.0).abs() < 1e-9);
        let quarter = stats.range_selectivity(Some(&Datum::Int(250)), Some(&Datum::Int(499)));
        assert!((quarter - 0.25).abs() < 0.05, "got {quarter}");
    }

    #[test]
    fn predicate_selectivity_composition() {
        let values: Vec<i64> = (0..100).collect();
        let stats = int_stats(&values, 0);
        let stats_of = |_c: usize| Some(stats.clone());

        let lt50 = bin(BinOp::Lt, col(0, "c0"), int(50));
        let s = selectivity(&lt50, &stats_of, false);
        assert!((s - 0.5).abs() < 0.1, "got {s}");

        let conj = bin(
            BinOp::And,
            lt50.clone(),
            bin(BinOp::Lt, col(0, "c0"), int(25)),
        );
        let s_conj = selectivity(&conj, &stats_of, false);
        assert!(s_conj < s, "conjunction must shrink: {s_conj} vs {s}");

        // The injected CERT fault makes conjunctions non-shrinking.
        let s_fault = selectivity(&conj, &stats_of, true);
        assert!(s_fault >= s_conj);
        assert!((s_fault - 0.5).abs() < 0.11);

        let disj = bin(
            BinOp::Or,
            lt50.clone(),
            bin(BinOp::Gt, col(0, "c0"), int(74)),
        );
        let s_disj = selectivity(&disj, &stats_of, false);
        assert!(s_disj > s, "disjunction must grow");

        let not = BoundExpr::Not(Box::new(lt50));
        assert!((selectivity(&not, &stats_of, false) - 0.5).abs() < 0.1);
    }

    #[test]
    fn null_predicates_use_null_frac() {
        let stats = int_stats(&[1, 2], 2);
        let stats_of = |_c: usize| Some(stats.clone());
        let is_null = BoundExpr::IsNull(Box::new(col(0, "c0")));
        assert!((selectivity(&is_null, &stats_of, false) - 0.5).abs() < 1e-9);
        let not_null = BoundExpr::IsNotNull(Box::new(col(0, "c0")));
        assert!((selectivity(&not_null, &stats_of, false) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn in_list_scales_with_length() {
        let values: Vec<i64> = (0..10).collect();
        let stats = int_stats(&values, 0);
        let stats_of = |_c: usize| Some(stats.clone());
        let in3 = BoundExpr::InList {
            expr: Box::new(col(0, "c0")),
            list: vec![int(1), int(2), int(3)],
        };
        assert!((selectivity(&in3, &stats_of, false) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn flipped_comparisons() {
        let values: Vec<i64> = (0..100).collect();
        let stats = int_stats(&values, 0);
        let stats_of = |_c: usize| Some(stats.clone());
        // 25 > c0  ≡  c0 < 25
        let flipped = bin(BinOp::Gt, int(25), col(0, "c0"));
        let s = selectivity(&flipped, &stats_of, false);
        assert!((s - 0.25).abs() < 0.1, "got {s}");
    }

    #[test]
    fn table_stats_compute() {
        let mut heap = Heap::new();
        heap.insert(vec![Datum::Int(1), Datum::Str("a".into())]);
        heap.insert(vec![Datum::Int(2), Datum::Null]);
        let stats = TableStats::compute(&heap, 2);
        assert_eq!(stats.row_count, 2);
        assert_eq!(stats.columns.len(), 2);
        assert!((stats.columns[1].null_frac - 0.5).abs() < 1e-9);
    }
}
