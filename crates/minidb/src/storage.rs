//! Row storage and B-tree indexes.
//!
//! Tables are append-only vectors of rows with tombstones (DELETE marks rows
//! dead rather than compacting, so row ids — the engine's TIDs — stay
//! stable, which both secondary indexes and TiDB-style `TableRowIDScan`
//! plans rely on). Indexes are `BTreeMap`s from datum keys to posting lists.

use std::collections::BTreeMap;

use crate::datum::{Datum, DatumKey, Row};
use crate::schema::IndexDef;

/// Stable row identifier within a table.
pub type RowId = usize;

/// A heap of rows plus live-ness flags.
#[derive(Debug, Default, Clone)]
pub struct Heap {
    rows: Vec<Row>,
    live: Vec<bool>,
    live_count: usize,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Appends a row, returning its id.
    pub fn insert(&mut self, row: Row) -> RowId {
        let id = self.rows.len();
        self.rows.push(row);
        self.live.push(true);
        self.live_count += 1;
        id
    }

    /// Marks a row dead; returns whether it was live.
    pub fn delete(&mut self, id: RowId) -> bool {
        if self.live.get(id).copied().unwrap_or(false) {
            self.live[id] = false;
            self.live_count -= 1;
            true
        } else {
            false
        }
    }

    /// In-place update; returns whether the row was live.
    pub fn update(&mut self, id: RowId, row: Row) -> bool {
        if self.live.get(id).copied().unwrap_or(false) {
            self.rows[id] = row;
            true
        } else {
            false
        }
    }

    /// The row at `id`, if live.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        if self.live.get(id).copied().unwrap_or(false) {
            Some(&self.rows[id])
        } else {
            None
        }
    }

    /// Iterates live `(id, row)` pairs in id order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(id, _)| self.live[*id])
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// `true` when no live rows remain.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }
}

/// A secondary (or primary) B-tree index: key → row ids.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    /// The definition this index materializes.
    pub def: IndexDef,
    map: BTreeMap<Vec<DatumKey>, Vec<RowId>>,
}

impl BTreeIndex {
    /// Builds an index over the current heap contents.
    pub fn build(def: IndexDef, heap: &Heap) -> Self {
        let mut index = BTreeIndex {
            def,
            map: BTreeMap::new(),
        };
        let ids: Vec<(RowId, Row)> = heap.scan().map(|(id, r)| (id, r.clone())).collect();
        for (id, row) in ids {
            index.insert_row(id, &row);
        }
        index
    }

    fn key_of(&self, row: &Row) -> Vec<DatumKey> {
        self.def
            .key_columns
            .iter()
            .map(|&c| row[c].group_key())
            .collect()
    }

    /// Indexes one row.
    pub fn insert_row(&mut self, id: RowId, row: &Row) {
        self.map.entry(self.key_of(row)).or_default().push(id);
    }

    /// Removes one row.
    pub fn delete_row(&mut self, id: RowId, row: &Row) {
        if let Some(ids) = self.map.get_mut(&self.key_of(row)) {
            ids.retain(|&i| i != id);
            if ids.is_empty() {
                self.map.remove(&self.key_of(row));
            }
        }
    }

    /// Row ids whose leading key column equals `key`.
    pub fn lookup_eq(&self, key: &Datum) -> Vec<RowId> {
        let low = vec![key.group_key()];
        let mut out = Vec::new();
        for (k, ids) in self.map.range(low.clone()..) {
            if k.first() != Some(&key.group_key()) {
                break;
            }
            out.extend_from_slice(ids);
        }
        let _ = low;
        out
    }

    /// Row ids whose leading key column lies in `[low, high]`; open bounds
    /// are `None`. NULL keys never match a range (SQL comparison semantics).
    pub fn lookup_range(&self, low: Option<&Datum>, high: Option<&Datum>) -> Vec<RowId> {
        let mut out = Vec::new();
        for (k, ids) in &self.map {
            let Some(first) = k.first() else { continue };
            if first.0.is_null() {
                continue;
            }
            if let Some(lo) = low {
                if first
                    .0
                    .sql_cmp(lo)
                    .is_none_or(|o| o == std::cmp::Ordering::Less)
                {
                    continue;
                }
            }
            if let Some(hi) = high {
                if first
                    .0
                    .sql_cmp(hi)
                    .is_none_or(|o| o == std::cmp::Ordering::Greater)
                {
                    break;
                }
            }
            out.extend_from_slice(ids);
        }
        out
    }

    /// All row ids in key order (index-only scans).
    pub fn scan_all(&self) -> Vec<RowId> {
        self.map.values().flatten().copied().collect()
    }

    /// Distinct key count.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// A table: heap plus its indexes.
#[derive(Debug, Clone)]
pub struct Table {
    /// Live rows.
    pub heap: Heap,
    /// Materialized indexes in creation order.
    pub indexes: Vec<BTreeIndex>,
}

impl Table {
    /// An empty table with no indexes.
    pub fn new() -> Self {
        Table {
            heap: Heap::new(),
            indexes: Vec::new(),
        }
    }

    /// Inserts a row, maintaining all indexes.
    pub fn insert(&mut self, row: Row) -> RowId {
        let id = self.heap.insert(row.clone());
        for index in &mut self.indexes {
            index.insert_row(id, &row);
        }
        id
    }

    /// Deletes a row by id, maintaining all indexes.
    pub fn delete(&mut self, id: RowId) -> bool {
        let Some(row) = self.heap.get(id).cloned() else {
            return false;
        };
        for index in &mut self.indexes {
            index.delete_row(id, &row);
        }
        self.heap.delete(id)
    }

    /// Updates a row by id, maintaining all indexes.
    pub fn update(&mut self, id: RowId, new_row: Row) -> bool {
        let Some(old) = self.heap.get(id).cloned() else {
            return false;
        };
        for index in &mut self.indexes {
            index.delete_row(id, &old);
            index.insert_row(id, &new_row);
        }
        self.heap.update(id, new_row)
    }

    /// Adds (and builds) an index.
    pub fn add_index(&mut self, def: IndexDef) {
        self.indexes.push(BTreeIndex::build(def, &self.heap));
    }

    /// The index with the given name.
    pub fn index(&self, name: &str) -> Option<&BTreeIndex> {
        let lower = name.to_ascii_lowercase();
        self.indexes.iter().find(|i| i.def.name == lower)
    }
}

impl Default for Table {
    fn default() -> Self {
        Table::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_def(cols: Vec<usize>) -> IndexDef {
        IndexDef {
            name: "i0".into(),
            table: "t".into(),
            key_columns: cols,
            unique: false,
            is_primary: false,
        }
    }

    #[test]
    fn heap_insert_delete_update() {
        let mut heap = Heap::new();
        let a = heap.insert(vec![Datum::Int(1)]);
        let b = heap.insert(vec![Datum::Int(2)]);
        assert_eq!(heap.len(), 2);
        assert!(heap.delete(a));
        assert!(!heap.delete(a), "double delete is a no-op");
        assert_eq!(heap.len(), 1);
        assert!(heap.get(a).is_none());
        assert!(heap.update(b, vec![Datum::Int(9)]));
        assert_eq!(heap.get(b).unwrap()[0], Datum::Int(9));
        assert_eq!(heap.scan().count(), 1);
        assert!(!heap.is_empty());
    }

    #[test]
    fn index_equality_lookup() {
        let mut table = Table::new();
        table.add_index(index_def(vec![0]));
        table.insert(vec![Datum::Int(5), Datum::Str("a".into())]);
        table.insert(vec![Datum::Int(5), Datum::Str("b".into())]);
        table.insert(vec![Datum::Int(7), Datum::Str("c".into())]);
        let index = &table.indexes[0];
        assert_eq!(index.lookup_eq(&Datum::Int(5)).len(), 2);
        assert_eq!(index.lookup_eq(&Datum::Int(7)).len(), 1);
        assert_eq!(index.lookup_eq(&Datum::Int(9)).len(), 0);
        assert_eq!(index.distinct_keys(), 2);
    }

    #[test]
    fn index_range_lookup_skips_nulls() {
        let mut table = Table::new();
        table.add_index(index_def(vec![0]));
        for v in [Datum::Null, Datum::Int(1), Datum::Int(3), Datum::Int(5)] {
            table.insert(vec![v]);
        }
        let index = &table.indexes[0];
        let ids = index.lookup_range(Some(&Datum::Int(2)), Some(&Datum::Int(5)));
        assert_eq!(ids.len(), 2);
        let all = index.lookup_range(None, None);
        assert_eq!(all.len(), 3, "NULL keys are not returned by ranges");
        let below = index.lookup_range(None, Some(&Datum::Int(1)));
        assert_eq!(below.len(), 1);
    }

    #[test]
    fn index_maintained_across_mutations() {
        let mut table = Table::new();
        table.add_index(index_def(vec![0]));
        let id = table.insert(vec![Datum::Int(1)]);
        table.insert(vec![Datum::Int(2)]);
        assert!(table.update(id, vec![Datum::Int(10)]));
        assert!(table.indexes[0].lookup_eq(&Datum::Int(1)).is_empty());
        assert_eq!(table.indexes[0].lookup_eq(&Datum::Int(10)).len(), 1);
        assert!(table.delete(id));
        assert!(table.indexes[0].lookup_eq(&Datum::Int(10)).is_empty());
        assert!(!table.delete(id));
        assert!(!table.update(id, vec![Datum::Int(3)]));
    }

    #[test]
    fn index_built_over_existing_rows() {
        let mut table = Table::new();
        table.insert(vec![Datum::Int(4)]);
        table.insert(vec![Datum::Int(4)]);
        table.add_index(index_def(vec![0]));
        assert_eq!(table.indexes[0].lookup_eq(&Datum::Int(4)).len(), 2);
        assert!(table.index("i0").is_some());
        assert!(table.index("nope").is_none());
    }

    #[test]
    fn composite_keys_group_by_leading_column() {
        let mut table = Table::new();
        table.add_index(index_def(vec![0, 1]));
        table.insert(vec![Datum::Int(1), Datum::Int(10)]);
        table.insert(vec![Datum::Int(1), Datum::Int(20)]);
        table.insert(vec![Datum::Int(2), Datum::Int(10)]);
        assert_eq!(table.indexes[0].lookup_eq(&Datum::Int(1)).len(), 2);
        assert_eq!(table.indexes[0].scan_all().len(), 3);
    }
}
