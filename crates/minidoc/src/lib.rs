//! # minidoc — the document-store substrate (MongoDB-like)
//!
//! The paper's evaluation touches MongoDB in three places: the study of its
//! plan representation (stage trees inside `queryPlanner.winningPlan` JSON),
//! the A.2 visualization of TPC-H q1, and the A.3 operation census over
//! TPC-H (queries 1, 3 and 4 rewritten in MQL against a single denormalized
//! collection) and YCSB. What those need from MongoDB is its *planner
//! behaviour*:
//!
//! * a single collection per query (the document model "lacks support for
//!   combining data from multiple documents" — zero Join operations in
//!   Table II);
//! * `COLLSCAN` vs `IXSCAN`+`FETCH` vs `IDHACK` access stages;
//! * `PROJECTION_SIMPLE`, `SORT`, `LIMIT` stages above them;
//! * aggregation pipelines whose `$group` work does **not** appear in the
//!   winning plan (real `explain` reports only the `$cursor` stage's plan),
//!   which is why the paper's Table VI row for MongoDB is `1 producer +
//!   1 projector = 2.00`.
//!
//! Documents are [`JsonValue`]s, reusing the JSON document model of
//! `uplan-core`.

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};

// Documents must outlive any input buffer, so minidoc works on the owned
// form of the zero-copy JSON model.
use uplan_core::formats::json::{self, OwnedJsonValue as JsonValue};

/// Comparison operators of the query filter (a subset of MQL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOp {
    /// `$eq`
    Eq,
    /// `$lt`
    Lt,
    /// `$lte`
    Lte,
    /// `$gt`
    Gt,
    /// `$gte`
    Gte,
}

impl FilterOp {
    /// MQL spelling.
    pub fn mql(self) -> &'static str {
        match self {
            FilterOp::Eq => "$eq",
            FilterOp::Lt => "$lt",
            FilterOp::Lte => "$lte",
            FilterOp::Gt => "$gt",
            FilterOp::Gte => "$gte",
        }
    }
}

/// One filter condition on a field.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Field name (dotted paths are not needed by the workloads).
    pub field: String,
    /// Operator.
    pub op: FilterOp,
    /// Comparison value.
    pub value: JsonValue,
}

/// Aggregation spec (`$group`-lite): one group key and named accumulators.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSpec {
    /// Group-by field; `None` groups everything.
    pub key: Option<String>,
    /// `(output name, accumulator)` pairs.
    pub accumulators: Vec<(String, Accumulator)>,
}

/// Accumulators of the `$group` subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Accumulator {
    /// `$sum: "$field"`
    Sum(String),
    /// `$avg: "$field"`
    Avg(String),
    /// `$sum: 1`
    Count,
}

/// A find/aggregate request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Request {
    /// Target collection.
    pub collection: String,
    /// Conjunctive filter.
    pub filter: Vec<Condition>,
    /// Projected fields (`None` = whole documents).
    pub projection: Option<Vec<String>>,
    /// Sort `(field, descending)`.
    pub sort: Option<(String, bool)>,
    /// Row limit.
    pub limit: Option<usize>,
    /// `$group` stage (turns the request into an aggregation).
    pub group: Option<GroupSpec>,
}

/// A collection: documents plus single-field indexes.
#[derive(Debug, Default)]
pub struct Collection {
    docs: Vec<JsonValue>,
    /// Field → sorted index (value → doc positions).
    indexes: HashMap<String, BTreeMap<IndexKey, Vec<usize>>>,
}

/// Total-ordered wrapper for JSON scalars used as index keys.
#[derive(Debug, Clone, PartialEq)]
struct IndexKey(JsonValue);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        json_cmp(&self.0, &other.0)
    }
}

/// Total order over JSON values (null < bool < number < string); arrays and
/// objects order after scalars by rendered text.
pub fn json_cmp(a: &JsonValue, b: &JsonValue) -> std::cmp::Ordering {
    fn rank(v: &JsonValue) -> u8 {
        match v {
            JsonValue::Null => 0,
            JsonValue::Bool(_) => 1,
            JsonValue::Int(_) | JsonValue::Float(_) => 2,
            JsonValue::Str(_) => 3,
            JsonValue::Array(_) => 4,
            JsonValue::Object(_) => 5,
        }
    }
    match (a, b) {
        (JsonValue::Bool(x), JsonValue::Bool(y)) => x.cmp(y),
        (JsonValue::Str(x), JsonValue::Str(y)) => x.cmp(y),
        (x, y) if rank(x) == 2 && rank(y) == 2 => {
            let fx = x.as_f64().expect("numeric");
            let fy = y.as_f64().expect("numeric");
            fx.total_cmp(&fy)
        }
        (x, y) if rank(x) == rank(y) && rank(x) >= 4 => x.to_compact().cmp(&y.to_compact()),
        (x, y) => rank(x).cmp(&rank(y)),
    }
}

impl Collection {
    /// Inserts a document.
    pub fn insert(&mut self, doc: JsonValue) {
        let pos = self.docs.len();
        for (field, index) in &mut self.indexes {
            let key = doc.get(field).cloned().unwrap_or(JsonValue::Null);
            index.entry(IndexKey(key)).or_default().push(pos);
        }
        self.docs.push(doc);
    }

    /// Creates a single-field index.
    pub fn create_index(&mut self, field: &str) {
        let mut index: BTreeMap<IndexKey, Vec<usize>> = BTreeMap::new();
        for (pos, doc) in self.docs.iter().enumerate() {
            let key = doc.get(field).cloned().unwrap_or(JsonValue::Null);
            index.entry(IndexKey(key)).or_default().push(pos);
        }
        self.indexes.insert(field.to_owned(), index);
    }

    /// Whether a field is indexed.
    pub fn has_index(&self, field: &str) -> bool {
        self.indexes.contains_key(field)
    }

    /// Document count.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

/// One stage of the winning plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage name (`COLLSCAN`, `IXSCAN`, `FETCH`, `PROJECTION_SIMPLE`,
    /// `SORT`, `LIMIT`, `IDHACK`).
    pub name: String,
    /// Stage-specific properties.
    pub properties: Vec<(String, JsonValue)>,
    /// Input stage (MongoDB plans are vines, not trees).
    pub input: Option<Box<Stage>>,
}

impl Stage {
    fn leaf(name: &str) -> Stage {
        Stage {
            name: name.to_owned(),
            properties: Vec::new(),
            input: None,
        }
    }

    fn with(mut self, key: &str, value: JsonValue) -> Stage {
        self.properties.push((key.to_owned(), value));
        self
    }

    fn over(self, input: Stage) -> Stage {
        Stage {
            input: Some(Box::new(input)),
            ..self
        }
    }

    /// Number of stages in the vine.
    pub fn stage_count(&self) -> usize {
        1 + self.input.as_deref().map_or(0, Stage::stage_count)
    }
}

/// A planned (and optionally executed) request.
#[derive(Debug, Clone, PartialEq)]
pub struct DocPlan {
    /// The winning plan's top stage.
    pub winning: Stage,
    /// Namespace (`db.collection`).
    pub namespace: String,
    /// Whether the request was an aggregation whose pipeline is optimized
    /// away from the winning plan (the `$group` invisibility).
    pub optimized_pipeline: bool,
    /// `executionStats.nReturned` when executed.
    pub n_returned: Option<usize>,
    /// `executionStats.totalDocsExamined` when executed.
    pub docs_examined: Option<usize>,
}

impl DocPlan {
    /// Serializes as `explain()` JSON (the shape the converter parses).
    pub fn to_explain_json(&self) -> JsonValue {
        fn stage_json(stage: &Stage) -> JsonValue {
            let mut members: json::JsonMembers<'static> =
                vec![("stage".into(), JsonValue::from(stage.name.clone()))];
            members.extend(
                stage
                    .properties
                    .iter()
                    .map(|(k, v)| (Cow::from(k.clone()), v.clone())),
            );
            if let Some(input) = &stage.input {
                members.push(("inputStage".into(), stage_json(input)));
            }
            JsonValue::Object(members)
        }
        let mut planner: json::JsonMembers<'static> = vec![
            ("namespace".into(), JsonValue::from(self.namespace.clone())),
            ("plannerVersion".into(), JsonValue::Int(1)),
        ];
        if self.optimized_pipeline {
            planner.push(("optimizedPipeline".into(), JsonValue::Bool(true)));
        }
        planner.push(("winningPlan".into(), stage_json(&self.winning)));
        planner.push(("rejectedPlans".into(), JsonValue::Array(vec![])));
        let mut doc: json::JsonMembers<'static> =
            vec![("queryPlanner".into(), JsonValue::Object(planner))];
        if let (Some(n), Some(d)) = (self.n_returned, self.docs_examined) {
            doc.push((
                "executionStats".into(),
                json::object([
                    ("executionSuccess", JsonValue::Bool(true)),
                    ("nReturned", JsonValue::Int(n as i64)),
                    ("totalDocsExamined", JsonValue::Int(d as i64)),
                ]),
            ));
        }
        doc.push((
            "serverInfo".into(),
            json::object([("version", JsonValue::from("6.0.5-minidoc"))]),
        ));
        JsonValue::Object(doc)
    }
}

/// The document store.
#[derive(Debug, Default)]
pub struct DocStore {
    collections: HashMap<String, Collection>,
}

impl DocStore {
    /// An empty store.
    pub fn new() -> DocStore {
        DocStore::default()
    }

    /// The named collection, created on first use.
    pub fn collection_mut(&mut self, name: &str) -> &mut Collection {
        self.collections.entry(name.to_owned()).or_default()
    }

    /// The named collection, if present.
    pub fn collection(&self, name: &str) -> Option<&Collection> {
        self.collections.get(name)
    }

    /// Plans a request without executing it.
    pub fn explain(&self, request: &Request) -> DocPlan {
        self.plan(request, None)
    }

    /// Executes a request, returning result documents and the executed plan.
    pub fn find(&self, request: &Request) -> (Vec<JsonValue>, DocPlan) {
        let Some(collection) = self.collections.get(&request.collection) else {
            let plan = self.plan(request, Some((0, 0)));
            return (Vec::new(), plan);
        };

        // Access path.
        let indexed = request
            .filter
            .iter()
            .find(|c| collection.has_index(&c.field) && c.op == FilterOp::Eq);
        let candidates: Vec<usize> = match indexed {
            Some(cond) => collection
                .indexes
                .get(&cond.field)
                .and_then(|idx| idx.get(&IndexKey(cond.value.clone())))
                .cloned()
                .unwrap_or_default(),
            None => (0..collection.docs.len()).collect(),
        };
        let docs_examined = candidates.len();

        let mut out: Vec<JsonValue> = candidates
            .into_iter()
            .map(|pos| collection.docs[pos].clone())
            .filter(|doc| {
                request.filter.iter().all(|cond| {
                    let value = doc.get(&cond.field).cloned().unwrap_or(JsonValue::Null);
                    let ord = json_cmp(&value, &cond.value);
                    match cond.op {
                        FilterOp::Eq => ord == std::cmp::Ordering::Equal,
                        FilterOp::Lt => ord == std::cmp::Ordering::Less,
                        FilterOp::Lte => ord != std::cmp::Ordering::Greater,
                        FilterOp::Gt => ord == std::cmp::Ordering::Greater,
                        FilterOp::Gte => ord != std::cmp::Ordering::Less,
                    }
                })
            })
            .collect();

        // $group.
        if let Some(group) = &request.group {
            out = run_group(&out, group);
        }

        // Sort.
        if let Some((field, desc)) = &request.sort {
            out.sort_by(|a, b| {
                let va = a.get(field).cloned().unwrap_or(JsonValue::Null);
                let vb = b.get(field).cloned().unwrap_or(JsonValue::Null);
                let ord = json_cmp(&va, &vb);
                if *desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
        }

        // Limit.
        if let Some(n) = request.limit {
            out.truncate(n);
        }

        // Projection.
        if let Some(fields) = &request.projection {
            out = out
                .into_iter()
                .map(|doc| {
                    json::object(
                        fields
                            .iter()
                            .map(|f| (f.clone(), doc.get(f).cloned().unwrap_or(JsonValue::Null))),
                    )
                })
                .collect();
        }

        let plan = self.plan(request, Some((out.len(), docs_examined)));
        (out, plan)
    }

    /// Builds the winning plan the way `explain()` reports it.
    fn plan(&self, request: &Request, executed: Option<(usize, usize)>) -> DocPlan {
        let collection = self.collections.get(&request.collection);
        let indexed = request.filter.iter().find(|c| {
            collection.is_some_and(|col| col.has_index(&c.field)) && c.op == FilterOp::Eq
        });

        let residual: Vec<&Condition> = request
            .filter
            .iter()
            .filter(|c| indexed.is_none_or(|i| !std::ptr::eq(*c, i)))
            .collect();
        let filter_json = |conds: &[&Condition]| -> JsonValue {
            json::object(conds.iter().map(|c| {
                (
                    c.field.clone(),
                    json::object([(c.op.mql(), c.value.clone())]),
                )
            }))
        };
        // Access stage: IDHACK for _id equality, IXSCAN+FETCH for other
        // indexed fields, COLLSCAN otherwise.
        let mut stage = match indexed {
            Some(cond) if cond.field == "_id" => Stage::leaf("IDHACK").with(
                "namespace",
                JsonValue::from(format!("db.{}", request.collection)),
            ),
            Some(cond) => {
                let ixscan = Stage::leaf("IXSCAN")
                    .with("indexName", JsonValue::from(format!("{}_1", cond.field)))
                    .with(
                        "keyPattern",
                        json::object([(cond.field.clone(), JsonValue::Int(1))]),
                    )
                    .with("direction", JsonValue::from("forward"));
                let mut fetch = Stage::leaf("FETCH");
                if !residual.is_empty() {
                    fetch = fetch.with("filter", filter_json(&residual));
                }
                fetch.over(ixscan)
            }
            None => {
                let mut scan =
                    Stage::leaf("COLLSCAN").with("direction", JsonValue::from("forward"));
                if !request.filter.is_empty() {
                    let all: Vec<&Condition> = request.filter.iter().collect();
                    scan = scan.with("filter", filter_json(&all));
                }
                scan
            }
        };

        // SORT / LIMIT / PROJECTION stages ($group never appears).
        if let Some((field, desc)) = &request.sort {
            stage = Stage::leaf("SORT")
                .with(
                    "sortPattern",
                    json::object([(field.clone(), JsonValue::Int(if *desc { -1 } else { 1 }))]),
                )
                .over(stage);
        }
        if let Some(n) = request.limit {
            stage = Stage::leaf("LIMIT")
                .with("limitAmount", JsonValue::Int(n as i64))
                .over(stage);
        }
        if let Some(fields) = &request.projection {
            stage = Stage::leaf("PROJECTION_SIMPLE")
                .with(
                    "transformBy",
                    json::object(fields.iter().map(|f| (f.clone(), JsonValue::Int(1)))),
                )
                .over(stage);
        }

        DocPlan {
            winning: stage,
            namespace: format!("db.{}", request.collection),
            optimized_pipeline: request.group.is_some(),
            n_returned: executed.map(|(n, _)| n),
            docs_examined: executed.map(|(_, d)| d),
        }
    }
}

fn run_group(docs: &[JsonValue], group: &GroupSpec) -> Vec<JsonValue> {
    let mut order: Vec<JsonValue> = Vec::new();
    let mut buckets: HashMap<String, Vec<&JsonValue>> = HashMap::new();
    for doc in docs {
        let key_value = match &group.key {
            Some(field) => doc.get(field).cloned().unwrap_or(JsonValue::Null),
            None => JsonValue::Null,
        };
        let key_text = key_value.to_compact();
        if !buckets.contains_key(&key_text) {
            order.push(key_value);
        }
        buckets.entry(key_text).or_default().push(doc);
    }
    order.sort_by(json_cmp);
    order
        .iter()
        .map(|key_value| {
            let members = &buckets[&key_value.to_compact()];
            let mut fields: json::JsonMembers<'static> = vec![("_id".into(), key_value.clone())];
            for (name, acc) in &group.accumulators {
                let value = match acc {
                    Accumulator::Count => JsonValue::Int(members.len() as i64),
                    Accumulator::Sum(field) => JsonValue::Float(
                        members
                            .iter()
                            .filter_map(|d| d.get(field).and_then(JsonValue::as_f64))
                            .sum(),
                    ),
                    Accumulator::Avg(field) => {
                        let values: Vec<f64> = members
                            .iter()
                            .filter_map(|d| d.get(field).and_then(JsonValue::as_f64))
                            .collect();
                        if values.is_empty() {
                            JsonValue::Null
                        } else {
                            JsonValue::Float(values.iter().sum::<f64>() / values.len() as f64)
                        }
                    }
                };
                fields.push((name.clone().into(), value));
            }
            JsonValue::Object(fields)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> DocStore {
        let mut store = DocStore::new();
        let collection = store.collection_mut("orders");
        for i in 0..10i64 {
            collection.insert(json::object([
                ("_id", JsonValue::Int(i)),
                (
                    "status",
                    JsonValue::from(if i % 2 == 0 { "A" } else { "B" }),
                ),
                ("amount", JsonValue::Float(i as f64 * 10.0)),
            ]));
        }
        store
    }

    fn find_req(filter: Vec<Condition>) -> Request {
        Request {
            collection: "orders".into(),
            filter,
            ..Request::default()
        }
    }

    #[test]
    fn collscan_returns_matching_documents() {
        let store = store();
        let (docs, plan) = store.find(&find_req(vec![Condition {
            field: "status".into(),
            op: FilterOp::Eq,
            value: JsonValue::from("A"),
        }]));
        assert_eq!(docs.len(), 5);
        assert_eq!(plan.winning.name, "COLLSCAN");
        assert_eq!(plan.n_returned, Some(5));
        assert_eq!(plan.docs_examined, Some(10));
    }

    #[test]
    fn index_switches_to_ixscan_fetch() {
        let mut store = store();
        store.collection_mut("orders").create_index("status");
        let (docs, plan) = store.find(&find_req(vec![Condition {
            field: "status".into(),
            op: FilterOp::Eq,
            value: JsonValue::from("A"),
        }]));
        assert_eq!(docs.len(), 5);
        assert_eq!(plan.winning.name, "FETCH");
        assert_eq!(plan.winning.input.as_ref().unwrap().name, "IXSCAN");
        assert_eq!(plan.docs_examined, Some(5), "index narrows the fetch");
    }

    #[test]
    fn id_equality_uses_idhack() {
        let mut store = store();
        store.collection_mut("orders").create_index("_id");
        let (docs, plan) = store.find(&find_req(vec![Condition {
            field: "_id".into(),
            op: FilterOp::Eq,
            value: JsonValue::Int(3),
        }]));
        assert_eq!(docs.len(), 1);
        assert_eq!(plan.winning.name, "IDHACK");
        assert_eq!(plan.winning.stage_count(), 1, "YCSB-style single-op plan");
    }

    #[test]
    fn sort_limit_projection_stack() {
        let store = store();
        let request = Request {
            collection: "orders".into(),
            filter: vec![],
            projection: Some(vec!["amount".into()]),
            sort: Some(("amount".into(), true)),
            limit: Some(3),
            group: None,
        };
        let (docs, plan) = store.find(&request);
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[0].get("amount").unwrap().as_f64(), Some(90.0));
        let names: Vec<&str> = {
            let mut v = Vec::new();
            let mut cur = Some(&plan.winning);
            while let Some(s) = cur {
                v.push(s.name.as_str());
                cur = s.input.as_deref();
            }
            v
        };
        assert_eq!(names, ["PROJECTION_SIMPLE", "LIMIT", "SORT", "COLLSCAN"]);
    }

    #[test]
    fn group_runs_but_stays_out_of_the_plan() {
        let store = store();
        let request = Request {
            collection: "orders".into(),
            filter: vec![],
            projection: Some(vec!["_id".into(), "total".into()]),
            sort: None,
            limit: None,
            group: Some(GroupSpec {
                key: Some("status".into()),
                accumulators: vec![
                    ("total".into(), Accumulator::Sum("amount".into())),
                    ("n".into(), Accumulator::Count),
                ],
            }),
        };
        let (docs, plan) = store.find(&request);
        assert_eq!(docs.len(), 2, "two status groups");
        assert!(plan.optimized_pipeline);
        // Paper Table VI: the MongoDB plan census sees producer + projector.
        assert_eq!(plan.winning.stage_count(), 2);
        assert_eq!(plan.winning.name, "PROJECTION_SIMPLE");
        assert_eq!(plan.winning.input.as_ref().unwrap().name, "COLLSCAN");
    }

    #[test]
    fn group_accumulators() {
        let docs = vec![
            json::object([("k", JsonValue::from("a")), ("v", JsonValue::Int(2))]),
            json::object([("k", JsonValue::from("a")), ("v", JsonValue::Int(4))]),
            json::object([("k", JsonValue::from("b")), ("v", JsonValue::Int(10))]),
        ];
        let out = run_group(
            &docs,
            &GroupSpec {
                key: Some("k".into()),
                accumulators: vec![
                    ("sum".into(), Accumulator::Sum("v".into())),
                    ("avg".into(), Accumulator::Avg("v".into())),
                    ("n".into(), Accumulator::Count),
                ],
            },
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("_id").unwrap().as_str(), Some("a"));
        assert_eq!(out[0].get("sum").unwrap().as_f64(), Some(6.0));
        assert_eq!(out[0].get("avg").unwrap().as_f64(), Some(3.0));
        assert_eq!(out[1].get("n").unwrap().as_int(), Some(1));
    }

    #[test]
    fn explain_json_shape() {
        let mut store = store();
        store.collection_mut("orders").create_index("status");
        let (_, plan) = store.find(&find_req(vec![Condition {
            field: "status".into(),
            op: FilterOp::Eq,
            value: JsonValue::from("A"),
        }]));
        let doc = plan.to_explain_json();
        let planner = doc.get("queryPlanner").unwrap();
        assert_eq!(
            planner
                .get("winningPlan")
                .unwrap()
                .get("stage")
                .unwrap()
                .as_str(),
            Some("FETCH")
        );
        assert!(planner
            .get("namespace")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("orders"));
        assert!(doc.get("executionStats").is_some());
        // Round-trips through the JSON parser.
        let text = doc.to_pretty();
        assert_eq!(json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn missing_collection_is_empty() {
        let store = DocStore::new();
        let (docs, plan) = store.find(&find_req(vec![]));
        assert!(docs.is_empty());
        assert_eq!(plan.n_returned, Some(0));
    }

    #[test]
    fn range_filters() {
        let store = store();
        let (docs, _) = store.find(&find_req(vec![Condition {
            field: "amount".into(),
            op: FilterOp::Gte,
            value: JsonValue::Float(50.0),
        }]));
        assert_eq!(docs.len(), 5);
        let (docs, _) = store.find(&find_req(vec![Condition {
            field: "amount".into(),
            op: FilterOp::Lt,
            value: JsonValue::Float(20.0),
        }]));
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn collection_bookkeeping() {
        let mut store = DocStore::new();
        assert!(store.collection("x").is_none());
        store.collection_mut("x").insert(JsonValue::Object(vec![]));
        assert_eq!(store.collection("x").unwrap().len(), 1);
        assert!(!store.collection("x").unwrap().is_empty());
        assert!(!store.collection("x").unwrap().has_index("f"));
    }

    #[test]
    fn json_cmp_total_order() {
        use std::cmp::Ordering;
        assert_eq!(
            json_cmp(&JsonValue::Null, &JsonValue::Bool(false)),
            Ordering::Less
        );
        assert_eq!(
            json_cmp(&JsonValue::Int(2), &JsonValue::Float(2.0)),
            Ordering::Equal
        );
        assert_eq!(
            json_cmp(&JsonValue::Int(3), &JsonValue::from("a")),
            Ordering::Less
        );
        assert_eq!(
            json_cmp(&JsonValue::from("a"), &JsonValue::from("b")),
            Ordering::Less
        );
    }
}
