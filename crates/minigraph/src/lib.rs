//! # minigraph — the property-graph substrate (Neo4j-like)
//!
//! Supplies the graph-model side of the paper's evaluation: operator-table
//! plans like Fig. 1, the Table VI/VII operation census over TPC-H (queries
//! rewritten in Cypher, nodes = rows, edges = foreign keys) and WDBench.
//!
//! The planner reproduces the Neo4j idioms the study classified:
//! relationship-driven access (classified **Join** — "a broader range of
//! operations can be performed on the edges"), `Expand(All)` traversals
//! (also Join), node scans (`AllNodesScan`/`NodeByLabelScan`, Producer),
//! `Filter` and `ProduceResults` (Executor), `EagerAggregation` (Folder),
//! `Projection` (Projector) and `Sort`/`Top`/`Limit` (Combinator).

use std::collections::HashMap;

/// A property value on nodes/relationships.
#[derive(Debug, Clone, PartialEq)]
pub enum PropValue {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
}

impl PropValue {
    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            PropValue::Int(i) => Some(*i as f64),
            PropValue::Float(f) => Some(*f),
            PropValue::Str(_) => None,
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PropValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Labels.
    pub labels: Vec<String>,
    /// Properties.
    pub props: HashMap<String, PropValue>,
}

/// A relationship.
#[derive(Debug, Clone)]
pub struct Relationship {
    /// Source node id.
    pub src: usize,
    /// Destination node id.
    pub dst: usize,
    /// Relationship type.
    pub rel_type: String,
    /// Properties.
    pub props: HashMap<String, PropValue>,
}

/// Predicates over properties.
#[derive(Debug, Clone, PartialEq)]
pub enum PropPredicate {
    /// `prop = value`
    Eq(String, PropValue),
    /// `prop < value` (numeric)
    Lt(String, f64),
    /// `prop > value` (numeric)
    Gt(String, f64),
    /// `prop ENDS WITH suffix` (the paper's Fig. 1 example)
    EndsWith(String, String),
    /// `prop CONTAINS text`
    Contains(String, String),
}

impl PropPredicate {
    fn matches(&self, props: &HashMap<String, PropValue>) -> bool {
        match self {
            PropPredicate::Eq(key, value) => props.get(key) == Some(value),
            PropPredicate::Lt(key, bound) => props
                .get(key)
                .and_then(PropValue::as_f64)
                .is_some_and(|v| v < *bound),
            PropPredicate::Gt(key, bound) => props
                .get(key)
                .and_then(PropValue::as_f64)
                .is_some_and(|v| v > *bound),
            PropPredicate::EndsWith(key, suffix) => props
                .get(key)
                .and_then(PropValue::as_str)
                .is_some_and(|s| s.ends_with(suffix)),
            PropPredicate::Contains(key, text) => props
                .get(key)
                .and_then(PropValue::as_str)
                .is_some_and(|s| s.contains(text)),
        }
    }

    /// Cypher-ish rendering for plan Details columns.
    pub fn render(&self, var: &str) -> String {
        match self {
            PropPredicate::Eq(k, PropValue::Str(s)) => format!("{var}.{k} = '{s}'"),
            PropPredicate::Eq(k, PropValue::Int(i)) => format!("{var}.{k} = {i}"),
            PropPredicate::Eq(k, PropValue::Float(f)) => format!("{var}.{k} = {f}"),
            PropPredicate::Lt(k, b) => format!("{var}.{k} < {b}"),
            PropPredicate::Gt(k, b) => format!("{var}.{k} > {b}"),
            PropPredicate::EndsWith(k, s) => format!("{var}.{k} ENDS WITH '{s}'"),
            PropPredicate::Contains(k, s) => format!("{var}.{k} CONTAINS '{s}'"),
        }
    }
}

/// Aggregations in `RETURN`.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphAgg {
    /// `count(*)`
    Count,
    /// `sum(var.prop)`
    Sum(String),
    /// `avg(var.prop)`
    Avg(String),
}

/// A Cypher-lite pattern query:
/// `MATCH (a:Label)[-[r:TYPE]->(b:Label)] WHERE ... RETURN ...`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PatternQuery {
    /// Label constraint on the source node.
    pub src_label: Option<String>,
    /// Relationship type; `None` = node-only pattern.
    pub rel_type: Option<String>,
    /// Whether the relationship is traversed undirected.
    pub undirected: bool,
    /// Label constraint on the destination node.
    pub dst_label: Option<String>,
    /// Predicates on the source node (`a.prop ...`).
    pub src_predicates: Vec<PropPredicate>,
    /// Predicates on the relationship (`r.prop ...`).
    pub rel_predicates: Vec<PropPredicate>,
    /// Returned node property names (projected), from the source node.
    pub return_props: Vec<String>,
    /// Aggregations (grouped by `group_by` if set).
    pub aggregates: Vec<GraphAgg>,
    /// Group-by property on the source node.
    pub group_by: Option<String>,
    /// Sort by the first returned column, descending if true.
    pub order_desc: Option<bool>,
    /// Row limit.
    pub limit: Option<usize>,
}

/// One operator row of the plan table (paper Fig. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Operator {
    /// Operator name (`+`-prefixed in the rendered table).
    pub name: String,
    /// Details column (identifiers/expressions).
    pub details: String,
    /// Estimated rows.
    pub estimated_rows: f64,
    /// Actual rows (after execution).
    pub rows: Option<u64>,
    /// Database accesses.
    pub db_hits: Option<u64>,
}

/// A Neo4j-style plan: a linear operator pipeline plus header/footer
/// metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphPlan {
    /// Operators, root first (`ProduceResults` on top, scans at the bottom).
    pub operators: Vec<Operator>,
    /// Planner name (Fig. 1: `COST`).
    pub planner: String,
    /// Runtime name.
    pub runtime: String,
    /// Runtime version.
    pub runtime_version: String,
    /// Total database accesses (footer).
    pub total_db_hits: u64,
    /// Total allocated memory in bytes (footer).
    pub memory_bytes: u64,
}

/// The graph store.
#[derive(Debug, Default)]
pub struct GraphStore {
    nodes: Vec<Node>,
    rels: Vec<Relationship>,
    /// (label, property) pairs with an index.
    indexes: Vec<(String, String)>,
}

impl GraphStore {
    /// An empty graph.
    pub fn new() -> GraphStore {
        GraphStore::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, labels: &[&str], props: Vec<(&str, PropValue)>) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            labels: labels.iter().map(|s| s.to_string()).collect(),
            props: props.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
        });
        id
    }

    /// Adds a relationship.
    pub fn add_rel(
        &mut self,
        src: usize,
        dst: usize,
        rel_type: &str,
        props: Vec<(&str, PropValue)>,
    ) {
        self.rels.push(Relationship {
            src,
            dst,
            rel_type: rel_type.to_owned(),
            props: props.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
        });
    }

    /// Declares a node index on `(label, property)`.
    pub fn create_index(&mut self, label: &str, property: &str) {
        self.indexes.push((label.to_owned(), property.to_owned()));
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Relationship count.
    pub fn rel_count(&self) -> usize {
        self.rels.len()
    }

    fn has_index(&self, label: Option<&str>, predicates: &[PropPredicate]) -> Option<String> {
        let label = label?;
        for (l, p) in &self.indexes {
            if l == label
                && predicates
                    .iter()
                    .any(|pred| matches!(pred, PropPredicate::Eq(key, _) if key == p))
            {
                return Some(p.clone());
            }
        }
        None
    }

    /// Plans and executes a pattern query; returns result rows (rendered as
    /// strings) and the executed plan with actuals.
    pub fn run(&self, query: &PatternQuery) -> (Vec<Vec<String>>, GraphPlan) {
        let mut operators: Vec<Operator> = Vec::new();
        let mut db_hits: u64 = 0;

        // ---- access + traversal -------------------------------------------
        // (src node id, optional rel index) bindings.
        let mut bindings: Vec<(usize, Option<usize>)>;

        if let Some(rel_type) = &query.rel_type {
            // Relationship-driven access (Join category — the Neo4j idiom
            // that keeps paper Table VI's Producer column at 0.39).
            let matching: Vec<usize> = self
                .rels
                .iter()
                .enumerate()
                .filter(|(_, r)| &r.rel_type == rel_type)
                .map(|(i, _)| i)
                .collect();
            db_hits += self.rels.len() as u64;
            let contains_pred = query
                .rel_predicates
                .iter()
                .find(|p| matches!(p, PropPredicate::Contains(..) | PropPredicate::EndsWith(..)));
            let scan_name = if contains_pred.is_some() {
                if query.undirected {
                    "UndirectedRelationshipIndexContainsScan"
                } else {
                    "DirectedRelationshipIndexContainsScan"
                }
            } else if query.undirected {
                "UndirectedRelationshipTypeScan"
            } else {
                "DirectedRelationshipTypeScan"
            };
            let mut kept = Vec::new();
            for i in matching {
                let rel = &self.rels[i];
                if query.rel_predicates.iter().all(|p| p.matches(&rel.props)) {
                    kept.push((rel.src, Some(i)));
                    if query.undirected {
                        kept.push((rel.dst, Some(i)));
                    }
                }
            }
            operators.push(Operator {
                name: scan_name.to_owned(),
                details: format!("()-[r:{rel_type}]->()"),
                estimated_rows: (self.rels.len() as f64 / 2.0).max(1.0),
                rows: Some(kept.len() as u64),
                db_hits: Some(self.rels.len() as u64),
            });

            // Label filters on endpoints become Filter or Expand steps.
            if query.dst_label.is_some() || query.src_label.is_some() {
                let before = kept.len();
                kept.retain(|(src, rel)| {
                    let src_ok = query
                        .src_label
                        .as_ref()
                        .is_none_or(|l| self.nodes[*src].labels.iter().any(|x| x == l));
                    let dst_ok = match (&query.dst_label, rel) {
                        (Some(l), Some(r)) => {
                            self.nodes[self.rels[*r].dst].labels.iter().any(|x| x == l)
                        }
                        _ => true,
                    };
                    src_ok && dst_ok
                });
                db_hits += before as u64;
                operators.push(Operator {
                    name: "Expand(All)".to_owned(),
                    details: "(a)-[r]->(b)".to_owned(),
                    estimated_rows: (kept.len() as f64).max(1.0),
                    rows: Some(kept.len() as u64),
                    db_hits: Some(before as u64),
                });
            }
            bindings = kept;
        } else {
            // Node-driven access.
            let indexed = self.has_index(query.src_label.as_deref(), &query.src_predicates);
            let candidates: Vec<usize> = (0..self.nodes.len())
                .filter(|&i| {
                    query
                        .src_label
                        .as_ref()
                        .is_none_or(|l| self.nodes[i].labels.iter().any(|x| x == l))
                })
                .collect();
            db_hits += self.nodes.len() as u64;
            let (name, details) = match (&indexed, &query.src_label) {
                (Some(prop), Some(label)) => {
                    ("NodeIndexSeek".to_owned(), format!("a:{label}({prop})"))
                }
                (None, Some(label)) => ("NodeByLabelScan".to_owned(), format!("a:{label}")),
                (None, None) | (Some(_), None) => ("AllNodesScan".to_owned(), "a".to_owned()),
            };
            operators.push(Operator {
                name,
                details,
                estimated_rows: (candidates.len() as f64).max(1.0),
                rows: Some(candidates.len() as u64),
                db_hits: Some(self.nodes.len() as u64),
            });
            bindings = candidates.into_iter().map(|i| (i, None)).collect();
        }

        // ---- node predicates (Filter, Executor category) ------------------
        if !query.src_predicates.is_empty() {
            let before = bindings.len();
            bindings.retain(|(src, _)| {
                query
                    .src_predicates
                    .iter()
                    .all(|p| p.matches(&self.nodes[*src].props))
            });
            db_hits += before as u64;
            operators.push(Operator {
                name: "Filter".to_owned(),
                details: query
                    .src_predicates
                    .iter()
                    .map(|p| p.render("a"))
                    .collect::<Vec<_>>()
                    .join(" AND "),
                estimated_rows: (bindings.len() as f64).max(1.0),
                rows: Some(bindings.len() as u64),
                db_hits: Some(before as u64),
            });
        }

        // ---- aggregation / projection --------------------------------------
        let mut rows: Vec<Vec<String>>;
        if !query.aggregates.is_empty() {
            let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
            for (src, _) in &bindings {
                let key = match &query.group_by {
                    Some(prop) => self.nodes[*src]
                        .props
                        .get(prop)
                        .map(|v| format!("{v:?}"))
                        .unwrap_or_else(|| "<null>".to_owned()),
                    None => String::new(),
                };
                match groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, members)) => members.push(*src),
                    None => groups.push((key, vec![*src])),
                }
            }
            if groups.is_empty() && query.group_by.is_none() {
                groups.push((String::new(), vec![]));
            }
            rows = groups
                .iter()
                .map(|(key, members)| {
                    let mut row = Vec::new();
                    if query.group_by.is_some() {
                        row.push(key.clone());
                    }
                    for agg in &query.aggregates {
                        let value = match agg {
                            GraphAgg::Count => members.len() as f64,
                            GraphAgg::Sum(prop) => members
                                .iter()
                                .filter_map(|&i| {
                                    self.nodes[i].props.get(prop).and_then(PropValue::as_f64)
                                })
                                .sum(),
                            GraphAgg::Avg(prop) => {
                                let vs: Vec<f64> = members
                                    .iter()
                                    .filter_map(|&i| {
                                        self.nodes[i].props.get(prop).and_then(PropValue::as_f64)
                                    })
                                    .collect();
                                if vs.is_empty() {
                                    0.0
                                } else {
                                    vs.iter().sum::<f64>() / vs.len() as f64
                                }
                            }
                        };
                        row.push(format!("{value}"));
                    }
                    row
                })
                .collect();
            operators.push(Operator {
                name: "EagerAggregation".to_owned(),
                details: query
                    .group_by
                    .clone()
                    .unwrap_or_else(|| "count(*)".to_owned()),
                estimated_rows: (rows.len() as f64).max(1.0),
                rows: Some(rows.len() as u64),
                db_hits: Some(0),
            });
        } else if !query.return_props.is_empty() {
            rows = bindings
                .iter()
                .map(|(src, _)| {
                    query
                        .return_props
                        .iter()
                        .map(|p| {
                            self.nodes[*src]
                                .props
                                .get(p)
                                .map(|v| match v {
                                    PropValue::Int(i) => i.to_string(),
                                    PropValue::Float(f) => f.to_string(),
                                    PropValue::Str(s) => s.clone(),
                                })
                                .unwrap_or_default()
                        })
                        .collect()
                })
                .collect();
            operators.push(Operator {
                name: "Projection".to_owned(),
                details: query
                    .return_props
                    .iter()
                    .map(|p| format!("a.{p}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                estimated_rows: (rows.len() as f64).max(1.0),
                rows: Some(rows.len() as u64),
                db_hits: Some(rows.len() as u64),
            });
            db_hits += rows.len() as u64;
        } else {
            // Return the matched entities themselves.
            rows = bindings
                .iter()
                .map(|(src, rel)| match rel {
                    Some(r) => vec![format!("rel#{r}")],
                    None => vec![format!("node#{src}")],
                })
                .collect();
        }

        // ---- ordering / limiting -------------------------------------------
        if let Some(desc) = query.order_desc {
            rows.sort();
            if desc {
                rows.reverse();
            }
            let (name, bound) = match query.limit {
                Some(n) => ("Top", Some(n)),
                None => ("Sort", None),
            };
            operators.push(Operator {
                name: name.to_owned(),
                details: bound.map_or("order".to_owned(), |n| format!("order LIMIT {n}")),
                estimated_rows: (rows.len() as f64).max(1.0),
                rows: Some(rows.len() as u64),
                db_hits: Some(0),
            });
        }
        if let Some(n) = query.limit {
            rows.truncate(n);
            if query.order_desc.is_none() {
                operators.push(Operator {
                    name: "Limit".to_owned(),
                    details: n.to_string(),
                    estimated_rows: n as f64,
                    rows: Some(rows.len() as u64),
                    db_hits: Some(0),
                });
            }
        }

        // ---- results -------------------------------------------------------
        operators.push(Operator {
            name: "ProduceResults".to_owned(),
            details: "*".to_owned(),
            estimated_rows: (rows.len() as f64).max(1.0),
            rows: Some(rows.len() as u64),
            db_hits: Some(0),
        });
        operators.reverse(); // root (ProduceResults) first, like Neo4j tables

        let plan = GraphPlan {
            operators,
            planner: "COST".to_owned(),
            runtime: "PIPELINED".to_owned(),
            runtime_version: "5.6".to_owned(),
            total_db_hits: db_hits,
            memory_bytes: 184 + 8 * rows.len() as u64,
        };
        (rows, plan)
    }

    /// Plans without executing (estimates only).
    pub fn explain(&self, query: &PatternQuery) -> GraphPlan {
        let (_, mut plan) = self.run(query);
        for op in &mut plan.operators {
            op.rows = None;
            op.db_hits = None;
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1 graph: relationships whose `title` ends with
    /// "developer".
    fn fig1_graph() -> GraphStore {
        let mut g = GraphStore::new();
        let people: Vec<usize> = (0..10)
            .map(|i| g.add_node(&["Person"], vec![("name", PropValue::Str(format!("p{i}")))]))
            .collect();
        for i in 0..8 {
            let title = if i < 4 { "senior developer" } else { "manager" };
            g.add_rel(
                people[i],
                people[i + 1],
                "WORKS_AS",
                vec![("title", PropValue::Str(title.to_owned()))],
            );
        }
        g
    }

    #[test]
    fn fig1_relationship_contains_scan() {
        let g = fig1_graph();
        let query = PatternQuery {
            rel_type: Some("WORKS_AS".into()),
            undirected: true,
            rel_predicates: vec![PropPredicate::EndsWith("title".into(), "developer".into())],
            ..PatternQuery::default()
        };
        let (rows, plan) = g.run(&query);
        assert_eq!(
            rows.len(),
            8,
            "4 matching rels, undirected = both endpoints"
        );
        let names: Vec<&str> = plan.operators.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names[0], "ProduceResults");
        assert!(names.contains(&"UndirectedRelationshipIndexContainsScan"));
        assert_eq!(plan.planner, "COST");
        assert!(plan.total_db_hits > 0);
    }

    #[test]
    fn node_scans_choose_label_and_index() {
        let mut g = fig1_graph();
        let all = PatternQuery::default();
        let (_, plan) = g.run(&all);
        assert!(plan.operators.iter().any(|o| o.name == "AllNodesScan"));

        let labeled = PatternQuery {
            src_label: Some("Person".into()),
            ..PatternQuery::default()
        };
        let (rows, plan) = g.run(&labeled);
        assert_eq!(rows.len(), 10);
        assert!(plan.operators.iter().any(|o| o.name == "NodeByLabelScan"));

        g.create_index("Person", "name");
        let seek = PatternQuery {
            src_label: Some("Person".into()),
            src_predicates: vec![PropPredicate::Eq(
                "name".into(),
                PropValue::Str("p3".into()),
            )],
            ..PatternQuery::default()
        };
        let (rows, plan) = g.run(&seek);
        assert_eq!(rows.len(), 1);
        assert!(plan.operators.iter().any(|o| o.name == "NodeIndexSeek"));
    }

    #[test]
    fn aggregation_and_projection_operators() {
        let mut g = GraphStore::new();
        for i in 0..6 {
            g.add_node(
                &["Order"],
                vec![
                    (
                        "status",
                        PropValue::Str(if i % 2 == 0 { "A" } else { "B" }.into()),
                    ),
                    ("total", PropValue::Float(i as f64)),
                ],
            );
        }
        let agg = PatternQuery {
            src_label: Some("Order".into()),
            aggregates: vec![GraphAgg::Count, GraphAgg::Sum("total".into())],
            group_by: Some("status".into()),
            ..PatternQuery::default()
        };
        let (rows, plan) = g.run(&agg);
        assert_eq!(rows.len(), 2);
        assert!(plan.operators.iter().any(|o| o.name == "EagerAggregation"));

        let project = PatternQuery {
            src_label: Some("Order".into()),
            return_props: vec!["status".into()],
            ..PatternQuery::default()
        };
        let (rows, plan) = g.run(&project);
        assert_eq!(rows.len(), 6);
        assert!(plan.operators.iter().any(|o| o.name == "Projection"));
    }

    #[test]
    fn filters_order_and_limit() {
        let mut g = GraphStore::new();
        for i in 0..10 {
            g.add_node(&["N"], vec![("v", PropValue::Int(i))]);
        }
        let query = PatternQuery {
            src_label: Some("N".into()),
            src_predicates: vec![PropPredicate::Gt("v".into(), 3.0)],
            return_props: vec!["v".into()],
            order_desc: Some(true),
            limit: Some(2),
            ..PatternQuery::default()
        };
        let (rows, plan) = g.run(&query);
        assert_eq!(rows, vec![vec!["9".to_string()], vec!["8".to_string()]]);
        let names: Vec<&str> = plan.operators.iter().map(|o| o.name.as_str()).collect();
        assert!(names.contains(&"Filter"));
        assert!(names.contains(&"Top"), "{names:?}");
    }

    #[test]
    fn directed_vs_undirected_type_scans() {
        let mut g = GraphStore::new();
        let a = g.add_node(&["X"], vec![]);
        let b = g.add_node(&["X"], vec![]);
        g.add_rel(a, b, "KNOWS", vec![]);
        let directed = PatternQuery {
            rel_type: Some("KNOWS".into()),
            ..PatternQuery::default()
        };
        let (rows, plan) = g.run(&directed);
        assert_eq!(rows.len(), 1);
        assert!(plan
            .operators
            .iter()
            .any(|o| o.name == "DirectedRelationshipTypeScan"));
        let undirected = PatternQuery {
            rel_type: Some("KNOWS".into()),
            undirected: true,
            ..PatternQuery::default()
        };
        let (rows, _) = g.run(&undirected);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn explain_strips_actuals() {
        let g = fig1_graph();
        let plan = g.explain(&PatternQuery {
            src_label: Some("Person".into()),
            ..PatternQuery::default()
        });
        assert!(plan.operators.iter().all(|o| o.rows.is_none()));
        assert!(plan.operators.iter().all(|o| o.db_hits.is_none()));
    }

    #[test]
    fn predicates() {
        let props: HashMap<String, PropValue> = [
            ("title".to_owned(), PropValue::Str("lead developer".into())),
            ("grade".to_owned(), PropValue::Int(7)),
        ]
        .into();
        assert!(PropPredicate::EndsWith("title".into(), "developer".into()).matches(&props));
        assert!(PropPredicate::Contains("title".into(), "dev".into()).matches(&props));
        assert!(PropPredicate::Gt("grade".into(), 5.0).matches(&props));
        assert!(!PropPredicate::Lt("grade".into(), 5.0).matches(&props));
        assert!(PropPredicate::Eq("grade".into(), PropValue::Int(7)).matches(&props));
        assert!(!PropPredicate::Eq("missing".into(), PropValue::Int(1)).matches(&props));
        assert_eq!(
            PropPredicate::EndsWith("t".into(), "x".into()).render("r"),
            "r.t ENDS WITH 'x'"
        );
    }

    #[test]
    fn counts() {
        let g = fig1_graph();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.rel_count(), 8);
    }

    #[test]
    fn empty_aggregate_returns_zero_row() {
        let g = GraphStore::new();
        let (rows, _) = g.run(&PatternQuery {
            aggregates: vec![GraphAgg::Count],
            ..PatternQuery::default()
        });
        assert_eq!(rows, vec![vec!["0".to_string()]]);
    }
}
