//! Stamps the build with the git revision it was compiled from, so
//! `uplan_obs::build_info()` (and with it `GET /stats` and `/metrics`) can
//! report which code is actually running. Offline and best-effort: outside
//! a git checkout (or without a `git` binary) the hash is `"unknown"`.

use std::process::Command;

fn main() {
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=UPLAN_GIT_HASH={hash}");
    // Re-stamp when HEAD moves (best-effort; .git may be elsewhere in a
    // workspace checkout, in which case the stale hash is still close).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
