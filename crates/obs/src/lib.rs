//! # uplan-obs — zero-dependency observability for the uplan pipeline
//!
//! The pipeline converts raw optimizer dumps into unified query plans,
//! indexes them into a sharded corpus, and serves similarity queries — a
//! chain of hot loops whose behavior (batch sizes, prune ratios, merge
//! latencies) is exactly what the paper argues should be *inspectable*.
//! This crate is the instrumentation substrate the rest of the workspace
//! threads through:
//!
//! * [`metrics`] — lock-free counters, gauges, and log₂ [`Histogram`]s in
//!   a [`Registry`] with Prometheus-text and JSON exposition. A process
//!   [`global`] registry hosts the library-side series (ingest, corpus);
//!   components with per-instance lifecycles (the serve daemon) own their
//!   own `Registry` and concatenate it at scrape time.
//! * [`trace`] — structured RAII spans with process-unique IDs, per-thread
//!   parent linkage, monotonic durations, a bounded recent-span ring, and
//!   a JSONL sink (`repro --log-json`, `UPLAN_LOG` level filtering). Off
//!   by default at one atomic load per site, so it stays inside the bench
//!   tolerance with no configuration.
//!
//! Everything is hand-rolled on `std` only — the workspace builds offline
//! and this crate must not change that.

pub mod metrics;
pub mod trace;

pub use metrics::{global, Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, Registry};
pub use trace::{
    enabled, event, flush_json_log, init_json_log, recent_spans, span, FieldValue, Filter, Level,
    SpanGuard, SpanRecord,
};

/// Package version and the git revision the binary was built from
/// (`("0.1.0", "abc123def456")`; hash is `"unknown"` outside a git
/// checkout). Surfaces in `GET /stats` and the CLI.
pub fn build_info() -> (&'static str, &'static str) {
    (env!("CARGO_PKG_VERSION"), env!("UPLAN_GIT_HASH"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn build_info_is_stamped() {
        let (version, git) = super::build_info();
        assert!(!version.is_empty());
        assert!(!git.is_empty());
    }
}
