//! # Lock-cheap metrics: counters, gauges, log₂ histograms, one registry
//!
//! Every primitive here is a handful of atomic words: recording a sample
//! never takes a lock, never allocates, and never formats anything — the
//! cost the instrumented hot paths (per-record ingest, per-query BK
//! traversals) can afford unconditionally. The [`Registry`] holds the
//! handles behind a mutex that is touched only at **registration** time
//! (once per call site, memoized through `OnceLock` statics) and at
//! **exposition** time (a `/metrics` scrape or `/stats` render), never on
//! the record path.
//!
//! Two encoders read a registry out:
//!
//! * [`Registry::encode_prometheus`] — the Prometheus text exposition
//!   format (`# HELP`/`# TYPE` headers, `family{label="v"} value` samples,
//!   histograms as cumulative `_bucket{le=…}` series plus `_sum`/`_count`);
//! * [`Registry::encode_json`] — the same data as a JSON document for
//!   scripts and the `/stats` payload.
//!
//! The [`Histogram`] is the log₂-bucketed design the serve daemon
//! introduced, generalized and sharpened: buckets hold values by
//! significant-bit count (0, 1, 2–3, 4–7, …; 65 buckets cover all of
//! `u64`), and quantile readout **interpolates within the winning bucket**
//! (assuming a uniform spread between the bucket's bounds, clamped to the
//! observed maximum) instead of answering only the bucket's upper bound —
//! p50/p99 on smooth distributions land within a few percent rather than
//! within a factor of two. The raw bucket bounds stay accessible via
//! [`Histogram::bucket_lower`] / [`Histogram::bucket_upper`] and
//! [`HistogramSnapshot::quantile_bounds`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use uplan_core::formats::json::{object, JsonValue, OwnedJsonValue};

/// Number of log₂ buckets: one per possible significant-bit count of a
/// `u64` (0 through 64).
pub const BUCKETS: usize = 65;

/// A monotonically increasing counter. `Relaxed` atomics: totals are
/// exact (every increment lands), ordering against other metrics is not
/// promised — exposition reads are a statistical snapshot.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (queue depths, epochs, lag).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram of `u64` samples with lock-free recording:
/// bucket `b` holds the values with `b` significant bits. See the module
/// docs for the quantile-interpolation contract.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket index a value falls into (its significant-bit count).
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Smallest value bucket `b` can hold (0 for bucket 0, else
    /// `2^(b-1)`).
    pub fn bucket_lower(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Largest value bucket `b` can hold (0 for bucket 0, else `2^b - 1`;
    /// saturates at `u64::MAX` for the top bucket).
    pub fn bucket_upper(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Records one sample. Four relaxed atomic writes, no lock.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for quantile math and exposition. Buckets and
    /// totals are read without mutual ordering; concurrent recording can
    /// make them disagree by the few in-flight samples, which exposition
    /// tolerates (the snapshot normalizes its own bucket total).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = std::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed));
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Interpolated quantile of the live histogram (see
    /// [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Number of samples (the bucket total — self-consistent even if the
    /// source histogram was being written during the snapshot).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Per-bucket sample counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The bucket holding the `q`-quantile sample, with the count of
    /// samples strictly below it and inside it: `(bucket, below, inside)`.
    /// `None` when empty.
    fn quantile_bucket(&self, q: f64) -> Option<(usize, u64, u64)> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = (((count as f64) * q.clamp(0.0, 1.0)).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n > 0 && seen + n >= rank {
                return Some((b, seen, n));
            }
            seen += n;
        }
        None
    }

    /// The `q`-quantile (`0.5` = median), **interpolated within the log₂
    /// bucket**: the winning bucket's samples are assumed uniformly spread
    /// between its lower bound and `min(upper bound, max sample)`, so the
    /// readout tracks the true quantile closely on smooth distributions
    /// instead of being quantized to within a factor of two. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let Some((b, below, inside)) = self.quantile_bucket(q) else {
            return 0;
        };
        let count = self.count();
        let rank = (((count as f64) * q.clamp(0.0, 1.0)).ceil() as u64).clamp(1, count);
        let lower = Histogram::bucket_lower(b);
        let upper = Histogram::bucket_upper(b).min(self.max).max(lower);
        let position = (rank - below) as f64 / inside as f64;
        lower + ((upper - lower) as f64 * position).round() as u64
    }

    /// Lower and upper bounds of the bucket containing the `q`-quantile —
    /// the true quantile is guaranteed to lie inside (clamped to the
    /// observed maximum). `(0, 0)` when empty.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        match self.quantile_bucket(q) {
            None => (0, 0),
            Some((b, _, _)) => (
                Histogram::bucket_lower(b),
                Histogram::bucket_upper(b).min(self.max),
            ),
        }
    }

    /// The `{count, mean, p50, p90, p99, max}` summary object `/stats`
    /// reports per histogram.
    pub fn summary_json(&self) -> OwnedJsonValue {
        let int = |v: u64| JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX));
        object([
            ("count", int(self.count())),
            ("mean", int(self.mean())),
            ("p50", int(self.quantile(0.5))),
            ("p90", int(self.quantile(0.9))),
            ("p99", int(self.quantile(0.99))),
            ("max", int(self.max)),
        ])
    }
}

/// What a registered family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic total.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Log₂ sample distribution.
    Histogram,
}

impl MetricKind {
    fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One registered handle (a family member at a fixed label set).
#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One metric family: a name, a help line, and its members keyed by label
/// set (label-less families have exactly one member with no labels).
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    members: Vec<(Vec<(String, String)>, Handle)>,
}

/// A set of metric families, registered once and recorded into lock-free.
/// Registration is idempotent: the same `(name, labels)` always returns
/// the same handle, so call sites can re-register freely (and memoize the
/// `Arc` in a `OnceLock` to skip even the registration lock). Registering
/// one name as two different kinds is a programming error and panics.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// A fresh, empty registry (per-component registries, tests).
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        create: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut families = self.families.lock().expect("metrics registry lock");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(family) => {
                assert!(
                    family.kind == kind,
                    "metric {name:?} registered as {} and as {}",
                    family.kind.name(),
                    kind.name()
                );
                family
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    members: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some((_, handle)) = family
            .members
            .iter()
            .find(|(have, _)| have.len() == labels.len() && labels_eq(have, labels))
        {
            return handle.clone();
        }
        let handle = create();
        family.members.push((
            labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            handle.clone(),
        ));
        handle
    }

    /// Registers (or finds) a label-less counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a counter at a fixed label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, labels, MetricKind::Counter, || {
            Handle::Counter(Arc::new(Counter::default()))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("register() checks the kind"),
        }
    }

    /// Registers (or finds) a label-less gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a gauge at a fixed label set.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, MetricKind::Gauge, || {
            Handle::Gauge(Arc::new(Gauge::default()))
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("register() checks the kind"),
        }
    }

    /// Registers (or finds) a label-less histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or finds) a histogram at a fixed label set.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.register(name, help, labels, MetricKind::Histogram, || {
            Handle::Histogram(Arc::new(Histogram::default()))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("register() checks the kind"),
        }
    }

    /// Finds an already-registered counter (exposition-side lookups in
    /// tests and assertions; `None` when never registered).
    pub fn find_counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<Arc<Counter>> {
        let families = self.families.lock().expect("metrics registry lock");
        let family = families.iter().find(|f| f.name == name)?;
        family
            .members
            .iter()
            .find(|(have, _)| have.len() == labels.len() && labels_eq(have, labels))
            .and_then(|(_, handle)| match handle {
                Handle::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            })
    }

    /// The Prometheus text exposition of every registered family, in
    /// registration order (`GET /metrics`).
    pub fn encode_prometheus(&self) -> String {
        let families = self.families.lock().expect("metrics registry lock");
        let mut out = String::new();
        for family in families.iter() {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.name());
            out.push('\n');
            for (labels, handle) in &family.members {
                match handle {
                    Handle::Counter(c) => {
                        sample_line(&mut out, &family.name, labels, None, &c.get().to_string())
                    }
                    Handle::Gauge(g) => {
                        sample_line(&mut out, &family.name, labels, None, &g.get().to_string())
                    }
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (b, &n) in snap.buckets().iter().enumerate() {
                            if n == 0 {
                                continue;
                            }
                            cumulative += n;
                            let le = Histogram::bucket_upper(b).to_string();
                            sample_line(
                                &mut out,
                                &format!("{}_bucket", family.name),
                                labels,
                                Some(("le", &le)),
                                &cumulative.to_string(),
                            );
                        }
                        sample_line(
                            &mut out,
                            &format!("{}_bucket", family.name),
                            labels,
                            Some(("le", "+Inf")),
                            &cumulative.to_string(),
                        );
                        sample_line(
                            &mut out,
                            &format!("{}_sum", family.name),
                            labels,
                            None,
                            &snap.sum().to_string(),
                        );
                        sample_line(
                            &mut out,
                            &format!("{}_count", family.name),
                            labels,
                            None,
                            &cumulative.to_string(),
                        );
                    }
                }
            }
        }
        out
    }

    /// The same data as a JSON document: `{family: {type, help, metrics:
    /// [{labels, value | summary}]}}` (`/metrics?format=json`).
    pub fn encode_json(&self) -> OwnedJsonValue {
        let families = self.families.lock().expect("metrics registry lock");
        JsonValue::Object(
            families
                .iter()
                .map(|family| {
                    let metrics: Vec<OwnedJsonValue> = family
                        .members
                        .iter()
                        .map(|(labels, handle)| {
                            let label_obj = JsonValue::Object(
                                labels
                                    .iter()
                                    .map(|(k, v)| {
                                        (
                                            std::borrow::Cow::Owned(k.clone()),
                                            JsonValue::from(v.clone()),
                                        )
                                    })
                                    .collect(),
                            );
                            let value = match handle {
                                Handle::Counter(c) => int(c.get()),
                                Handle::Gauge(g) => JsonValue::Int(g.get()),
                                Handle::Histogram(h) => h.snapshot().summary_json(),
                            };
                            object([("labels", label_obj), ("value", value)])
                        })
                        .collect();
                    (
                        std::borrow::Cow::Owned(family.name.clone()),
                        object([
                            ("type", JsonValue::from(family.kind.name())),
                            ("help", JsonValue::from(family.help.clone())),
                            ("metrics", JsonValue::Array(metrics)),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

fn labels_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.iter()
        .zip(want)
        .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

fn int(v: u64) -> OwnedJsonValue {
    JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// One exposition sample line: `name{labels,extra} value`.
fn sample_line(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label(out, v);
            out.push('"');
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_label(out, v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
fn escape_label(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// The process-wide registry library instrumentation records into
/// (ingest, corpus, merges). Component-local registries — e.g. the serve
/// daemon's per-instance request metrics — are separate [`Registry`]
/// values owned by their component.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucket_bounds_partition_u64() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for b in 0..BUCKETS {
            let (lo, hi) = (Histogram::bucket_lower(b), Histogram::bucket_upper(b));
            assert!(lo <= hi);
            assert_eq!(Histogram::bucket_of(lo), b);
            assert_eq!(Histogram::bucket_of(hi), b);
            if b > 0 {
                assert_eq!(
                    Histogram::bucket_upper(b - 1) + 1,
                    lo,
                    "buckets are contiguous"
                );
            }
        }
    }

    #[test]
    fn interpolated_quantiles_track_a_uniform_distribution() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.max(), 1000);
        assert_eq!(snap.mean(), 500);
        // Within-bucket interpolation: a few samples of error, not a
        // factor of two.
        let p50 = snap.quantile(0.5);
        assert!((495..=505).contains(&p50), "p50 {p50}");
        let p90 = snap.quantile(0.9);
        assert!((880..=920).contains(&p90), "p90 {p90}");
        let p99 = snap.quantile(0.99);
        assert!((975..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(snap.quantile(1.0), 1000);
        // The bounds accessors still expose the factor-of-two envelope.
        let (lo, hi) = snap.quantile_bounds(0.5);
        assert!(lo <= p50 && p50 <= hi);
        assert_eq!((lo, hi), (256, 511));
        // Degenerate cases.
        let empty = Histogram::default();
        assert_eq!(empty.snapshot().quantile(0.5), 0);
        assert_eq!(empty.snapshot().quantile_bounds(0.9), (0, 0));
        let zeros = Histogram::default();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.snapshot().quantile(0.9), 0);
        assert_eq!(zeros.snapshot().mean(), 0);
        // A single sample answers itself at every quantile.
        let one = Histogram::default();
        one.record(700);
        assert_eq!(one.snapshot().quantile(0.01), 700);
        assert_eq!(one.snapshot().quantile(0.99), 700);
    }

    #[test]
    fn concurrent_increments_total_exactly() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let registry = Registry::new();
        let counter = registry.counter("t_ops_total", "test counter");
        let histogram = registry.histogram("t_lat_us", "test histogram");
        let gauge = registry.gauge("t_depth", "test gauge");
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                // Re-register inside each thread: idempotent registration
                // must hand back the same underlying metric.
                let registry = &registry;
                scope.spawn(move || {
                    let counter = registry.counter("t_ops_total", "test counter");
                    let histogram = registry.histogram("t_lat_us", "test histogram");
                    let gauge = registry.gauge("t_depth", "test gauge");
                    for i in 0..PER_THREAD {
                        counter.inc();
                        histogram.record(t as u64 * PER_THREAD + i);
                        gauge.add(1);
                    }
                });
            }
        });
        assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
        let snap = histogram.snapshot();
        assert_eq!(snap.count(), THREADS as u64 * PER_THREAD);
        assert_eq!(snap.max(), THREADS as u64 * PER_THREAD - 1);
        assert_eq!(gauge.get(), (THREADS as u64 * PER_THREAD) as i64);
        // The bucket census agrees with the exact per-bucket expectation.
        let mut expect = [0u64; BUCKETS];
        for v in 0..THREADS as u64 * PER_THREAD {
            expect[Histogram::bucket_of(v)] += 1;
        }
        assert_eq!(snap.buckets(), &expect);
    }

    #[test]
    fn labeled_members_are_distinct_and_ordered() {
        let registry = Registry::new();
        let knn = registry.counter_with("req_total", "requests", &[("endpoint", "knn")]);
        let stats = registry.counter_with("req_total", "requests", &[("endpoint", "stats")]);
        knn.add(3);
        stats.inc();
        assert_eq!(
            registry
                .find_counter("req_total", &[("endpoint", "knn")])
                .unwrap()
                .get(),
            3
        );
        assert!(registry.find_counter("req_total", &[]).is_none());
        assert!(registry.find_counter("nope", &[]).is_none());
        // Same labels → the same handle.
        let again = registry.counter_with("req_total", "requests", &[("endpoint", "knn")]);
        again.inc();
        assert_eq!(knn.get(), 4);
    }

    /// The exposition encoder output is golden-pinned: byte-exact text for
    /// a registry with one of each kind, labels, and a histogram spread.
    #[test]
    fn prometheus_exposition_is_golden() {
        let registry = Registry::new();
        registry
            .counter_with("u_req_total", "served requests", &[("endpoint", "knn")])
            .add(5);
        registry
            .counter_with("u_req_total", "served requests", &[("endpoint", "stats")])
            .add(2);
        registry.gauge("u_pending", "pending plans").set(17);
        let h = registry.histogram("u_lat_us", "request latency");
        for v in [0, 1, 3, 3, 200] {
            h.record(v);
        }
        let text = registry.encode_prometheus();
        let expect = "\
# HELP u_req_total served requests
# TYPE u_req_total counter
u_req_total{endpoint=\"knn\"} 5
u_req_total{endpoint=\"stats\"} 2
# HELP u_pending pending plans
# TYPE u_pending gauge
u_pending 17
# HELP u_lat_us request latency
# TYPE u_lat_us histogram
u_lat_us_bucket{le=\"0\"} 1
u_lat_us_bucket{le=\"1\"} 2
u_lat_us_bucket{le=\"3\"} 4
u_lat_us_bucket{le=\"255\"} 5
u_lat_us_bucket{le=\"+Inf\"} 5
u_lat_us_sum 207
u_lat_us_count 5
";
        assert_eq!(text, expect);

        let doc = registry.encode_json();
        let family = doc.get("u_req_total").unwrap();
        assert_eq!(family.get("type").unwrap().as_str(), Some("counter"));
        let members = family.get("metrics").unwrap().as_array().unwrap();
        assert_eq!(members.len(), 2);
        assert_eq!(
            members[0]
                .get("labels")
                .unwrap()
                .get("endpoint")
                .unwrap()
                .as_str(),
            Some("knn")
        );
        assert_eq!(members[0].get("value").unwrap().as_int(), Some(5));
        let lat = doc.get("u_lat_us").unwrap().get("metrics").unwrap();
        let summary = lat.as_array().unwrap()[0].get("value").unwrap();
        assert_eq!(summary.get("count").unwrap().as_int(), Some(5));
        assert_eq!(summary.get("max").unwrap().as_int(), Some(200));
    }

    #[test]
    fn label_values_escape_cleanly() {
        let registry = Registry::new();
        registry
            .counter_with("esc_total", "escapes", &[("path", "a\"b\\c\nd")])
            .inc();
        let text = registry.encode_prometheus();
        assert!(
            text.contains("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            "{text}"
        );
    }

    #[test]
    #[should_panic(expected = "registered as counter and as gauge")]
    fn kind_conflicts_panic_at_registration() {
        let registry = Registry::new();
        registry.counter("twice", "first");
        registry.gauge("twice", "second");
    }
}
