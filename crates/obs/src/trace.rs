//! # Structured span tracing with a JSONL sink and a recent-span ring
//!
//! The pipeline's long operations — a raw-dump ingest, an epoch merge, a
//! served query — are recorded as **spans**: RAII guards carrying a
//! process-unique ID, the ID of the enclosing span (tracked per thread),
//! a monotonic-clock duration measured at drop, and a small set of
//! `(key, value)` fields attached along the way. Point-in-time **events**
//! (a slow query, a quarantined record) ride the same machinery without a
//! duration.
//!
//! Everything is off by default and costs one relaxed atomic load per
//! call site when disabled — cheap enough to leave in the hot paths the
//! bench gate measures. Two switches turn it on:
//!
//! * `UPLAN_LOG` — `RUST_LOG`-style level filtering: a bare level
//!   (`debug`) or a comma list of `target=level` directives
//!   (`info,corpus.merge=trace`), targets matching by `.`-boundary
//!   prefix;
//! * [`init_json_log`] — opens a JSONL sink (one JSON object per line,
//!   schema below) that `repro --log-json <path>` wires to disk. When
//!   `UPLAN_LOG` is unset this bumps the default level to `debug` so the
//!   log is not silently empty.
//!
//! Closed spans are also pushed into a bounded in-memory ring buffer
//! ([`recent_spans`]) so a process can self-report its last moments (the
//! serve daemon's slow-query accounting reads it in tests) without any
//! sink configured.
//!
//! ## JSONL schema
//!
//! Span lines (written when the span *closes*, so children precede their
//! parent in the file):
//!
//! ```json
//! {"ts_us":123,"dur_us":45,"level":"debug","target":"corpus.merge",
//!  "span":"merge","id":7,"parent":3,"fields":{"plans":512}}
//! ```
//!
//! Event lines carry `"event"` instead of `"span"` and no `dur_us`.
//! `ts_us` is microseconds since process start (monotonic), `parent` is
//! absent for root spans.

use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use uplan_core::formats::json::{JsonMembers, JsonValue, OwnedJsonValue};

/// Verbosity of a span or event, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error = 1,
    /// Suspicious but survivable (quarantined records, slow queries).
    Warn = 2,
    /// Milestones: campaign start/stop, merges published.
    Info = 3,
    /// Per-operation detail: batches, requests, queries.
    Debug = 4,
    /// Per-record firehose.
    Trace = 5,
}

impl Level {
    /// The lowercase name used in `UPLAN_LOG` and the JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            "off" | "none" => None,
            _ => None,
        }
    }
}

/// A parsed `UPLAN_LOG` filter: a default level plus per-target
/// overrides, longest matching prefix winning.
#[derive(Debug, Clone, Default)]
pub struct Filter {
    /// Level applied when no directive matches; `None` = everything off.
    default: Option<Level>,
    /// `(target prefix, level)` directives; `None` level silences the
    /// target.
    directives: Vec<(String, Option<Level>)>,
}

impl Filter {
    /// Parses an `UPLAN_LOG`-style spec: a comma list of `level` or
    /// `target=level` directives (`info,corpus.merge=trace,serve=off`).
    /// Unknown words are ignored; an empty spec disables everything.
    pub fn parse(spec: &str) -> Filter {
        let mut filter = Filter::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((target, level)) => {
                    let silenced =
                        matches!(level.trim().to_ascii_lowercase().as_str(), "off" | "none");
                    if let Some(level) = Level::parse(level) {
                        filter
                            .directives
                            .push((target.trim().to_string(), Some(level)));
                    } else if silenced {
                        filter.directives.push((target.trim().to_string(), None));
                    }
                }
                None => {
                    if let Some(level) = Level::parse(part) {
                        filter.default = Some(level);
                    }
                }
            }
        }
        filter
    }

    /// A filter passing everything at `level` and above for all targets.
    pub fn at(level: Level) -> Filter {
        Filter {
            default: Some(level),
            directives: Vec::new(),
        }
    }

    /// Whether `target` at `level` passes. Target matching is by prefix
    /// on `.` boundaries: directive `corpus` matches `corpus` and
    /// `corpus.merge` but not `corpuscle`.
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        let mut best: Option<(usize, Option<Level>)> = None;
        for (prefix, directive) in &self.directives {
            let matches = target == prefix
                || (target.len() > prefix.len()
                    && target.starts_with(prefix.as_str())
                    && target.as_bytes()[prefix.len()] == b'.');
            if matches && best.is_none_or(|(len, _)| prefix.len() >= len) {
                best = Some((prefix.len(), *directive));
            }
        }
        match best {
            Some((_, directive)) => directive.is_some_and(|max| level <= max),
            None => self.default.is_some_and(|max| level <= max),
        }
    }

    /// The most verbose level any target can pass (drives the disabled
    /// fast path); `None` when the filter silences everything.
    fn max_level(&self) -> Option<Level> {
        self.directives
            .iter()
            .filter_map(|(_, level)| *level)
            .chain(self.default)
            .max()
    }
}

/// Ring-buffer capacity for recently closed spans.
const RECENT_SPANS: usize = 256;

/// A closed span as kept in the recent-spans ring.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Microseconds since process start when the span opened.
    pub ts_us: u64,
    /// Wall time between open and close, microseconds (monotonic clock).
    pub dur_us: u64,
    /// Severity the span was opened at.
    pub level: Level,
    /// Dotted component path (`serve.request`, `corpus.merge`).
    pub target: &'static str,
    /// Span name (`ingest`, `knn`).
    pub name: &'static str,
    /// Process-unique span ID (also the request/batch ID surfaced to
    /// callers).
    pub id: u64,
    /// Enclosing span's ID, if the span was opened inside one.
    pub parent: Option<u64>,
    /// `(key, value)` fields attached to the span.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A span or event field value (kept simple on purpose: numbers and
/// small strings).
#[derive(Debug, Clone)]
pub enum FieldValue {
    /// Unsigned quantity (counts, sizes, microseconds).
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Short text (a dialect name, an endpoint).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn to_json(&self) -> OwnedJsonValue {
        match self {
            FieldValue::U64(v) => JsonValue::Int(i64::try_from(*v).unwrap_or(i64::MAX)),
            FieldValue::I64(v) => JsonValue::Int(*v),
            FieldValue::Str(v) => JsonValue::from(v.clone()),
        }
    }
}

/// The process-wide tracer state.
struct Tracer {
    /// Process start; all timestamps are offsets from here.
    epoch: Instant,
    /// `Level as u8` of the most verbose enabled level, 0 = all off.
    /// Read with one relaxed load on every span/event site.
    max_level: AtomicU8,
    /// Next span ID (1-based; 0 means "no parent" in the JSONL).
    next_id: AtomicU64,
    /// Full filter, consulted only after `max_level` passes.
    filter: Mutex<Filter>,
    /// Recently closed spans, newest last, capped at [`RECENT_SPANS`].
    recent: Mutex<Vec<SpanRecord>>,
    /// JSONL sink, when configured.
    sink: Mutex<Option<Box<dyn Write + Send>>>,
}

fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| {
        let filter = match std::env::var("UPLAN_LOG") {
            Ok(spec) => Filter::parse(&spec),
            Err(_) => Filter::default(),
        };
        let max = filter.max_level().map_or(0, |l| l as u8);
        Tracer {
            epoch: Instant::now(),
            max_level: AtomicU8::new(max),
            next_id: AtomicU64::new(1),
            filter: Mutex::new(filter),
            recent: Mutex::new(Vec::new()),
            sink: Mutex::new(None),
        }
    })
}

thread_local! {
    /// Stack of currently open span IDs on this thread (for parent
    /// linkage).
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Replaces the active filter (tests, programmatic configuration). The
/// environment-derived filter is installed lazily on first use; calling
/// this afterwards wins.
pub fn set_filter(filter: Filter) {
    let t = tracer();
    let max = filter.max_level().map_or(0, |l| l as u8);
    *t.filter.lock().expect("trace filter lock") = filter;
    t.max_level.store(max, Ordering::Relaxed);
}

/// Opens a JSONL sink at `path` (truncating), so every subsequently
/// closed span and emitted event is appended as one JSON line. When
/// `UPLAN_LOG` is unset and no filter was installed, the default level is
/// bumped to `debug` so the log captures the pipeline's per-operation
/// spans without extra configuration.
pub fn init_json_log(path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let t = tracer();
    *t.sink.lock().expect("trace sink lock") = Some(Box::new(std::io::BufWriter::new(file)));
    if t.max_level.load(Ordering::Relaxed) == 0 && std::env::var("UPLAN_LOG").is_err() {
        set_filter(Filter::at(Level::Debug));
    }
    Ok(())
}

/// Installs an arbitrary writer as the JSONL sink (tests).
pub fn set_json_sink(sink: Option<Box<dyn Write + Send>>) {
    *tracer().sink.lock().expect("trace sink lock") = sink;
}

/// Flushes the JSONL sink, if one is configured.
pub fn flush_json_log() {
    if let Some(sink) = tracer().sink.lock().expect("trace sink lock").as_mut() {
        let _ = sink.flush();
    }
}

/// Whether `target` at `level` is currently enabled. One relaxed atomic
/// load on the (common) all-off path.
pub fn enabled(target: &str, level: Level) -> bool {
    let t = tracer();
    let max = t.max_level.load(Ordering::Relaxed);
    if max == 0 || level as u8 > max {
        return false;
    }
    t.filter
        .lock()
        .expect("trace filter lock")
        .enabled(target, level)
}

/// The recently closed spans, oldest first (bounded at a few hundred).
pub fn recent_spans() -> Vec<SpanRecord> {
    tracer().recent.lock().expect("trace ring lock").clone()
}

/// Clears the recent-span ring (tests).
pub fn clear_recent_spans() {
    tracer().recent.lock().expect("trace ring lock").clear();
}

/// Microseconds since process start on the monotonic clock.
fn now_us() -> u64 {
    tracer().epoch.elapsed().as_micros() as u64
}

/// An open span: created by [`span`], closed (recorded + logged) on drop.
/// Disabled spans are inert except for carrying a fresh ID.
pub struct SpanGuard {
    /// Process-unique ID, allocated even when the span is disabled so
    /// callers can use it as a request/batch ID unconditionally.
    id: u64,
    /// `None` when the span was filtered out at open time.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    ts_us: u64,
    start: Instant,
    level: Level,
    target: &'static str,
    name: &'static str,
    parent: Option<u64>,
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    /// The span's process-unique ID (valid even when tracing is off).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a field; a no-op when the span is disabled.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(live) = &mut self.live {
            live.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else {
                // Out-of-order drop (guards moved across an early return):
                // excise rather than corrupt the stack.
                stack.retain(|&id| id != self.id);
            }
        });
        let record = SpanRecord {
            ts_us: live.ts_us,
            dur_us: live.start.elapsed().as_micros() as u64,
            level: live.level,
            target: live.target,
            name: live.name,
            id: self.id,
            parent: live.parent,
            fields: live.fields,
        };
        let t = tracer();
        {
            let mut recent = t.recent.lock().expect("trace ring lock");
            if recent.len() >= RECENT_SPANS {
                recent.remove(0);
            }
            recent.push(record.clone());
        }
        write_line(t, &span_json(&record));
    }
}

/// Opens a span. Always returns a guard with a fresh process-unique ID;
/// when `target`/`level` is filtered out the guard is otherwise inert.
pub fn span(target: &'static str, level: Level, name: &'static str) -> SpanGuard {
    let t = tracer();
    let id = t.next_id.fetch_add(1, Ordering::Relaxed);
    if !enabled(target, level) {
        return SpanGuard { id, live: None };
    }
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    SpanGuard {
        id,
        live: Some(LiveSpan {
            ts_us: now_us(),
            start: Instant::now(),
            level,
            target,
            name,
            parent,
            fields: Vec::new(),
        }),
    }
}

/// Emits a point-in-time event (no duration) with the given fields. The
/// current thread's innermost open span, if any, is recorded as parent.
pub fn event(
    target: &'static str,
    level: Level,
    name: &'static str,
    fields: &[(&'static str, FieldValue)],
) {
    if !enabled(target, level) {
        return;
    }
    let t = tracer();
    let parent = SPAN_STACK.with(|stack| stack.borrow().last().copied());
    let mut members: JsonMembers<'static> = vec![
        ("ts_us".into(), int_json(now_us())),
        ("level".into(), JsonValue::from(level.name())),
        ("target".into(), JsonValue::from(target)),
        ("event".into(), JsonValue::from(name)),
    ];
    if let Some(parent) = parent {
        members.push(("parent".into(), int_json(parent)));
    }
    if !fields.is_empty() {
        members.push((
            "fields".into(),
            JsonValue::Object(
                fields
                    .iter()
                    .map(|(k, v)| (std::borrow::Cow::Borrowed(*k), v.to_json()))
                    .collect(),
            ),
        ));
    }
    write_line(t, &JsonValue::Object(members));
}

fn int_json(v: u64) -> OwnedJsonValue {
    JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn span_json(record: &SpanRecord) -> OwnedJsonValue {
    let mut members: JsonMembers<'static> = vec![
        ("ts_us".into(), int_json(record.ts_us)),
        ("dur_us".into(), int_json(record.dur_us)),
        ("level".into(), JsonValue::from(record.level.name())),
        ("target".into(), JsonValue::from(record.target)),
        ("span".into(), JsonValue::from(record.name)),
        ("id".into(), int_json(record.id)),
    ];
    if let Some(parent) = record.parent {
        members.push(("parent".into(), int_json(parent)));
    }
    if !record.fields.is_empty() {
        members.push((
            "fields".into(),
            JsonValue::Object(
                record
                    .fields
                    .iter()
                    .map(|(k, v)| (std::borrow::Cow::Borrowed(*k), v.to_json()))
                    .collect(),
            ),
        ));
    }
    JsonValue::Object(members)
}

fn write_line(t: &Tracer, line: &OwnedJsonValue) {
    let mut sink = t.sink.lock().expect("trace sink lock");
    if let Some(sink) = sink.as_mut() {
        let mut text = line.to_compact();
        text.push('\n');
        // Log-writer errors must never take the pipeline down; drop the
        // sink on failure instead.
        if sink.write_all(text.as_bytes()).is_err() {
            *sink = Box::new(std::io::sink());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The tracer is process-global; tests that reconfigure it must not
    /// interleave.
    fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn reset() {
        set_filter(Filter::default());
        set_json_sink(None);
        clear_recent_spans();
    }

    #[test]
    fn filter_parses_levels_targets_and_off() {
        let f = Filter::parse("info,corpus.merge=trace,serve=off, bogus, weird=verylow");
        assert!(f.enabled("convert.ingest", Level::Info));
        assert!(!f.enabled("convert.ingest", Level::Debug));
        assert!(f.enabled("corpus.merge", Level::Trace));
        assert!(
            f.enabled("corpus.merge.shard", Level::Trace),
            "prefix on . boundary"
        );
        // No substring match: "corpus.merged" misses the corpus.merge
        // directive and falls to the default (info), not trace.
        assert!(!f.enabled("corpus.merged", Level::Trace));
        assert!(f.enabled("corpus.merged", Level::Info));
        assert!(
            f.enabled("corpus", Level::Info),
            "unmatched target falls to default"
        );
        assert!(!f.enabled("serve", Level::Error), "off silences");
        assert!(!f.enabled("serve.request", Level::Error));
        assert_eq!(f.max_level(), Some(Level::Trace));
        assert!(Filter::parse("").max_level().is_none());
        assert!(!Filter::default().enabled("anything", Level::Error));
        // Longest prefix wins regardless of order.
        let f = Filter::parse("corpus=off,corpus.merge=debug");
        assert!(f.enabled("corpus.merge", Level::Debug));
        assert!(!f.enabled("corpus.query", Level::Error));
    }

    #[test]
    fn disabled_spans_still_mint_ids() {
        let _x = exclusive();
        reset();
        let a = span("test.off", Level::Debug, "a");
        let b = span("test.off", Level::Debug, "b");
        assert_ne!(a.id(), 0);
        assert_ne!(a.id(), b.id());
        drop(b);
        drop(a);
        assert!(recent_spans().is_empty(), "disabled spans are not recorded");
    }

    #[test]
    fn spans_nest_and_order_in_the_jsonl_log() {
        let _x = exclusive();
        reset();
        set_filter(Filter::parse("test.nest=debug"));
        let buf = std::sync::Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        set_json_sink(Some(Box::new(Shared(buf.clone()))));

        let (outer_id, inner_id);
        {
            let mut outer = span("test.nest", Level::Info, "outer");
            outer.field("plans", 42u64);
            outer_id = outer.id();
            {
                let inner = span("test.nest", Level::Debug, "inner");
                inner_id = inner.id();
                event(
                    "test.nest",
                    Level::Warn,
                    "slow",
                    &[("lat_us", FieldValue::U64(9)), ("endpoint", "knn".into())],
                );
                // A filtered-out sibling leaves no trace and no stack damage.
                let _off = span("test.other", Level::Trace, "invisible");
            }
        }
        flush_json_log();
        reset();

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        // Event first (emitted inside), then inner (closes first), then
        // outer — the JSONL file is ordered by close time.
        assert!(lines[0].contains("\"event\":\"slow\""), "{}", lines[0]);
        assert!(
            lines[0].contains(&format!("\"parent\":{inner_id}")),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"lat_us\":9"));
        assert!(lines[0].contains("\"endpoint\":\"knn\""));
        assert!(!lines[0].contains("dur_us"), "events carry no duration");
        assert!(lines[1].contains("\"span\":\"inner\""), "{}", lines[1]);
        assert!(lines[1].contains(&format!("\"id\":{inner_id}")));
        assert!(
            lines[1].contains(&format!("\"parent\":{outer_id}")),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("\"span\":\"outer\""), "{}", lines[2]);
        assert!(lines[2].contains(&format!("\"id\":{outer_id}")));
        assert!(
            !lines[2].contains("parent"),
            "root span has no parent: {}",
            lines[2]
        );
        assert!(
            lines[2].contains("\"fields\":{\"plans\":42}"),
            "{}",
            lines[2]
        );
        for line in &lines {
            assert!(line.contains("\"ts_us\":"));
        }
    }

    #[test]
    fn ring_buffer_keeps_the_most_recent_spans() {
        let _x = exclusive();
        reset();
        set_filter(Filter::parse("test.ring=debug"));
        for i in 0..(RECENT_SPANS + 10) {
            let mut s = span("test.ring", Level::Debug, "tick");
            s.field("i", i);
        }
        let recent = recent_spans();
        reset();
        assert_eq!(recent.len(), RECENT_SPANS);
        // Oldest entries were evicted; the newest survives at the back.
        let last = recent.last().unwrap();
        assert_eq!(last.name, "tick");
        match last.fields[0].1 {
            FieldValue::U64(i) => assert_eq!(i as usize, RECENT_SPANS + 9),
            ref other => panic!("unexpected field {other:?}"),
        }
    }
}
