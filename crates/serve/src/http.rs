//! A deliberately minimal HTTP/1.1 codec: request line + headers +
//! `Content-Length` body in, status + JSON body out, `Connection: close`
//! on every exchange. The daemon serves `curl` and scripts on localhost,
//! not browsers on the open internet — no chunked transfer, no keep-alive,
//! no TLS — and staying inside `std` keeps the workspace offline.

use std::io::{self, BufRead, Write};

/// Upper bound on a request body (a raw fleet dump batch); larger
/// submissions should be split — this is a backpressure boundary, not a
/// parsing limit.
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// Upper bound on the request line plus headers.
const MAX_HEAD: usize = 64 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (e.g. `/knn`).
    pub path: String,
    /// Raw `key=value` query parameters, in order.
    pub query: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when a flag-style parameter is present and not disabled
    /// (`?lenient=1`, `?lenient=true`, bare `?lenient`).
    pub fn flag(&self, key: &str) -> bool {
        match self.param(key) {
            None => false,
            Some(v) => !matches!(v, "0" | "false" | "no"),
        }
    }

    /// The body as UTF-8 text.
    pub fn body_text(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Bad("request body is not UTF-8".into()))
    }

    /// Reads one request from a buffered connection. `Ok(None)` means the
    /// peer closed without sending one (a health probe, or the shutdown
    /// wake-up connection).
    pub fn read_from(reader: &mut impl BufRead) -> Result<Option<HttpRequest>, HttpError> {
        let mut head = String::new();
        let mut content_length = 0usize;
        let mut request_line: Option<String> = None;
        loop {
            head.clear();
            let n = reader.read_line(&mut head).map_err(HttpError::Io)?;
            if n == 0 {
                return if request_line.is_none() {
                    Ok(None)
                } else {
                    Err(HttpError::Bad("connection closed mid-headers".into()))
                };
            }
            if n > MAX_HEAD {
                return Err(HttpError::Bad("header line too long".into()));
            }
            let line = head.trim_end_matches(['\r', '\n']);
            match &request_line {
                None => {
                    if line.is_empty() {
                        continue; // tolerate leading blank lines
                    }
                    request_line = Some(line.to_string());
                }
                Some(_) => {
                    if line.is_empty() {
                        break; // end of headers
                    }
                    if let Some((key, value)) = line.split_once(':') {
                        if key.eq_ignore_ascii_case("content-length") {
                            content_length = value
                                .trim()
                                .parse()
                                .map_err(|_| HttpError::Bad("bad Content-Length".into()))?;
                        }
                    }
                }
            }
        }
        let request_line = request_line.expect("loop breaks only after a request line");
        let mut parts = request_line.split_whitespace();
        let (method, target) = match (parts.next(), parts.next()) {
            (Some(m), Some(t)) => (m.to_ascii_uppercase(), t),
            _ => return Err(HttpError::Bad(format!("bad request line {request_line:?}"))),
        };
        let (path, query_str) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let query = query_str
            .split('&')
            .filter(|s| !s.is_empty())
            .map(|pair| match pair.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => (pair.to_string(), String::new()),
            })
            .collect();
        if content_length > MAX_BODY {
            return Err(HttpError::TooLarge(content_length));
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).map_err(HttpError::Io)?;
        Ok(Some(HttpRequest {
            method,
            path: path.to_string(),
            query,
            body,
        }))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request framing.
    Bad(String),
    /// Declared body exceeds [`MAX_BODY`].
    TooLarge(usize),
    /// The socket failed underneath us.
    Io(io::Error),
}

/// One response: status, body, `Connection: close`.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON on every endpoint except the Prometheus-text
    /// `/metrics` exposition).
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// When set, echoed back as an `X-Request-Id` header so clients can
    /// correlate responses with the daemon's span log.
    pub request_id: Option<u64>,
    /// Tells the connection worker to initiate graceful shutdown after
    /// flushing this response.
    pub shutdown: bool,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status,
            body: body.into(),
            content_type: "application/json",
            request_id: None,
            shutdown: false,
        }
    }

    /// A plain-text response (the Prometheus exposition).
    pub fn text(status: u16, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            content_type: "text/plain; version=0.0.4",
            ..HttpResponse::json(status, body)
        }
    }

    /// The standard reason phrase for this response's status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serializes the response onto a connection.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        if let Some(id) = self.request_id {
            write!(w, "X-Request-Id: {id}\r\n")?;
        }
        w.write_all(b"Connection: close\r\n\r\n")?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<HttpRequest>, HttpError> {
        HttpRequest::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_line_query_and_body() {
        let req = parse(
            "POST /ingest?lenient=1&tag HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/ingest");
        assert!(req.flag("lenient"));
        assert!(req.flag("tag"));
        assert!(!req.flag("missing"));
        assert_eq!(req.body_text().unwrap(), "hello");

        let req = parse("GET /stats HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert!(req.body.is_empty());
    }

    #[test]
    fn empty_connections_and_garbage_are_distinguished() {
        assert!(parse("").unwrap().is_none(), "clean close = no request");
        assert!(parse("POST /x HTTP/1.1\r\nContent-Length: zz\r\n\r\n").is_err());
        assert!(matches!(
            parse(&format!(
                "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY + 1
            )),
            Err(HttpError::TooLarge(_))
        ));
        // Truncated body: the read fails rather than hanging forever.
        assert!(parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").is_err());
    }

    #[test]
    fn responses_have_close_framing_and_exact_length() {
        let mut out = Vec::new();
        HttpResponse::json(429, "{\"status\":\"error\"}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Content-Length: 18\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(!text.contains("X-Request-Id"));
        assert!(text.ends_with("{\"status\":\"error\"}"));
    }

    #[test]
    fn text_responses_carry_content_type_and_request_id() {
        let mut response = HttpResponse::text(200, "m_total 1\n");
        response.request_id = Some(42);
        let mut out = Vec::new();
        response.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(text.contains("X-Request-Id: 42\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("m_total 1\n"));
    }
}
