//! # uplan-serve — the plan-corpus daemon
//!
//! The paper's testing flywheel is a long-lived loop: engines stream
//! plans in while differential checks query what has been seen. This
//! crate serves that loop over HTTP/1.1 + JSON on a plain
//! `std::net::TcpListener` and a hand-rolled worker pool (the workspace
//! is offline — zero dependencies beyond the workspace itself), on top of
//! the snapshot/delta [`CorpusService`]:
//!
//! | Method | Path        | Body                       | Answers |
//! |--------|-------------|----------------------------|---------|
//! | POST   | `/ingest`   | raw framed fleet dump      | 202 accepted into the bounded delta queue; **429** on overflow (backpressure) |
//! | POST   | `/knn`      | `{"k": …, "probe": …}`     | 200 [`uplan_corpus::QueryResponse`] JSON; **422** when a counted-TED budget trips |
//! | POST   | `/radius`   | `{"radius": …, "probe": …}`| same |
//! | POST   | `/cluster`  | `{"radius": …}`            | 200 clustering of the snapshot |
//! | GET    | `/stats`    | —                          | 200 epoch, pending, corpus stats (the walk is cached per epoch), the segment census when the service persists to a segment store, per-endpoint latency/eval histograms |
//! | POST   | `/diff`     | JSONL corpus (`?radius=N`) | 200 fingerprint + radius novelty both ways |
//! | POST   | `/merge`    | —                          | 200 forces an epoch merge now |
//! | GET    | `/metrics`  | —                          | 200 Prometheus-text exposition (`?format=json` for JSON): this daemon's request series plus the process-global ingest/corpus series |
//! | POST   | `/shutdown` | —                          | 200, then graceful drain: in-flight requests finish, the delta merges one last time |
//!
//! Queries run against an epoch-consistent [`CorpusSnapshot`]; each
//! worker holds a [`SnapshotReader`], so the steady-state read path costs
//! one atomic load — zero locks — while batched ingest merges epochs in
//! the background. The same handlers are callable in process
//! ([`handle`]), which is how the `serve/*` bench rows measure request
//! cost without a socket.
//!
//! Every response carries an `X-Request-Id` header (a process-unique span
//! ID); requests over the configured latency or counted-TED slow-query
//! threshold are counted per endpoint and emitted as `slow_query` trace
//! events, so a drifting campaign shows up in the span log with the IDs
//! needed to correlate client-side.

pub mod http;
pub mod metrics;
pub mod pool;

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use uplan_convert::raw::{ingest_raw_with, RawIngestOptions};
use uplan_core::fingerprint::FingerprintOptions;
use uplan_core::formats::json::{self, object, JsonValue, OwnedJsonValue};
use uplan_core::UnifiedPlan;
use uplan_corpus::service::{CorpusService, CorpusSnapshot, ServiceError, SnapshotReader};
use uplan_corpus::{PlanCorpus, QueryError, QueryRequest};
use uplan_obs::{trace, Level};

use http::{HttpError, HttpRequest, HttpResponse};
use metrics::ServeMetrics;
use pool::WorkerPool;

/// How the daemon runs: where to listen, how wide, how bounded.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7171` (port 0 picks one).
    pub addr: String,
    /// Connection worker threads.
    pub threads: usize,
    /// Bound on plans accepted but not yet merged (the backpressure
    /// limit).
    pub queue_capacity: usize,
    /// Threads each epoch merge fans ingest across.
    pub merge_threads: usize,
    /// How often the background merger folds a non-empty delta into the
    /// next epoch.
    pub merge_interval: Duration,
    /// Latency (µs) over which a request counts as a slow query (0
    /// disables the latency criterion).
    pub slow_query_us: u64,
    /// Counted TED evaluations over which a request counts as a slow
    /// query (0 disables the eval criterion).
    pub slow_query_evals: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7171".to_string(),
            threads: 4,
            queue_capacity: uplan_corpus::service::DEFAULT_PENDING_CAPACITY,
            merge_threads: 4,
            merge_interval: Duration::from_millis(200),
            slow_query_us: 0,
            slow_query_evals: 0,
        }
    }
}

/// Everything the handlers share: the snapshot/delta service, the metrics
/// registry, and the shutdown latch.
#[derive(Debug)]
pub struct ServeState {
    service: Arc<CorpusService>,
    metrics: ServeMetrics,
    options: FingerprintOptions,
    merge_threads: usize,
    started: Instant,
    slow_query_us: u64,
    slow_query_evals: u64,
    shutdown: AtomicBool,
    /// The corpus-stats document of `/stats`, keyed by the epoch it was
    /// computed at. The walk is recomputed only when a merge bumps the
    /// epoch; between merges every `/stats` request reuses the document.
    stats_cache: Mutex<Option<(u64, OwnedJsonValue)>>,
    /// `/stats` requests answered from `stats_cache` (observability for
    /// the cache contract; asserted in the serve tests).
    stats_cache_hits: AtomicU64,
}

impl ServeState {
    /// Wraps a corpus for serving.
    pub fn new(corpus: PlanCorpus, queue_capacity: usize, merge_threads: usize) -> ServeState {
        ServeState::from_service(
            CorpusService::with_capacity(corpus, queue_capacity),
            merge_threads,
        )
    }

    /// Wraps an already-built service — the segment-store path: build the
    /// service with [`CorpusService::with_store`] so merges append
    /// segments, then serve it.
    pub fn from_service(service: CorpusService, merge_threads: usize) -> ServeState {
        let options = service.snapshot().corpus().options();
        ServeState {
            service: Arc::new(service),
            metrics: ServeMetrics::new(),
            options,
            merge_threads: merge_threads.max(1),
            started: Instant::now(),
            slow_query_us: 0,
            slow_query_evals: 0,
            shutdown: AtomicBool::new(false),
            stats_cache: Mutex::new(None),
            stats_cache_hits: AtomicU64::new(0),
        }
    }

    /// `/stats` requests answered from the per-epoch cache so far.
    pub fn stats_cache_hits(&self) -> u64 {
        self.stats_cache_hits.load(Ordering::Relaxed)
    }

    /// Sets the slow-query thresholds (0 disables a criterion): requests
    /// over `slow_query_us` microseconds of wall time or over
    /// `slow_query_evals` counted TED evaluations are counted in
    /// `uplan_http_slow_queries_total` and logged as `slow_query` events.
    pub fn with_slow_query_thresholds(
        mut self,
        slow_query_us: u64,
        slow_query_evals: u64,
    ) -> ServeState {
        self.slow_query_us = slow_query_us;
        self.slow_query_evals = slow_query_evals;
        self
    }

    /// The underlying snapshot/delta service.
    pub fn service(&self) -> &Arc<CorpusService> {
        &self.service
    }

    /// The per-endpoint request metrics.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Seconds since this state was constructed.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// `true` once `/shutdown` was requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn is_slow(&self, latency_us: u64, ted_evals: u64) -> bool {
        (self.slow_query_us > 0 && latency_us > self.slow_query_us)
            || (self.slow_query_evals > 0 && ted_evals > self.slow_query_evals)
    }
}

fn int(v: u64) -> OwnedJsonValue {
    JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn error_body(code: &str, message: &str) -> String {
    object([
        ("status", JsonValue::from("error")),
        ("error", JsonValue::from(code)),
        ("message", JsonValue::from(message)),
    ])
    .to_compact()
}

fn query_error_response(err: &QueryError) -> HttpResponse {
    let status = match err {
        QueryError::BudgetExceeded { .. } => 422,
        _ => 400,
    };
    HttpResponse::json(status, err.to_json_value().to_compact())
}

/// Dispatches one request against the state and a worker's snapshot
/// reader, recording latency/eval metrics. Pure with respect to I/O —
/// benches call it in process; the socket loop wraps it.
pub fn handle(state: &ServeState, reader: &mut SnapshotReader, req: &HttpRequest) -> HttpResponse {
    const ENDPOINTS: &[&str] = &[
        "/ingest",
        "/knn",
        "/radius",
        "/cluster",
        "/stats",
        "/diff",
        "/merge",
        "/metrics",
        "/shutdown",
    ];
    let start = Instant::now();
    // The span ID doubles as the request ID echoed in `X-Request-Id` —
    // minted even when tracing is off, so responses are always
    // correlatable.
    let mut span = trace::span("serve.request", Level::Debug, "request");
    let request_id = span.id();
    let with_id = |mut response: HttpResponse| {
        response.request_id = Some(request_id);
        response
    };
    let (endpoint, (response, ted_evals)) = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/ingest") => ("ingest", ingest(state, req)),
        ("POST", "/knn") => ("knn", query(reader, "knn", req)),
        ("POST", "/radius") => ("radius", query(reader, "radius", req)),
        ("POST", "/cluster") => ("cluster", query(reader, "cluster", req)),
        ("GET" | "POST", "/stats") => ("stats", stats(state, reader)),
        ("POST", "/diff") => ("diff", diff(state, reader, req)),
        ("POST", "/merge") => ("merge", merge(state)),
        ("GET" | "POST", "/metrics") => ("metrics", metrics_exposition(state, req)),
        ("POST", "/shutdown") => ("shutdown", shutdown(state)),
        (_, path) if ENDPOINTS.contains(&path) => {
            return with_id(HttpResponse::json(
                405,
                error_body("method-not-allowed", &format!("use POST for {path}")),
            ))
        }
        (_, path) => {
            return with_id(HttpResponse::json(
                404,
                error_body("not-found", &format!("no endpoint {path}")),
            ))
        }
    };
    let latency = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    state.metrics.record(endpoint, latency, ted_evals);
    if state.is_slow(latency, ted_evals) {
        state.metrics.record_slow(endpoint);
        trace::event(
            "serve.request",
            Level::Warn,
            "slow_query",
            &[
                ("endpoint", endpoint.into()),
                ("latency_us", latency.into()),
                ("ted_evals", ted_evals.into()),
                ("request_id", request_id.into()),
            ],
        );
    }
    span.field("endpoint", endpoint);
    span.field("status", response.status as u64);
    span.field("latency_us", latency);
    with_id(response)
}

/// POST /ingest: a raw framed fleet dump (JSONL / `---` / `#<len>`,
/// source-sniffed per record) staged through the one conversion pipeline,
/// then submitted to the bounded delta queue. `?lenient=1` skips bad
/// records instead of rejecting the dump.
fn ingest(state: &ServeState, req: &HttpRequest) -> (HttpResponse, u64) {
    let dump = match req.body_text() {
        Ok(d) => d,
        Err(_) => {
            return (
                HttpResponse::json(400, error_body("bad-dump", "ingest body is not UTF-8")),
                0,
            )
        }
    };
    let options = RawIngestOptions {
        strict: !req.flag("lenient"),
        ..RawIngestOptions::default()
    };
    // Stage through a scratch corpus: the dump's records become unified
    // plans (deduplicated within the batch) without touching the served
    // corpus — the merge dedups against it later.
    let mut staging = PlanCorpus::with_options(state.options);
    let report = match ingest_raw_with(dump, &mut staging, 1, &options) {
        Ok(report) => report,
        Err(e) => {
            return (
                HttpResponse::json(400, error_body("bad-dump", &e.to_string())),
                0,
            )
        }
    };
    let plans: Vec<UnifiedPlan> = staging.iter().map(|(_, plan)| plan.clone()).collect();
    let accepted = plans.len();
    match state.service.submit(plans) {
        Ok(pending) => {
            let body = object([
                ("status", JsonValue::from("accepted")),
                ("records", JsonValue::from(report.lines)),
                ("plans", JsonValue::from(accepted)),
                ("skipped", JsonValue::from(report.errors.len())),
                ("pending", JsonValue::from(pending)),
                ("epoch", int(state.service.epoch())),
            ]);
            (HttpResponse::json(202, body.to_compact()), 0)
        }
        Err(
            err @ ServiceError::Backpressure {
                pending, capacity, ..
            },
        ) => {
            let body = object([
                ("status", JsonValue::from("error")),
                ("error", JsonValue::from("backpressure")),
                ("message", JsonValue::from(err.to_string())),
                ("pending", JsonValue::from(pending)),
                ("capacity", JsonValue::from(capacity)),
            ]);
            (HttpResponse::json(429, body.to_compact()), 0)
        }
    }
}

/// POST /knn, /radius, /cluster: one [`QueryRequest`] body, answered from
/// the worker's epoch-consistent snapshot. A `"probe_raw"` string member
/// (one raw dump record) is converted through the same pipeline as
/// `/ingest` before the query runs.
fn query(reader: &mut SnapshotReader, kind: &str, req: &HttpRequest) -> (HttpResponse, u64) {
    let body = if req.body.is_empty() {
        "{}"
    } else {
        match req.body_text() {
            Ok(b) => b,
            Err(_) => {
                return (
                    HttpResponse::json(400, error_body("malformed", "body is not UTF-8")),
                    0,
                )
            }
        }
    };
    let doc = match json::parse(body) {
        Ok(doc) => doc.into_owned(),
        Err(e) => {
            return (
                HttpResponse::json(400, error_body("malformed", &e.to_string())),
                0,
            )
        }
    };
    let doc = match resolve_raw_probe(doc) {
        Ok(doc) => doc,
        Err(message) => {
            return (
                HttpResponse::json(400, error_body("bad-probe", &message)),
                0,
            )
        }
    };
    let request = match QueryRequest::from_json_value(&doc, Some(kind)) {
        Ok(request) => request,
        Err(e) => return (query_error_response(&e), 0),
    };
    match reader.current().execute(&request) {
        Ok(response) => {
            let evals = response.cost.ted_evals;
            (HttpResponse::json(200, response.to_json()), evals)
        }
        Err(e) => {
            let evals = match &e {
                QueryError::BudgetExceeded { spent, .. } => *spent,
                _ => 0,
            };
            (query_error_response(&e), evals)
        }
    }
}

/// Replaces a `"probe_raw"` member (one raw dump record as a JSON string)
/// with the converted `"probe"` plan.
fn resolve_raw_probe(doc: OwnedJsonValue) -> Result<OwnedJsonValue, String> {
    let JsonValue::Object(members) = doc else {
        return Ok(doc);
    };
    let mut out = Vec::with_capacity(members.len());
    for (key, value) in members {
        if key.as_ref() != "probe_raw" {
            out.push((key, value));
            continue;
        }
        let record = value
            .as_str()
            .ok_or_else(|| "\"probe_raw\" is not a string".to_string())?;
        let mut staging = PlanCorpus::new();
        ingest_raw_with(record, &mut staging, 1, &RawIngestOptions::default())
            .map_err(|e| format!("probe_raw does not convert: {e}"))?;
        if staging.len() != 1 {
            return Err(format!(
                "probe_raw must hold exactly one plan record, got {}",
                staging.len()
            ));
        }
        out.push((
            "probe".into(),
            uplan_core::formats::unified::to_json_value(staging.plan(0)),
        ));
    }
    Ok(JsonValue::Object(out))
}

/// GET /stats: the stats [`QueryResponse`] plus service fields (pending,
/// capacity, pending-merge lag, uptime, build info, total requests), the
/// segment census when the service persists to a segment store, and the
/// per-endpoint histograms.
///
/// The corpus-stats walk is cached per epoch: only the first `/stats`
/// after a merge recomputes it, every later request within the epoch
/// reuses the cached document (service fields are stamped fresh each
/// time).
fn stats(state: &ServeState, reader: &mut SnapshotReader) -> (HttpResponse, u64) {
    let epoch = reader.current().epoch();
    let mut doc = {
        let mut cache = state.stats_cache.lock().expect("stats cache lock");
        match cache.as_ref() {
            Some((cached_epoch, doc)) if *cached_epoch == epoch => {
                state.stats_cache_hits.fetch_add(1, Ordering::Relaxed);
                doc.clone()
            }
            _ => {
                let response = reader
                    .pinned()
                    .execute(&QueryRequest::stats())
                    .expect("stats queries cannot fail");
                let doc = response.to_json_value();
                *cache = Some((epoch, doc.clone()));
                doc
            }
        }
    };
    if let JsonValue::Object(members) = &mut doc {
        let (version, git) = uplan_obs::build_info();
        members.push(("pending".into(), JsonValue::from(state.service.pending())));
        members.push(("capacity".into(), JsonValue::from(state.service.capacity())));
        members.push((
            "pending_age_us".into(),
            int(u64::try_from(state.service.pending_age().as_micros()).unwrap_or(u64::MAX)),
        ));
        members.push(("uptime_seconds".into(), int(state.uptime().as_secs())));
        members.push((
            "build".into(),
            object([
                ("version", JsonValue::from(version)),
                ("git", JsonValue::from(git)),
            ]),
        ));
        members.push(("requests".into(), int(state.metrics.requests())));
        if let Some(census) = state.service.segment_census() {
            let rows = census
                .iter()
                .map(|row| {
                    object([
                        ("id", JsonValue::from(row.id as usize)),
                        ("plans", int(row.plans)),
                        ("bytes", JsonValue::from(row.bytes.total)),
                        ("plan_bytes", JsonValue::from(row.bytes.plans)),
                        ("symbol_bytes", JsonValue::from(row.bytes.symbols)),
                        ("index_bytes", JsonValue::from(row.bytes.index)),
                        ("feature_bytes", JsonValue::from(row.bytes.features)),
                    ])
                })
                .collect();
            members.push(("segments".into(), JsonValue::Array(rows)));
        }
        members.push(("metrics".into(), state.metrics.to_json_value()));
    }
    (HttpResponse::json(200, doc.to_compact()), 0)
}

/// GET /metrics: the Prometheus-text exposition (or `?format=json`) of
/// this daemon's request registry concatenated with the process-global
/// registry (ingest/corpus instrumentation). Uptime is stamped into the
/// instance registry at scrape time. The scrape itself is recorded
/// *after* the body is rendered, so the counters a scrape reports never
/// include that scrape.
fn metrics_exposition(state: &ServeState, req: &HttpRequest) -> (HttpResponse, u64) {
    state
        .metrics
        .registry()
        .gauge("uplan_uptime_seconds", "seconds since the daemon started")
        .set(i64::try_from(state.uptime().as_secs()).unwrap_or(i64::MAX));
    if req.param("format") == Some("json") {
        let mut doc = state.metrics.registry().encode_json();
        if let (JsonValue::Object(mine), JsonValue::Object(global)) =
            (&mut doc, uplan_obs::global().encode_json())
        {
            mine.extend(global);
        }
        (HttpResponse::json(200, doc.to_compact()), 0)
    } else {
        let mut text = state.metrics.registry().encode_prometheus();
        text.push_str(&uplan_obs::global().encode_prometheus());
        (HttpResponse::text(200, text), 0)
    }
}

/// POST /diff?radius=N: body is a JSONL corpus; answers fingerprint and
/// beyond-radius novelty both ways (left = the served snapshot).
fn diff(state: &ServeState, reader: &mut SnapshotReader, req: &HttpRequest) -> (HttpResponse, u64) {
    let radius = match req.param("radius").map(str::parse::<u32>) {
        None => 2,
        Some(Ok(r)) => r,
        Some(Err(_)) => {
            return (
                HttpResponse::json(400, error_body("malformed", "?radius= is not a u32")),
                0,
            )
        }
    };
    let body = match req.body_text() {
        Ok(b) => b,
        Err(_) => {
            return (
                HttpResponse::json(400, error_body("malformed", "diff body is not UTF-8")),
                0,
            )
        }
    };
    let other = match PlanCorpus::from_jsonl_with_options(body, state.options) {
        Ok(c) => c,
        Err(e) => {
            return (
                HttpResponse::json(
                    400,
                    error_body(
                        "bad-corpus",
                        &format!("diff body is not a JSONL corpus: {e}"),
                    ),
                ),
                0,
            )
        }
    };
    let snapshot = reader.current();
    let d = snapshot.corpus().diff(&other, radius);
    let ids = |v: &[usize]| JsonValue::Array(v.iter().map(|&id| JsonValue::from(id)).collect());
    let body = object([
        ("status", JsonValue::from("ok")),
        ("query", JsonValue::from("diff")),
        ("epoch", int(snapshot.epoch())),
        ("radius", JsonValue::from(radius as usize)),
        ("shared", JsonValue::from(d.shared)),
        ("fingerprint_only_left", ids(&d.fingerprint_only_left)),
        ("fingerprint_only_right", ids(&d.fingerprint_only_right)),
        ("beyond_radius_left", ids(&d.beyond_radius_left)),
        ("beyond_radius_right", ids(&d.beyond_radius_right)),
    ]);
    (HttpResponse::json(200, body.to_compact()), 0)
}

/// POST /merge: forces an epoch merge now (the background merger also
/// runs on its interval).
fn merge(state: &ServeState) -> (HttpResponse, u64) {
    let report = state.service.merge(state.merge_threads);
    let mut members = vec![
        ("status", JsonValue::from("ok")),
        ("epoch", int(report.epoch)),
        ("merged", JsonValue::from(report.merged)),
        ("novel", JsonValue::from(report.novel)),
        ("len", JsonValue::from(report.len)),
    ];
    if let Some(id) = report.segment_id {
        members.push(("segment_id", JsonValue::from(id as usize)));
        members.push(("segment_bytes", JsonValue::from(report.segment_bytes)));
    }
    let body = object(members);
    (HttpResponse::json(200, body.to_compact()), 0)
}

/// POST /shutdown: latches the shutdown flag; the server loop drains
/// in-flight work, merges the delta one last time and exits.
fn shutdown(state: &ServeState) -> (HttpResponse, u64) {
    state.shutdown.store(true, Ordering::Release);
    let body = object([
        ("status", JsonValue::from("ok")),
        ("message", JsonValue::from("shutting down")),
        ("epoch", int(state.service.epoch())),
        ("pending", JsonValue::from(state.service.pending())),
    ]);
    let mut response = HttpResponse::json(200, body.to_compact());
    response.shutdown = true;
    (response, 0)
}

/// The daemon: a listener, a connection worker pool (each worker holding
/// its own [`SnapshotReader`]) and a background epoch merger.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    config: ServerConfig,
    local_addr: SocketAddr,
}

impl Server {
    /// Binds the listener and wraps the corpus for serving. The corpus is
    /// epoch 0; nothing is served until [`Server::run`].
    pub fn bind(config: ServerConfig, corpus: PlanCorpus) -> std::io::Result<Server> {
        let state = ServeState::new(corpus, config.queue_capacity, config.merge_threads);
        Server::bind_with_state(config, state)
    }

    /// [`Server::bind`] with a caller-built state — the segment-store
    /// path, where the state wraps a [`CorpusService::with_store`] service
    /// so merges append segments. Slow-query thresholds are applied from
    /// the config.
    pub fn bind_with_state(config: ServerConfig, state: ServeState) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(
            state.with_slow_query_thresholds(config.slow_query_us, config.slow_query_evals),
        );
        Ok(Server {
            listener,
            state,
            config,
            local_addr,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared handler state (tests and embedders).
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Serves until `/shutdown`, then drains gracefully: queued
    /// connections finish, the background merger stops, and one final
    /// merge folds any remaining delta in. Returns the final snapshot.
    pub fn run(self) -> std::io::Result<Arc<CorpusSnapshot>> {
        let state = Arc::clone(&self.state);
        let merger = {
            let state = Arc::clone(&self.state);
            let interval = self.config.merge_interval;
            std::thread::spawn(move || {
                while !state.shutdown_requested() {
                    std::thread::park_timeout(interval);
                    if state.service.pending() > 0 {
                        state.service.merge(state.merge_threads);
                    }
                }
            })
        };
        {
            let state = Arc::clone(&self.state);
            let addr = self.local_addr;
            let pool: WorkerPool<TcpStream> = WorkerPool::spawn(
                self.config.threads,
                {
                    let state = Arc::clone(&state);
                    move |_| state.service.reader()
                },
                move |reader, stream| serve_connection(&state, reader, stream, addr),
            );
            for stream in self.listener.incoming() {
                if self.state.shutdown_requested() {
                    break;
                }
                if let Ok(stream) = stream {
                    // A full queue never drops a connection: dispatch only
                    // fails after shutdown, when refusing is correct.
                    let _ = pool.dispatch(stream);
                }
            }
            // Pool drop joins the workers: every accepted connection gets
            // its response before we move on.
        }
        merger.thread().unpark();
        merger.join().expect("merge ticker panicked");
        // Final drain: plans accepted after the last tick still land.
        state.service.merge(state.merge_threads);
        Ok(state.service.snapshot())
    }
}

/// One connection: read a request, handle it, flush the response. A
/// response flagged `shutdown` wakes the accept loop with a throwaway
/// connection so it observes the latch immediately.
fn serve_connection(
    state: &Arc<ServeState>,
    reader: &mut SnapshotReader,
    mut stream: TcpStream,
    addr: SocketAddr,
) {
    // Bounded patience: a stalled peer must not wedge a worker (and with
    // it, graceful shutdown).
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut buf = BufReader::new(clone);
    let response = match HttpRequest::read_from(&mut buf) {
        Ok(None) => return, // probe/wake-up connection: nothing to answer
        Ok(Some(req)) => handle(state, reader, &req),
        Err(HttpError::TooLarge(n)) => HttpResponse::json(
            413,
            error_body("too-large", &format!("{n}-byte body exceeds the limit")),
        ),
        Err(HttpError::Bad(m)) => HttpResponse::json(400, error_body("malformed", &m)),
        Err(HttpError::Io(_)) => return,
    };
    let shutdown = response.shutdown;
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
    if shutdown {
        // Wake the accept loop (it is parked in accept()).
        let _ = TcpStream::connect(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use uplan_core::PlanNode;

    fn chain(names: &[&str]) -> UnifiedPlan {
        let mut node: Option<PlanNode> = None;
        for name in names.iter().rev() {
            let mut n = PlanNode::producer(*name);
            if let Some(child) = node.take() {
                n = PlanNode::executor(*name).with_child(child);
            }
            node = Some(n);
        }
        UnifiedPlan::with_root(node.unwrap())
    }

    fn seed_corpus() -> PlanCorpus {
        let mut corpus = PlanCorpus::new();
        for plan in [
            chain(&["Scan_A"]),
            chain(&["Gather", "Scan_A"]),
            chain(&["Gather", "Sort", "Scan_A"]),
            chain(&["Collect", "Sort", "Hash", "Scan_B"]),
        ] {
            corpus.insert(plan);
        }
        corpus
    }

    /// One raw postgres-JSON dump record: a `Limit` chain of `depth`
    /// ending in `Materialize` — sniffable by the ingest pipeline and
    /// structurally distinct per depth.
    fn pg_record(depth: usize) -> String {
        let mut node = r#"{"Node Type": "Materialize"}"#.to_string();
        for _ in 0..depth {
            node = format!(r#"{{"Node Type": "Limit", "Plans": [{node}]}}"#);
        }
        format!(r#"[{{"Plan": {node}}}]"#)
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        request(addr, "POST", path, body)
    }

    fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .unwrap();
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    /// End to end over a real socket: ingest (raw dump) → merge → knn at
    /// the new epoch → budget trips 422 → backpressure trips 429 →
    /// graceful shutdown.
    #[test]
    fn daemon_round_trip_over_a_socket() {
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 3,
            queue_capacity: 4,
            merge_threads: 2,
            // Long interval: merges in this test are explicit.
            merge_interval: Duration::from_secs(60),
            ..ServerConfig::default()
        };
        let server = Server::bind(config, seed_corpus()).unwrap();
        let addr = server.local_addr();
        let runner = std::thread::spawn(move || server.run().unwrap());

        // A knn query against epoch 0.
        let probe = uplan_core::formats::unified::to_json(&chain(&["Gather", "Scan_A"]));
        let (status, body) = post(addr, "/knn", &format!("{{\"k\": 2, \"probe\": {probe}}}"));
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("epoch").unwrap().as_int(), Some(0));
        assert_eq!(doc.get("matches").unwrap().as_array().unwrap().len(), 2);

        // Ingest two raw postgres-JSON records (source-sniffed).
        let dump = format!("{}\n{}\n", pg_record(0), pg_record(1));
        let (status, body) = post(addr, "/ingest", &dump);
        assert_eq!(status, 202, "{body}");
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("plans").unwrap().as_int(), Some(2));
        assert_eq!(doc.get("pending").unwrap().as_int(), Some(2));

        // Overflow the bounded queue: 429.
        let big: String = (3..8).map(|d| pg_record(d) + "\n").collect();
        let (status, body) = post(addr, "/ingest", &big);
        assert_eq!(status, 429, "{body}");
        assert!(body.contains("backpressure"));

        // Merge, then the new plans answer queries at epoch 1.
        let (status, body) = post(addr, "/merge", "");
        assert_eq!(status, 200);
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("epoch").unwrap().as_int(), Some(1));
        assert_eq!(doc.get("merged").unwrap().as_int(), Some(2));
        // probe_raw: the same raw record converts through the pipeline and
        // matches itself at radius 0.
        let (status, body) = post(
            addr,
            "/radius",
            &format!(
                "{{\"radius\": 0, \"probe_raw\": {}}}",
                quote_json(&pg_record(0))
            ),
        );
        assert_eq!(status, 200);
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("epoch").unwrap().as_int(), Some(1));
        assert_eq!(doc.get("matches").unwrap().as_array().unwrap().len(), 1);

        // A 1-evaluation budget trips the distinct 422.
        let (status, body) = post(
            addr,
            "/knn",
            &format!("{{\"k\": 2, \"probe\": {probe}, \"max_ted_evals\": 1}}"),
        );
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("budget-exceeded"));

        // Stats: epoch 1, nothing pending, histograms populated, and the
        // new uptime/build/pending-age fields present.
        let (status, body) = request(addr, "GET", "/stats", "");
        assert_eq!(status, 200);
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("epoch").unwrap().as_int(), Some(1));
        assert_eq!(doc.get("pending").unwrap().as_int(), Some(0));
        assert_eq!(doc.get("pending_age_us").unwrap().as_int(), Some(0));
        assert!(doc.get("uptime_seconds").unwrap().as_int().is_some());
        assert!(doc
            .get("build")
            .unwrap()
            .get("version")
            .unwrap()
            .as_str()
            .is_some());
        assert_eq!(
            doc.get("stats").unwrap().get("distinct").unwrap().as_int(),
            Some(6)
        );
        assert!(doc.get("metrics").unwrap().get("knn").is_some());

        // /metrics: Prometheus text with this daemon's exact request
        // counts (2 knn requests so far: the epoch-0 query and the
        // budget-tripped one) and an X-Request-Id header.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
        assert!(raw.contains("Content-Type: text/plain"), "{raw}");
        assert!(raw.contains("X-Request-Id: "), "{raw}");
        let text = raw.split_once("\r\n\r\n").unwrap().1;
        assert!(
            text.contains("uplan_http_requests_total{endpoint=\"knn\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("uplan_http_requests_total{endpoint=\"ingest\"} 2"),
            "{text}"
        );
        assert!(text.contains("# TYPE uplan_http_request_latency_us histogram"));
        // The global registry rides along (this process ran raw ingest).
        assert!(text.contains("uplan_ingest_records_total"), "{text}");
        // JSON flavor of the same exposition.
        let (status, body) = request(addr, "GET", "/metrics?format=json", "");
        assert_eq!(status, 200);
        let doc = json::parse(&body).unwrap();
        assert!(doc.get("uplan_http_requests_total").is_some());
        assert!(doc.get("uplan_uptime_seconds").is_some());

        // Unknown path and wrong method.
        assert_eq!(post(addr, "/nope", "").0, 404);
        assert_eq!(request(addr, "GET", "/knn", "").0, 405);

        // Graceful shutdown completes the run thread.
        let (status, body) = post(addr, "/shutdown", "");
        assert_eq!(status, 200, "{body}");
        let snapshot = runner.join().unwrap();
        assert_eq!(snapshot.epoch(), 1);
        assert_eq!(snapshot.corpus().len(), 6);
    }

    /// The in-process handler path the benches use: no sockets at all.
    #[test]
    fn in_process_handlers_answer_without_a_socket() {
        let state = ServeState::new(seed_corpus(), 100, 1);
        let service = Arc::clone(state.service());
        let mut reader = service.reader();
        let probe = uplan_core::formats::unified::to_json(&chain(&["Scan_A"]));
        let req = HttpRequest {
            method: "POST".into(),
            path: "/knn".into(),
            query: Vec::new(),
            body: format!("{{\"k\": 1, \"probe\": {probe}}}").into_bytes(),
        };
        let response = handle(&state, &mut reader, &req);
        assert_eq!(response.status, 200);
        assert!(response.body.contains("\"matches\""));
        assert_eq!(state.metrics().requests(), 1);
        assert!(
            response.request_id.is_some(),
            "every response carries an id"
        );

        // probe_raw: a raw postgres-JSON record converts through the
        // pipeline before querying.
        let req = HttpRequest {
            method: "POST".into(),
            path: "/radius".into(),
            query: Vec::new(),
            body: format!(
                "{{\"radius\": 1, \"probe_raw\": {}}}",
                quote_json(&pg_record(0))
            )
            .into_bytes(),
        };
        let response = handle(&state, &mut reader, &req);
        assert_eq!(response.status, 200, "{}", response.body);

        // Ingest → merge → the snapshot advances.
        let dump = pg_record(2);
        let req = HttpRequest {
            method: "POST".into(),
            path: "/ingest".into(),
            query: Vec::new(),
            body: dump.into_bytes(),
        };
        assert_eq!(handle(&state, &mut reader, &req).status, 202);
        service.merge(1);
        assert_eq!(reader.current().epoch(), 1);
        assert_eq!(reader.current().corpus().len(), 5);
    }

    fn quote_json(s: &str) -> String {
        JsonValue::from(s).to_compact()
    }

    /// Satellite: the `/stats` corpus walk is computed once per epoch —
    /// repeat requests within an epoch hit the cache, a merge invalidates
    /// it, and the cached document still reports the fresh service fields.
    #[test]
    fn stats_walk_is_cached_per_epoch() {
        let state = ServeState::new(seed_corpus(), 100, 1);
        let service = Arc::clone(state.service());
        let mut reader = service.reader();
        let req = HttpRequest {
            method: "GET".into(),
            path: "/stats".into(),
            query: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(handle(&state, &mut reader, &req).status, 200);
        assert_eq!(state.stats_cache_hits(), 0, "first request fills the cache");
        let response = handle(&state, &mut reader, &req);
        assert_eq!(response.status, 200);
        assert_eq!(state.stats_cache_hits(), 1, "same epoch: cache hit");
        // Service fields are stamped fresh even on a hit.
        let doc = json::parse(&response.body).unwrap();
        assert_eq!(doc.get("epoch").unwrap().as_int(), Some(0));
        assert!(doc.get("requests").unwrap().as_int().unwrap() >= 1);

        // A merge bumps the epoch: the next request recomputes, the one
        // after hits again.
        service.submit(vec![chain(&["Scan_C"])]).unwrap();
        service.merge(1);
        let (status, body) = {
            let r = handle(&state, &mut reader, &req);
            (r.status, r.body)
        };
        assert_eq!(status, 200);
        assert_eq!(state.stats_cache_hits(), 1, "new epoch: recompute");
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("epoch").unwrap().as_int(), Some(1));
        assert_eq!(
            doc.get("stats").unwrap().get("distinct").unwrap().as_int(),
            Some(5)
        );
        assert_eq!(handle(&state, &mut reader, &req).status, 200);
        assert_eq!(state.stats_cache_hits(), 2);
    }

    /// A segment-store-backed state: merges append segments, `/merge`
    /// reports the segment id, `/stats` carries the census, and the
    /// directory reopens to the served corpus.
    #[test]
    fn persistent_state_appends_segments_and_reports_census() {
        use uplan_corpus::SegmentStore;
        let dir = std::env::temp_dir().join(format!("uplan-serve-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SegmentStore::create(&dir, seed_corpus()).unwrap();
        let state = ServeState::from_service(CorpusService::with_store(store, 100), 2);
        let service = Arc::clone(state.service());
        let mut reader = service.reader();

        // Ingest a raw record and merge over HTTP handlers.
        let req = HttpRequest {
            method: "POST".into(),
            path: "/ingest".into(),
            query: Vec::new(),
            body: pg_record(2).into_bytes(),
        };
        assert_eq!(handle(&state, &mut reader, &req).status, 202);
        let req = HttpRequest {
            method: "POST".into(),
            path: "/merge".into(),
            query: Vec::new(),
            body: Vec::new(),
        };
        let response = handle(&state, &mut reader, &req);
        assert_eq!(response.status, 200, "{}", response.body);
        let doc = json::parse(&response.body).unwrap();
        assert_eq!(doc.get("segment_id").unwrap().as_int(), Some(1));
        assert!(doc.get("segment_bytes").unwrap().as_int().unwrap() > 0);

        // /stats reports the per-segment census.
        let req = HttpRequest {
            method: "GET".into(),
            path: "/stats".into(),
            query: Vec::new(),
            body: Vec::new(),
        };
        let response = handle(&state, &mut reader, &req);
        assert_eq!(response.status, 200);
        let doc = json::parse(&response.body).unwrap();
        let segments = doc.get("segments").unwrap().as_array().unwrap();
        assert_eq!(segments.len(), 2);
        assert_eq!(segments[0].get("plans").unwrap().as_int(), Some(4));
        assert_eq!(segments[1].get("plans").unwrap().as_int(), Some(1));
        assert!(segments[1].get("bytes").unwrap().as_int().unwrap() > 0);

        // The directory holds everything the daemon serves.
        let reopened = SegmentStore::open(&dir).unwrap().into_corpus();
        assert_eq!(reopened.len(), reader.current().corpus().len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Slow-query accounting: with an eval threshold of 1, any real
    /// similarity query on a multi-plan corpus trips the counter; with
    /// thresholds disabled (the default) nothing does.
    #[test]
    fn slow_queries_are_counted_per_endpoint() {
        let state = ServeState::new(seed_corpus(), 100, 1).with_slow_query_thresholds(0, 1);
        assert!(state.is_slow(0, 2));
        assert!(!state.is_slow(u64::MAX, 1), "latency criterion disabled");
        let service = Arc::clone(state.service());
        let mut reader = service.reader();
        let probe = uplan_core::formats::unified::to_json(&chain(&["Scan_A"]));
        let req = HttpRequest {
            method: "POST".into(),
            path: "/knn".into(),
            query: Vec::new(),
            body: format!("{{\"k\": 1, \"probe\": {probe}}}").into_bytes(),
        };
        assert_eq!(handle(&state, &mut reader, &req).status, 200);
        let text = state.metrics().registry().encode_prometheus();
        assert!(
            text.contains("uplan_http_slow_queries_total{endpoint=\"knn\"} 1"),
            "{text}"
        );
        // A /stats request does no TED work: not slow.
        let req = HttpRequest {
            method: "GET".into(),
            path: "/stats".into(),
            query: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(handle(&state, &mut reader, &req).status, 200);
        let text = state.metrics().registry().encode_prometheus();
        assert!(
            text.contains("uplan_http_slow_queries_total{endpoint=\"stats\"} 0"),
            "{text}"
        );
    }
}
