//! Per-request metrics on a per-daemon [`Registry`]: request counts,
//! latency (microseconds), counted TED evaluations and slow-query counts,
//! per endpoint — plus build-info and uptime series stamped at scrape
//! time. Recording is lock-free (pre-registered atomic handles looked up
//! by endpoint name); exposition is the obs crate's Prometheus-text and
//! JSON encoders.
//!
//! The registry is **per [`ServeMetrics`] instance**, not process-global:
//! each daemon (or test, or bench harness) owns its own request series,
//! so counters stay exact however many states coexist in one process.
//! `GET /metrics` concatenates this registry with the process-global one
//! (ingest/corpus instrumentation) into one exposition.
//!
//! [`ServeMetrics`]: ServeMetrics

use std::sync::Arc;

use uplan_core::formats::json::{JsonValue, OwnedJsonValue};
use uplan_obs::{Counter, Registry};
pub use uplan_obs::{Histogram, HistogramSnapshot};

/// Every endpoint the daemon dispatches, in exposition order.
pub const ENDPOINT_NAMES: [&str; 9] = [
    "ingest", "knn", "radius", "cluster", "stats", "diff", "merge", "metrics", "shutdown",
];

/// One endpoint's pre-registered handles.
struct EndpointHandles {
    name: &'static str,
    requests: Arc<Counter>,
    latency_us: Arc<Histogram>,
    ted_evals: Arc<Histogram>,
    slow: Arc<Counter>,
}

/// All per-endpoint request metrics of one daemon instance. Handles are
/// registered once at construction; [`ServeMetrics::record`] is a name
/// lookup plus a few relaxed atomic writes.
pub struct ServeMetrics {
    registry: Registry,
    endpoints: Vec<EndpointHandles>,
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

impl std::fmt::Debug for ServeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeMetrics")
            .field("requests", &self.requests())
            .finish()
    }
}

impl ServeMetrics {
    /// A fresh registry with every endpoint's series pre-registered (so
    /// the exposition is complete from the first scrape) plus the
    /// build-info series.
    pub fn new() -> ServeMetrics {
        let registry = Registry::new();
        let (version, git) = uplan_obs::build_info();
        registry
            .gauge_with(
                "uplan_build_info",
                "build metadata as labels; value is always 1",
                &[("version", version), ("git", git)],
            )
            .set(1);
        let endpoints = ENDPOINT_NAMES
            .iter()
            .map(|&name| EndpointHandles {
                name,
                requests: registry.counter_with(
                    "uplan_http_requests_total",
                    "requests served, by endpoint",
                    &[("endpoint", name)],
                ),
                latency_us: registry.histogram_with(
                    "uplan_http_request_latency_us",
                    "request wall time, microseconds",
                    &[("endpoint", name)],
                ),
                ted_evals: registry.histogram_with(
                    "uplan_http_request_ted_evals",
                    "counted TED evaluations spent answering a request",
                    &[("endpoint", name)],
                ),
                slow: registry.counter_with(
                    "uplan_http_slow_queries_total",
                    "requests over the configured latency/eval slow-query threshold",
                    &[("endpoint", name)],
                ),
            })
            .collect();
        ServeMetrics {
            registry,
            endpoints,
        }
    }

    fn endpoint(&self, name: &str) -> Option<&EndpointHandles> {
        self.endpoints.iter().find(|e| e.name == name)
    }

    /// Records one served request. Unknown endpoint names are ignored
    /// (the dispatcher only passes [`ENDPOINT_NAMES`] members).
    pub fn record(&self, endpoint: &str, latency_us: u64, ted_evals: u64) {
        if let Some(handles) = self.endpoint(endpoint) {
            handles.requests.inc();
            handles.latency_us.record(latency_us);
            handles.ted_evals.record(ted_evals);
        }
    }

    /// Counts a request that tripped the slow-query threshold.
    pub fn record_slow(&self, endpoint: &str) {
        if let Some(handles) = self.endpoint(endpoint) {
            handles.slow.inc();
        }
    }

    /// Total requests recorded across endpoints.
    pub fn requests(&self) -> u64 {
        self.endpoints.iter().map(|e| e.requests.get()).sum()
    }

    /// Requests recorded for one endpoint.
    pub fn requests_for(&self, endpoint: &str) -> u64 {
        self.endpoint(endpoint).map_or(0, |e| e.requests.get())
    }

    /// The instance registry (the `/metrics` exposition source).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The `/stats` payload: per *hit* endpoint, latency and eval
    /// summaries (endpoints nobody called are omitted, matching the
    /// pre-registry behavior of this report).
    pub fn to_json_value(&self) -> OwnedJsonValue {
        JsonValue::Object(
            self.endpoints
                .iter()
                .filter(|e| e.requests.get() > 0)
                .map(|e| {
                    (
                        std::borrow::Cow::Borrowed(e.name),
                        uplan_core::formats::json::object([
                            ("latency_us", e.latency_us.snapshot().summary_json()),
                            ("ted_evals", e.ted_evals.snapshot().summary_json()),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_accumulates_per_endpoint() {
        let metrics = ServeMetrics::new();
        metrics.record("knn", 120, 40);
        metrics.record("knn", 80, 44);
        metrics.record("stats", 5, 0);
        metrics.record("bogus", 1, 1);
        assert_eq!(metrics.requests(), 3, "unknown endpoints are ignored");
        assert_eq!(metrics.requests_for("knn"), 2);
        assert_eq!(metrics.requests_for("merge"), 0);
        let doc = metrics.to_json_value();
        let knn = doc.get("knn").unwrap();
        assert_eq!(
            knn.get("latency_us")
                .unwrap()
                .get("count")
                .unwrap()
                .as_int(),
            Some(2)
        );
        assert_eq!(
            doc.get("stats")
                .unwrap()
                .get("ted_evals")
                .unwrap()
                .get("max")
                .unwrap()
                .as_int(),
            Some(0)
        );
        assert!(doc.get("merge").is_none(), "unhit endpoints are omitted");
    }

    #[test]
    fn exposition_covers_every_endpoint_and_build_info() {
        let metrics = ServeMetrics::new();
        metrics.record("ingest", 9, 0);
        metrics.record_slow("ingest");
        let text = metrics.registry().encode_prometheus();
        assert!(text.contains("uplan_http_requests_total{endpoint=\"ingest\"} 1"));
        // Pre-registration: endpoints nobody hit still expose a 0 sample.
        assert!(text.contains("uplan_http_requests_total{endpoint=\"cluster\"} 0"));
        assert!(text.contains("uplan_http_slow_queries_total{endpoint=\"ingest\"} 1"));
        assert!(text.contains("uplan_http_request_latency_us_count{endpoint=\"ingest\"} 1"));
        let (version, _) = uplan_obs::build_info();
        assert!(text.contains(&format!("uplan_build_info{{version=\"{version}\"")));
        // Separate instances do not share counters.
        let other = ServeMetrics::new();
        assert_eq!(other.requests(), 0);
    }
}
