//! Per-request metrics in fixed-size log₂ histograms: request latency
//! (microseconds) and counted TED evaluations, per endpoint. Bounded
//! memory, lock held only for the few writes of a record, and quantiles
//! good to a factor of two — enough for the `/stats` payload and the
//! ROADMAP's measured-latency numbers without pulling in a metrics crate.

use std::sync::Mutex;

use uplan_core::formats::json::{object, JsonValue, OwnedJsonValue};

/// A log₂-bucketed histogram of `u64` samples: bucket `b` holds values
/// with `b` significant bits (0, 1, 2–3, 4–7, …), so 65 buckets cover the
/// whole range.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    fn bucket(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0.5` =
    /// median), i.e. the answer is within 2× of the true quantile. 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen >= rank.max(1) {
                return if b == 0 { 0 } else { (1u64 << b) - 1 }.min(self.max);
            }
        }
        self.max
    }

    fn to_json(&self) -> OwnedJsonValue {
        let int = |v: u64| JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX));
        object([
            ("count", int(self.count)),
            ("mean", int(self.mean())),
            ("p50", int(self.quantile(0.5))),
            ("p90", int(self.quantile(0.9))),
            ("p99", int(self.quantile(0.99))),
            ("max", int(self.max)),
        ])
    }
}

/// One endpoint's pair of histograms.
#[derive(Debug, Default, Clone)]
struct EndpointMetrics {
    latency_us: Histogram,
    ted_evals: Histogram,
}

/// All per-endpoint metrics, behind one short-critical-section mutex
/// (two histogram writes per request — the query itself never holds it).
#[derive(Debug, Default)]
pub struct ServeMetrics {
    endpoints: Mutex<Vec<(String, EndpointMetrics)>>,
}

impl ServeMetrics {
    /// A fresh, empty registry.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Records one served request.
    pub fn record(&self, endpoint: &str, latency_us: u64, ted_evals: u64) {
        let mut endpoints = self.endpoints.lock().expect("metrics lock");
        let entry = match endpoints.iter_mut().find(|(name, _)| name == endpoint) {
            Some((_, m)) => m,
            None => {
                endpoints.push((endpoint.to_string(), EndpointMetrics::default()));
                &mut endpoints.last_mut().expect("just pushed").1
            }
        };
        entry.latency_us.record(latency_us);
        entry.ted_evals.record(ted_evals);
    }

    /// Total requests recorded across endpoints.
    pub fn requests(&self) -> u64 {
        self.endpoints
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(_, m)| m.latency_us.count())
            .sum()
    }

    /// The `/stats` payload: per endpoint, latency and eval summaries.
    pub fn to_json_value(&self) -> OwnedJsonValue {
        let endpoints = self.endpoints.lock().expect("metrics lock");
        JsonValue::Object(
            endpoints
                .iter()
                .map(|(name, m)| {
                    (
                        std::borrow::Cow::Owned(name.clone()),
                        object([
                            ("latency_us", m.latency_us.to_json()),
                            ("ted_evals", m.ted_evals.to_json()),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_within_a_factor_of_two() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 500);
        let p50 = h.quantile(0.5);
        assert!((500..=1000).contains(&p50), "p50 bucket bound {p50}");
        assert!(h.quantile(0.99) >= 990 / 2);
        assert!(h.quantile(1.0) <= 1000);
        // Degenerate cases.
        let empty = Histogram::default();
        assert_eq!(empty.quantile(0.5), 0);
        let mut zeros = Histogram::default();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.quantile(0.9), 0);
        assert_eq!(zeros.mean(), 0);
    }

    #[test]
    fn registry_accumulates_per_endpoint() {
        let metrics = ServeMetrics::new();
        metrics.record("knn", 120, 40);
        metrics.record("knn", 80, 44);
        metrics.record("stats", 5, 0);
        assert_eq!(metrics.requests(), 3);
        let doc = metrics.to_json_value();
        let knn = doc.get("knn").unwrap();
        assert_eq!(
            knn.get("latency_us")
                .unwrap()
                .get("count")
                .unwrap()
                .as_int(),
            Some(2)
        );
        assert_eq!(
            doc.get("stats")
                .unwrap()
                .get("ted_evals")
                .unwrap()
                .get("max")
                .unwrap()
                .as_int(),
            Some(0)
        );
    }
}
