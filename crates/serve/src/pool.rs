//! A small hand-rolled worker pool (the workspace is offline — no tokio,
//! no crossbeam): one `mpsc` channel behind a mutex, `N` OS threads, and
//! per-worker state built once at spawn. Dropping the pool closes the
//! channel and joins every worker, so in-flight work always finishes —
//! that is what makes the daemon's shutdown graceful rather than abrupt.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A fixed pool of worker threads consuming items of type `T`.
pub struct WorkerPool<T: Send + 'static> {
    /// `Some` while accepting; dropped (closing the channel) on shutdown.
    tx: Option<Sender<T>>,
    handles: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `threads` workers. Each builds its own state with
    /// `init(worker_index)` once, then runs `work(&mut state, item)` for
    /// every item it pulls — per-worker state is how connection workers
    /// keep a cached corpus snapshot without sharing locks.
    pub fn spawn<S, I, W>(threads: usize, init: I, work: W) -> WorkerPool<T>
    where
        S: Send + 'static,
        I: Fn(usize) -> S + Send + Sync + 'static,
        W: Fn(&mut S, T) + Send + Sync + 'static,
    {
        let (tx, rx) = channel::<T>();
        let rx = Arc::new(Mutex::new(rx));
        let shared = Arc::new((init, work));
        let handles = (0..threads.max(1))
            .map(|index| {
                let rx: Arc<Mutex<Receiver<T>>> = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let (init, work) = (&shared.0, &shared.1);
                    let mut state = init(index);
                    loop {
                        // Hold the receiver lock only for the dequeue, not
                        // for the work.
                        let item = match rx.lock().expect("pool receiver lock").recv() {
                            Ok(item) => item,
                            Err(_) => return, // channel closed: shut down
                        };
                        work(&mut state, item);
                    }
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
        }
    }

    /// Queues an item; returns it back if the pool is already shut down.
    pub fn dispatch(&self, item: T) -> Result<(), T> {
        match &self.tx {
            Some(tx) => tx.send(item).map_err(|e| e.0),
            None => Err(item),
        }
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        // Close the channel, then join: workers drain everything queued
        // before exiting.
        drop(self.tx.take());
        for handle in self.handles.drain(..) {
            handle.join().expect("pool worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn drop_drains_queued_work_across_workers() {
        let done = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        {
            let done = Arc::clone(&done);
            let sum = Arc::clone(&sum);
            let pool = WorkerPool::spawn(
                4,
                |_| 0usize, // per-worker counter just to prove state works
                move |local, item: usize| {
                    *local += 1;
                    sum.fetch_add(item, Ordering::Relaxed);
                    done.fetch_add(1, Ordering::Relaxed);
                },
            );
            for i in 0..100 {
                pool.dispatch(i).unwrap();
            }
            // Pool dropped here: must block until all 100 ran.
        }
        assert_eq!(done.load(Ordering::Relaxed), 100);
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
    }
}
