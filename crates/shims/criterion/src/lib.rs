//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of criterion's API its benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: a warm-up phase estimates the iteration rate, then a
//! fixed number of samples (each a timed batch of iterations) is collected;
//! the reported statistic is the median of per-sample means, with min/max as
//! the spread. Results are kept in the [`Criterion`] value so callers (the
//! `uplan-bench` snapshot subcommand) can export machine-readable numbers.
//!
//! Two environment variables tune the run without recompiling:
//! `UPLAN_BENCH_QUICK=1` shrinks warm-up/sample budgets (CI smoke mode), and
//! `UPLAN_BENCH_FILTER=substr` runs only matching benchmark names.

use std::time::{Duration, Instant};

/// Re-export of the standard black box (criterion's is a re-export too).
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted and ignored: every batch
/// size maps to per-sample batching here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// One benchmark's collected statistics, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id as passed to [`Criterion::bench_function`].
    pub name: String,
    /// Fastest per-sample mean.
    pub min_ns: f64,
    /// Median of per-sample means (the headline number).
    pub median_ns: f64,
    /// Slowest per-sample mean.
    pub max_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    quick: bool,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("UPLAN_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
        if quick {
            Criterion::quick()
        } else {
            Criterion {
                warm_up: Duration::from_millis(300),
                measurement: Duration::from_secs(2),
                samples: 30,
                quick: false,
                filter: env_filter(),
                results: Vec::new(),
            }
        }
    }
}

fn env_filter() -> Option<String> {
    std::env::var("UPLAN_BENCH_FILTER")
        .ok()
        .filter(|f| !f.is_empty())
}

impl Criterion {
    /// Fresh driver with default (env-tunable) settings.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Fresh driver with quick-mode budgets (CI smoke / snapshot runs) —
    /// the programmatic equivalent of `UPLAN_BENCH_QUICK=1`, without
    /// mutating process-wide environment state.
    pub fn quick() -> Self {
        Criterion {
            warm_up: Duration::from_millis(60),
            measurement: Duration::from_millis(240),
            samples: 12,
            quick: true,
            filter: env_filter(),
            results: Vec::new(),
        }
    }

    /// Whether this driver runs with quick-mode (smoke) budgets. Shim
    /// extension: lets benchmark code raise the budget of a known-noisy
    /// benchmark only in quick mode, where upstream criterion would instead
    /// rely on its adaptive sampling.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// Starts a named benchmark group whose budgets can be overridden
    /// (subset of `criterion::Criterion::benchmark_group`; benchmark ids
    /// become `group/name`).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: self.samples,
            driver: self,
        }
    }

    /// Overrides the measurement budget (criterion-compatible builder).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Overrides the warm-up budget (criterion-compatible builder).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Overrides the sample count (criterion-compatible builder).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_bench(name, self.warm_up, self.measurement, self.samples, f);
        self
    }

    fn run_bench<F>(
        &mut self,
        name: &str,
        warm_up: Duration,
        measurement: Duration,
        samples: usize,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up,
            measurement,
            samples,
            sample_means: Vec::new(),
            iterations: 0,
        };
        f(&mut bencher);
        let mut means = bencher.sample_means;
        if means.is_empty() {
            means.push(0.0);
        }
        means.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            name: name.to_owned(),
            min_ns: means[0],
            median_ns: means[means.len() / 2],
            max_ns: means[means.len() - 1],
            iterations: bencher.iterations,
        };
        println!(
            "{:<44} time:   [{} {} {}]",
            result.name,
            format_ns(result.min_ns),
            format_ns(result.median_ns),
            format_ns(result.max_ns),
        );
        self.results.push(result);
    }

    /// All results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Consumes the driver, returning its results.
    pub fn into_results(self) -> Vec<BenchResult> {
        self.results
    }

    /// Prints the trailing summary line criterion emits.
    pub fn final_summary(&self) {
        println!("\n{} benchmarks complete", self.results.len());
    }
}

/// A benchmark group with its own measurement budgets (subset of
/// `criterion::BenchmarkGroup`). Benchmark ids are `group/name`.
pub struct BenchmarkGroup<'c> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    driver: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides this group's measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Overrides this group's warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Overrides this group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Whether the underlying driver runs quick-mode budgets (shim
    /// extension, see [`Criterion::is_quick`]).
    pub fn is_quick(&self) -> bool {
        self.driver.is_quick()
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        let (warm_up, measurement, samples) = (self.warm_up, self.measurement, self.samples);
        self.driver.run_bench(&id, warm_up, measurement, samples, f);
        self
    }

    /// Ends the group (upstream-compatible no-op).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

/// Per-benchmark measurement state (subset of `criterion::Bencher`).
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    sample_means: Vec<f64>,
    iterations: u64,
}

impl Bencher {
    /// Measures a routine; the measured time covers every call.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: estimate iterations/second.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let rate = warm_iters as f64 / start.elapsed().as_secs_f64();
        let per_sample =
            ((rate * self.measurement.as_secs_f64() / self.samples as f64) as u64).max(1);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            self.sample_means.push(elapsed / per_sample as f64);
            self.iterations += per_sample;
        }
    }

    /// Measures a routine with untimed per-iteration setup.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up: estimate iterations/second of the routine alone.
        let mut warm_iters = 0u64;
        let mut spent = Duration::ZERO;
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            warm_iters += 1;
        }
        let rate = warm_iters as f64 / spent.as_secs_f64().max(1e-9);
        let per_sample =
            ((rate * self.measurement.as_secs_f64() / self.samples as f64) as u64).max(1) as usize;
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..per_sample).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            self.sample_means.push(elapsed / per_sample as f64);
            self.iterations += per_sample as u64;
        }
    }

    /// `iter_batched` variant passing the input by reference.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, move |mut input| routine(&mut input), size);
    }
}

/// Declares a benchmark group runner (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() -> $crate::Criterion {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion
        }
    };
}

/// Declares the bench `main` (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( let c = $group(); c.final_summary(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_plausible_numbers() {
        std::env::set_var("UPLAN_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut x = 0u64;
                for i in 0..100 {
                    x = x.wrapping_add(black_box(i));
                }
                x
            })
        });
        let r = &c.results()[0];
        assert_eq!(r.name, "spin");
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.iterations > 0);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        std::env::set_var("UPLAN_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert!(c.results()[0].median_ns > 0.0);
    }
}
