//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest's API its property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive`, [`Just`], [`any`], string-pattern strategies,
//! [`collection::vec`], [`option::of`], tuple strategies, and the
//! [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros.
//!
//! Unlike upstream, failing cases are **not shrunk**; the failing case index
//! and seed are printed so a failure is reproducible by reading the panic
//! message. Cases are generated from a deterministic per-test seed, so runs
//! are stable across invocations.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-case generator handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (resampling; panics after 1000 misses).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Recursive strategies: `f` receives the strategy for one level deeper.
    ///
    /// `levels` bounds recursion depth; the size/branch hints are accepted
    /// for API compatibility and folded into the leaf/deeper mix.
    fn prop_recursive<S2, F>(
        self,
        levels: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..levels {
            let deeper = f(strat).boxed();
            strat = BoxedStrategy::union(vec![leaf.clone(), deeper]);
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

impl<T: 'static> BoxedStrategy<T> {
    /// Uniform choice among alternatives (used by [`prop_oneof!`]).
    pub fn union(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "union of zero strategies");
        Union { options }.boxed()
    }
}

struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.reason);
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix edge cases in: proptest biases toward boundaries too.
                match rng.gen_range(0..10u32) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.gen_range(<$t>::MIN..<$t>::MAX),
                }
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1e15..1e15)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Ranges and string patterns as strategies
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

/// One `[class]{m,n}` atom of a simplified regex pattern.
struct PatternAtom {
    alphabet: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the subset of regex proptest string strategies use here:
/// a sequence of `[class]` atoms (ranges like `a-z`, literal `-` last),
/// each optionally repeated `{m,n}` / `{n}`. Bare literal characters are
/// single-occurrence atoms.
fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad range {lo}-{hi} in {pattern:?}");
                    set.extend((lo..=hi).filter(|c| c.is_ascii()));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("pattern repeat min"),
                    hi.trim().parse().expect("pattern repeat max"),
                ),
                None => {
                    let n = body.trim().parse().expect("pattern repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
        atoms.push(PatternAtom { alphabet, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let count = rng.gen_range(atom.min..atom.max + 1);
            for _ in 0..count {
                out.push(atom.alphabet[rng.gen_range(0..atom.alphabet.len())]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// Collections and Option
// ---------------------------------------------------------------------------

/// `prop::collection` (subset).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<T>` with a length drawn from `range`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors whose length lies in `range`.
    pub fn vec<S: Strategy>(element: S, range: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(range.start < range.end, "empty vec length range");
        VecStrategy {
            element,
            min: range.start,
            max: range.end - 1,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..self.max + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::option` (subset).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<T>` (±20% `None`, like upstream's default).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` roughly four times out of five.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.2) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros and runner plumbing
// ---------------------------------------------------------------------------

/// Builds the deterministic RNG for one test case.
pub fn rng_for_case(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Declares property tests (subset of proptest's macro; no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::rng_for_case(stringify!($name), case);
                    $(let $arg = ($strat).generate(&mut rng);)+
                    // Name the closure so panics mention the enclosing test.
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property (no shrink support: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::BoxedStrategy::union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    /// The `prop::` module path (`prop::collection::vec`, `prop::option::of`).
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn patterns_generate_matching_strings() {
        let mut rng = crate::rng_for_case("patterns", 0);
        for _ in 0..200 {
            let s = "[A-Z][a-zA-Z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
        for _ in 0..200 {
            let s = "[a-zA-Z0-9 _.<>=()'%-]{0,24}".generate(&mut rng);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.<>=()'%-".contains(c)));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::rng_for_case("oneof", 0);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(4, 24, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = crate::rng_for_case("recursion", 0);
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(x in 0i64..10, y in any::<bool>()) {
            prop_assert!((0..10).contains(&x));
            let _ = y;
        }
    }

    proptest! {
        #[test]
        fn macro_works_without_config(s in "[a-z]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
        }
    }
}
