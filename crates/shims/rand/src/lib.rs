//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `rand`'s API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range` / `gen_bool`.
//!
//! The generator is SplitMix64-seeded xoshiro256++ — a small, fast,
//! high-quality PRNG. Streams differ from upstream `rand`'s `StdRng`
//! (ChaCha12), which is fine: every consumer in this workspace treats the
//! RNG as an arbitrary deterministic source, never as a reproduction of
//! upstream streams.

use std::ops::Range;

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value sampling (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from a half-open range.
    ///
    /// Panics if the range is empty, like upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// The raw 64-bit source (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a half-open range.
///
/// The single generic `SampleRange` impl below (rather than one impl per
/// concrete range type) is what lets integer-literal fallback unify
/// `gen_range(1..20)` to `i32`, exactly as upstream `rand` does.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Widening multiply maps 64 uniform bits onto [0, span).
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        assert!(lo < hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + unit * (hi - lo)
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let equal = (0..100)
            .filter(|_| StdRng::seed_from_u64(7).gen_range(0..100i64) == c.gen_range(0..100i64))
            .count();
        assert!(equal < 100, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..17i64);
            assert!((5..17).contains(&v));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_roughly_honored() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn integer_sampling_covers_full_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
