//! Cardinality Estimation Restriction Testing, DBMS-agnostic (paper A.1).
//!
//! CERT's oracle (Ba & Rigger, ICSE'24): making a query strictly more
//! restrictive must not *increase* its estimated cardinality. The estimate
//! is read from the **unified plan** (`Cardinality->rows` at the root),
//! which is the paper's point — one extraction routine for every engine,
//! instead of per-DBMS EXPLAIN scraping.

use minidb::faults::BugId;
use minidb::Database;

use crate::generator::Generator;
use crate::pipeline::PlanPipeline;

/// A CERT finding: a restriction that grew the estimate.
#[derive(Debug, Clone)]
pub struct CertFailure {
    /// The base query.
    pub base_query: String,
    /// The restricted query.
    pub restricted_query: String,
    /// Base estimate.
    pub base_estimate: f64,
    /// Restricted estimate (larger — the bug).
    pub restricted_estimate: f64,
}

/// CERT configuration.
#[derive(Debug, Clone, Copy)]
pub struct CertConfig {
    /// Query pairs to examine.
    pub queries: usize,
    /// Relative tolerance before flagging (estimates are noisy).
    pub tolerance: f64,
}

impl Default for CertConfig {
    fn default() -> Self {
        CertConfig {
            queries: 200,
            tolerance: 0.05,
        }
    }
}

/// CERT outcome.
#[derive(Debug)]
pub struct CertOutcome {
    /// Monotonicity violations.
    pub failures: Vec<CertFailure>,
    /// Faults that fired (campaign accounting).
    pub fired: Vec<BugId>,
    /// Pairs examined.
    pub examined: usize,
}

/// Runs CERT against a prepared database.
pub fn run(db: &mut Database, generator: &mut Generator, config: CertConfig) -> CertOutcome {
    let mut pipeline = PlanPipeline::new();
    let mut failures = Vec::new();
    let mut fired = std::collections::BTreeSet::new();
    let mut examined = 0usize;

    for i in 0..config.queries {
        let query = generator.query();
        // Restriction 1: add a conjunct.
        let extra = generator.predicate(&aliases_of(&query.from));
        let restricted_sql = format!("{} AND ({extra})", query.sql);
        check_pair(
            db,
            &mut pipeline,
            &query.sql,
            &restricted_sql,
            config.tolerance,
            &mut failures,
        );
        examined += 1;

        // Restriction 2 (every few queries): grouping can only shrink output.
        if i % 5 == 0 && !query.has_join {
            let table = query.from.clone();
            let base = format!("SELECT c0 FROM {table} WHERE {}", query.predicate);
            let grouped = format!(
                "SELECT c0, COUNT(*) FROM {table} WHERE {} GROUP BY c0",
                query.predicate
            );
            check_pair(
                db,
                &mut pipeline,
                &base,
                &grouped,
                config.tolerance,
                &mut failures,
            );
            examined += 1;
        }
        fired.extend(db.take_fault_log());
    }
    CertOutcome {
        failures,
        fired: fired.into_iter().collect(),
        examined,
    }
}

fn aliases_of(from: &str) -> Vec<&str> {
    from.split(" JOIN ")
        .map(|part| part.split_whitespace().next().unwrap_or_default())
        .collect()
}

fn check_pair(
    db: &mut Database,
    pipeline: &mut PlanPipeline,
    base_sql: &str,
    restricted_sql: &str,
    tolerance: f64,
    failures: &mut Vec<CertFailure>,
) {
    let (Ok(base_plan), Ok(restricted_plan)) = (
        pipeline.unified_plan(db, base_sql),
        pipeline.unified_plan(db, restricted_sql),
    ) else {
        return;
    };
    let (Some(base), Some(restricted)) = (
        PlanPipeline::estimated_rows(&base_plan),
        PlanPipeline::estimated_rows(&restricted_plan),
    ) else {
        return;
    };
    if restricted > base * (1.0 + tolerance) + 1.0 {
        failures.push(CertFailure {
            base_query: base_sql.to_owned(),
            restricted_query: restricted_sql.to_owned(),
            base_estimate: base,
            restricted_estimate: restricted,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::profile::EngineProfile;

    fn prepared(profile: EngineProfile, seed: u64) -> (Database, Generator) {
        let mut db = Database::new(profile);
        let mut generator = Generator::new(seed);
        generator.create_schema(&mut db, 2);
        (db, generator)
    }

    #[test]
    fn healthy_estimators_are_monotonic() {
        for profile in [
            EngineProfile::Postgres,
            EngineProfile::MySql,
            EngineProfile::TiDb,
        ] {
            let (mut db, mut generator) = prepared(profile, 31);
            let outcome = run(
                &mut db,
                &mut generator,
                CertConfig {
                    queries: 80,
                    ..CertConfig::default()
                },
            );
            assert!(
                outcome.failures.is_empty(),
                "{profile}: {:?}",
                outcome.failures.first()
            );
        }
    }

    #[test]
    fn cert_catches_conjunction_fault() {
        let (mut db, mut generator) = prepared(EngineProfile::MySql, 37);
        db.arm_fault(BugId::Mysql114237);
        let outcome = run(&mut db, &mut generator, CertConfig::default());
        assert!(!outcome.failures.is_empty());
        let f = &outcome.failures[0];
        assert!(f.restricted_estimate > f.base_estimate);
    }

    #[test]
    fn cert_catches_postgres_range_fault() {
        let (mut db, mut generator) = prepared(EngineProfile::Postgres, 41);
        db.arm_fault(BugId::PostgresEmail);
        let outcome = run(&mut db, &mut generator, CertConfig::default());
        assert!(!outcome.failures.is_empty());
    }

    #[test]
    fn cert_catches_tidb_aggregate_fault() {
        let (mut db, mut generator) = prepared(EngineProfile::TiDb, 43);
        db.arm_fault(BugId::Tidb51524);
        let outcome = run(&mut db, &mut generator, CertConfig::default());
        assert!(!outcome.failures.is_empty());
    }
}
