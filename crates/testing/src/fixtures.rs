//! Shared TPC-H-lite dialect fixtures.
//!
//! One [`DialectFleet`] holds every engine substrate (four relational
//! planner profiles, the document store, the property graph) loaded with
//! the TPC-H-lite workload, and serializes any query in each of the nine
//! studied dialects' native EXPLAIN formats. The raw-fixture CLI, the
//! conversion-spine tests and the converter benches all draw from this one
//! helper, so "a TPC-H plan in dialect X" means the same bytes everywhere.

use minidb::profile::EngineProfile;
use minidb::Database;
use minidoc::{DocStore, Request};
use minigraph::{GraphStore, PatternQuery};
use uplan_convert::Source;
use uplan_workloads::tpch;

/// Every engine substrate of the study, loaded with TPC-H-lite (scale 1,
/// seed 7) and ready to explain queries in its native dialect.
pub struct DialectFleet {
    pg: Database,
    mysql: Database,
    tidb: Database,
    sqlite: Database,
    store: DocStore,
    graph: GraphStore,
    queries: Vec<(&'static str, String)>,
    mongo_queries: Vec<(&'static str, Request)>,
    graph_queries: Vec<(&'static str, PatternQuery)>,
}

impl Default for DialectFleet {
    fn default() -> DialectFleet {
        DialectFleet::new()
    }
}

impl DialectFleet {
    /// Loads all substrates. Engines are warm for the fleet's lifetime, so
    /// a fixed sequence of calls always yields the same serializations.
    pub fn new() -> DialectFleet {
        let mut store = DocStore::new();
        tpch::load_document(&mut store, 1, 7);
        let mut graph = GraphStore::new();
        tpch::load_graph(&mut graph, 1, 7);
        DialectFleet {
            pg: tpch::relational(EngineProfile::Postgres, 1),
            mysql: tpch::relational(EngineProfile::MySql, 1),
            tidb: tpch::relational(EngineProfile::TiDb, 1),
            sqlite: tpch::relational(EngineProfile::Sqlite, 1),
            store,
            graph,
            queries: tpch::queries(),
            mongo_queries: tpch::mongo_queries(),
            graph_queries: tpch::graph_queries(),
        }
    }

    /// Number of TPC-H-lite SQL queries (query ids wrap modulo this).
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// The eight relational serializations of TPC-H-lite query `qid`
    /// (0-based, wrapped), in the canonical dump order: PostgreSQL
    /// text + JSON, SparkSQL text and SQL Server XML (both from the
    /// PostgreSQL-profile plan — their emitters are engine-agnostic),
    /// MySQL JSON + table, TiDB table (whose operator ids carry
    /// `tidb_suffix`), SQLite EQP.
    pub fn relational(&mut self, qid: usize, tidb_suffix: u32) -> Vec<(Source, String)> {
        let (_, sql) = &self.queries[qid % self.queries.len()];
        let plan = self
            .pg
            .explain(sql)
            .unwrap_or_else(|e| panic!("pg q{qid}: {e}"));
        let mut out = vec![
            (Source::PostgresText, dialects::postgres::to_text(&plan)),
            (Source::PostgresJson, dialects::postgres::to_json(&plan)),
            (Source::SparkText, dialects::sparksql::to_text(&plan)),
            (Source::SqlServerXml, dialects::sqlserver::to_xml(&plan)),
        ];
        let plan = self
            .mysql
            .explain(sql)
            .unwrap_or_else(|e| panic!("mysql q{qid}: {e}"));
        out.push((Source::MySqlJson, dialects::mysql::to_json(&plan)));
        out.push((Source::MySqlTable, dialects::mysql::to_table(&plan)));
        let plan = self
            .tidb
            .explain(sql)
            .unwrap_or_else(|e| panic!("tidb q{qid}: {e}"));
        out.push((
            Source::TidbTable,
            dialects::tidb::to_table(&plan, tidb_suffix),
        ));
        let plan = self
            .sqlite
            .explain(sql)
            .unwrap_or_else(|e| panic!("sqlite q{qid}: {e}"));
        out.push((Source::SqliteEqp, dialects::sqlite::to_text(&plan)));
        out
    }

    /// The MongoDB serialization of document query `qid` (0-based,
    /// wrapped).
    pub fn mongo(&self, qid: usize) -> (Source, String) {
        let (_, plan) = self
            .store
            .find(&self.mongo_queries[qid % self.mongo_queries.len()].1);
        (Source::MongoJson, dialects::mongodb::to_json(&plan))
    }

    /// The Neo4j serialization of graph query `qid` (0-based, wrapped).
    pub fn neo4j(&self, qid: usize) -> (Source, String) {
        let (_, plan) = self
            .graph
            .run(&self.graph_queries[qid % self.graph_queries.len()].1);
        (Source::Neo4jTable, dialects::neo4j::to_table(&plan))
    }

    /// The InfluxDB serialization of synthetic iterator statistics.
    pub fn influx(series: u64, points: u64) -> (Source, String) {
        (
            Source::InfluxText,
            dialects::influxdb::to_text(&dialects::influxdb::InfluxStats::synthetic(
                series, points,
            )),
        )
    }
}

/// Encodes one dialect serialization as a raw-dump JSONL line: JSON
/// documents are compacted to one line, text formats are JSON-string
/// encoded — the framing `convert::ingest_raw` sniffs.
pub fn raw_dump_line(source: Source, serialized: &str) -> String {
    use uplan_core::formats::json::{self, JsonValue};
    match source {
        Source::PostgresJson | Source::MySqlJson | Source::MongoJson => json::parse(serialized)
            .unwrap_or_else(|e| panic!("{source:?} emitted invalid JSON: {e}"))
            .to_compact(),
        _ => JsonValue::from(serialized).to_compact(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_serializations_are_structurally_deterministic_and_convert() {
        use uplan_core::fingerprint::fingerprint;
        // Timing fields (planning time, compile time) are wall-clock
        // noise, so two fleets agree on plan *structure* — fingerprints of
        // the converted plans — not necessarily on bytes.
        let mut a = DialectFleet::new();
        let mut b = DialectFleet::new();
        let fp = |pairs: Vec<(Source, String)>| -> Vec<uplan_core::fingerprint::Fingerprint> {
            pairs
                .into_iter()
                .map(|(source, text)| {
                    fingerprint(
                        &uplan_convert::convert(source, &text)
                            .unwrap_or_else(|e| panic!("{source:?} fixture does not convert: {e}")),
                    )
                })
                .collect()
        };
        assert_eq!(fp(a.relational(0, 3)), fp(b.relational(0, 3)));
        assert_eq!(fp(vec![a.mongo(1)]), fp(vec![b.mongo(1)]));
        assert_eq!(fp(vec![a.neo4j(2)]), fp(vec![b.neo4j(2)]));
        assert_eq!(DialectFleet::influx(2, 9), DialectFleet::influx(2, 9));
        for (source, text) in a.relational(2, 5).into_iter().chain([
            a.mongo(0),
            a.neo4j(0),
            DialectFleet::influx(1, 7),
        ]) {
            // Every dump-line encoding stays a single sniffable line.
            let line = raw_dump_line(source, &text);
            assert!(!line.contains('\n'), "{source:?} line not single-line");
        }
    }
}
