//! SQLancer-style random schema/data/query generation.
//!
//! Replaces the paper's use of SQLancer as the test-case generator: random
//! schemas, random rows (with NULLs), random predicates covering the plan
//! features the fault catalog gates on (index equality with fractional
//! probes à la Listing 3, negative range bounds, IS NULL residuals, joins
//! with duplicate and NULL keys), and random *database mutations* — the
//! state-change lever QPG pulls when plan novelty stalls.

use minidb::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic generator over a database instance.
pub struct Generator {
    rng: StdRng,
    /// Tables created so far (t0, t1, ...).
    pub tables: Vec<String>,
    index_counter: usize,
}

/// A generated query plus the pieces oracles need.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// Complete SELECT statement.
    pub sql: String,
    /// The FROM clause (tables, optionally with a join).
    pub from: String,
    /// The WHERE predicate (TLP partitions this).
    pub predicate: String,
    /// Whether the FROM contains a join.
    pub has_join: bool,
}

impl Generator {
    /// A generator with a fixed seed.
    pub fn new(seed: u64) -> Generator {
        Generator {
            rng: StdRng::seed_from_u64(seed),
            tables: Vec::new(),
            index_counter: 0,
        }
    }

    /// Creates `n` small tables with two INT columns and NULL-y data.
    pub fn create_schema(&mut self, db: &mut Database, n: usize) {
        for t in 0..n {
            let table = format!("t{t}");
            db.execute(&format!("CREATE TABLE {table} (c0 INT, c1 INT)"))
                .expect("schema creation");
            self.tables.push(table.clone());
            let rows = 20 + self.rng.gen_range(0..30);
            for _ in 0..rows {
                let c0 = self.literal_int();
                let c1 = self.literal_int();
                db.execute(&format!("INSERT INTO {table} VALUES ({c0}, {c1})"))
                    .expect("insert");
            }
            db.execute(&format!("ANALYZE {table}")).expect("analyze");
        }
    }

    fn literal_int(&mut self) -> String {
        match self.rng.gen_range(0..10) {
            0 => "NULL".to_owned(),
            1 => format!("{}", -self.rng.gen_range(1..20)),
            _ => format!("{}", self.rng.gen_range(0..10)),
        }
    }

    /// A random scalar predicate over columns of `alias`.
    pub fn predicate(&mut self, aliases: &[&str]) -> String {
        let depth = self.rng.gen_range(0..2);
        self.predicate_at(aliases, depth)
    }

    fn predicate_at(&mut self, aliases: &[&str], depth: usize) -> String {
        if depth > 0 && self.rng.gen_bool(0.5) {
            let op = if self.rng.gen_bool(0.5) { "AND" } else { "OR" };
            let left = self.predicate_at(aliases, depth - 1);
            let right = self.predicate_at(aliases, depth - 1);
            return format!("({left} {op} {right})");
        }
        let alias = aliases[self.rng.gen_range(0..aliases.len())];
        let column = format!("{alias}.c{}", self.rng.gen_range(0..2));
        match self.rng.gen_range(0..8) {
            // Listing 3's shape: fractional probe behind GREATEST.
            0 => format!(
                "{column} IN (GREATEST(0.{}, 0.{}))",
                self.rng.gen_range(1..5),
                self.rng.gen_range(5..9)
            ),
            // Negative lower bound (fault mysql-113304's gate).
            1 => format!("{column} > -{}", self.rng.gen_range(1..15)),
            2 => format!("{column} IS NULL"),
            3 => format!("{column} IS NOT NULL"),
            4 => format!("{column} = {}", self.rng.gen_range(0..10)),
            5 => format!(
                "{column} BETWEEN {} AND {}",
                self.rng.gen_range(0..5),
                self.rng.gen_range(5..12)
            ),
            6 => format!("NOT ({column} < {})", self.rng.gen_range(0..10)),
            _ => format!("{column} < {}", self.rng.gen_range(0..12)),
        }
    }

    /// A random SELECT over one or two tables.
    pub fn query(&mut self) -> GeneratedQuery {
        let joined = self.tables.len() >= 2 && self.rng.gen_bool(0.5);
        if joined {
            let a = self.rng.gen_range(0..self.tables.len());
            let mut b = self.rng.gen_range(0..self.tables.len());
            if a == b {
                b = (b + 1) % self.tables.len();
            }
            let (ta, tb) = (self.tables[a].clone(), self.tables[b].clone());
            let from = format!("{ta} JOIN {tb} ON {ta}.c0 = {tb}.c0");
            let predicate = self.predicate(&[&ta, &tb]);
            GeneratedQuery {
                sql: format!("SELECT * FROM {from} WHERE {predicate}"),
                from,
                predicate,
                has_join: true,
            }
        } else {
            let t = self.tables[self.rng.gen_range(0..self.tables.len())].clone();
            let predicate = self.predicate(&[&t]);
            GeneratedQuery {
                sql: format!("SELECT * FROM {t} WHERE {predicate}"),
                from: t,
                predicate,
                has_join: false,
            }
        }
    }

    /// Applies one random state mutation — QPG's lever for new plans.
    /// Returns a description of what changed.
    pub fn mutate(&mut self, db: &mut Database) -> String {
        let t = self.tables[self.rng.gen_range(0..self.tables.len())].clone();
        match self.rng.gen_range(0..5) {
            0 => {
                let column = self.rng.gen_range(0..2);
                let name = format!("gi{}", self.index_counter);
                self.index_counter += 1;
                match db.execute(&format!("CREATE INDEX {name} ON {t}(c{column})")) {
                    Ok(_) => format!("CREATE INDEX {name} ON {t}(c{column})"),
                    Err(_) => format!("index on {t} already present"),
                }
            }
            1 => {
                let rows = self.rng.gen_range(1..6);
                for _ in 0..rows {
                    let c0 = self.literal_int();
                    let c1 = self.literal_int();
                    let _ = db.execute(&format!("INSERT INTO {t} VALUES ({c0}, {c1})"));
                }
                format!("INSERT {rows} rows into {t}")
            }
            2 => {
                let set = self.rng.gen_range(0..10);
                let hit = self.rng.gen_range(0..10);
                let _ = db.execute(&format!("UPDATE {t} SET c1 = {set} WHERE c0 = {hit}"));
                format!("UPDATE {t}")
            }
            3 => {
                let hit = self.rng.gen_range(0..10);
                let _ = db.execute(&format!("DELETE FROM {t} WHERE c1 = {hit}"));
                format!("DELETE from {t}")
            }
            _ => {
                let _ = db.execute(&format!("ANALYZE {t}"));
                format!("ANALYZE {t}")
            }
        }
    }

    /// Random integer in `[lo, hi)` (exposed for the harness).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::profile::EngineProfile;

    #[test]
    fn generation_is_deterministic() {
        let queries = |seed| {
            let mut db = Database::new(EngineProfile::Postgres);
            let mut g = Generator::new(seed);
            g.create_schema(&mut db, 2);
            (0..10).map(|_| g.query().sql).collect::<Vec<_>>()
        };
        assert_eq!(queries(7), queries(7));
        assert_ne!(queries(7), queries(8));
    }

    #[test]
    fn generated_queries_parse_and_run() {
        let mut db = Database::new(EngineProfile::Postgres);
        let mut g = Generator::new(42);
        g.create_schema(&mut db, 3);
        for _ in 0..50 {
            let q = g.query();
            db.execute(&q.sql)
                .unwrap_or_else(|e| panic!("{}: {e}", q.sql));
        }
    }

    #[test]
    fn mutations_apply() {
        let mut db = Database::new(EngineProfile::MySql);
        let mut g = Generator::new(1);
        g.create_schema(&mut db, 2);
        for _ in 0..20 {
            let what = g.mutate(&mut db);
            assert!(!what.is_empty());
        }
        // Queries still run after arbitrary mutations.
        for _ in 0..10 {
            let q = g.query();
            db.execute(&q.sql).unwrap();
        }
    }

    #[test]
    fn predicates_cover_fault_gates() {
        let mut g = Generator::new(3);
        g.tables.push("t0".into());
        let mut saw_greatest = false;
        let mut saw_negative = false;
        let mut saw_is_null = false;
        for _ in 0..200 {
            let p = g.predicate(&["t0"]);
            saw_greatest |= p.contains("GREATEST");
            saw_negative |= p.contains("> -");
            saw_is_null |= p.contains("IS NULL");
        }
        assert!(saw_greatest && saw_negative && saw_is_null);
    }
}
