//! The Table V campaign: QPG + CERT over three engines with the full fault
//! catalog armed.
//!
//! The paper ran its revised QPG and CERT for 24 hours against real MySQL,
//! PostgreSQL and TiDB builds and reported 17 unique, previously unknown
//! bugs. Here the same campaign runs against the substrate engines with the
//! Table V fault catalog armed; findings are deduplicated by the fault that
//! fired (campaign accounting — the oracles themselves never see fault
//! identities, only wrong results and bad estimates).

use minidb::faults::{BugId, Oracle};
use minidb::profile::EngineProfile;
use minidb::Database;

use crate::cert::{self, CertConfig};
use crate::generator::Generator;
use crate::qpg::{self, QpgConfig};

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Random seed.
    pub seed: u64,
    /// QPG query budget per engine.
    pub qpg_queries: usize,
    /// CERT query budget per engine.
    pub cert_queries: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xC0FFEE,
            qpg_queries: 400,
            cert_queries: 250,
        }
    }
}

/// One deduplicated campaign finding — a row of paper Table V.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The fault behind the finding.
    pub bug: BugId,
    /// Engine it was found on.
    pub dbms: &'static str,
    /// Detecting method.
    pub found_by: &'static str,
    /// Upstream tracker id (paper Table V).
    pub tracker_id: &'static str,
    /// Paper-reported status.
    pub status: &'static str,
    /// Paper-reported severity.
    pub severity: &'static str,
}

/// A full campaign report.
#[derive(Debug, Default)]
pub struct CampaignReport {
    /// Deduplicated findings in Table V order.
    pub findings: Vec<Finding>,
    /// Total oracle failures before deduplication.
    pub raw_failures: usize,
    /// Distinct plans QPG observed, per engine.
    pub distinct_plans: Vec<(&'static str, usize)>,
}

impl CampaignReport {
    /// Findings detected by a given oracle.
    pub fn by_oracle(&self, oracle: &str) -> usize {
        self.findings
            .iter()
            .filter(|f| f.found_by == oracle)
            .count()
    }
}

/// Runs the Table V campaign.
pub fn run_campaign(config: CampaignConfig) -> CampaignReport {
    let mut report = CampaignReport::default();
    let mut found: std::collections::BTreeSet<BugId> = std::collections::BTreeSet::new();

    for (engine_index, profile) in [
        EngineProfile::MySql,
        EngineProfile::Postgres,
        EngineProfile::TiDb,
    ]
    .into_iter()
    .enumerate()
    {
        // QPG pass.
        let mut db = Database::new(profile);
        db.arm_all_faults();
        let mut generator = Generator::new(config.seed + engine_index as u64);
        generator.create_schema(&mut db, 2);
        let qpg_outcome = qpg::run(
            &mut db,
            &mut generator,
            QpgConfig {
                queries: config.qpg_queries,
                ..QpgConfig::default()
            },
        );
        report.raw_failures += qpg_outcome.failures.len();
        report
            .distinct_plans
            .push((profile.name(), qpg_outcome.distinct_plans));
        // Only wrong-result findings count for QPG; fired faults with no
        // oracle failure are not "found".
        if !qpg_outcome.failures.is_empty() {
            for bug in &qpg_outcome.fired {
                if bug.info().oracle == Oracle::Qpg {
                    found.insert(*bug);
                }
            }
        }

        // CERT pass (fresh database, fresh seed).
        let mut db = Database::new(profile);
        db.arm_all_faults();
        let mut generator = Generator::new(config.seed + 100 + engine_index as u64);
        generator.create_schema(&mut db, 2);
        let cert_outcome = cert::run(
            &mut db,
            &mut generator,
            CertConfig {
                queries: config.cert_queries,
                ..CertConfig::default()
            },
        );
        report.raw_failures += cert_outcome.failures.len();
        if !cert_outcome.failures.is_empty() {
            for bug in BugId::ALL {
                if bug.info().profile == profile && bug.info().oracle == Oracle::Cert {
                    found.insert(bug);
                }
            }
        }
    }

    report.findings = BugId::ALL
        .iter()
        .filter(|b| found.contains(b))
        .map(|b| {
            let info = b.info();
            Finding {
                bug: *b,
                dbms: info.profile.name(),
                found_by: match info.oracle {
                    Oracle::Qpg => "QPG",
                    Oracle::Cert => "CERT",
                },
                tracker_id: info.tracker_id,
                status: info.status.name(),
                severity: info.severity.name(),
            }
        })
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_rediscovers_most_of_table5() {
        let report = run_campaign(CampaignConfig {
            seed: 7,
            qpg_queries: 350,
            cert_queries: 150,
        });
        // The paper found 17; the campaign must rediscover a clear majority
        // (stochastic generation may miss a gate in a short run).
        assert!(
            report.findings.len() >= 12,
            "found only {}: {:?}",
            report.findings.len(),
            report.findings
        );
        assert!(report.by_oracle("QPG") >= 8);
        assert!(report.by_oracle("CERT") >= 3);
        // All three engines contribute.
        for dbms in ["MySQL", "PostgreSQL", "TiDB"] {
            assert!(
                report.findings.iter().any(|f| f.dbms == dbms),
                "no findings for {dbms}"
            );
        }
    }
}
