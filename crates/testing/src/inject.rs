//! Deterministic fault injection for the dirty-fleet hardening contract.
//!
//! Robustness claims are cheap; this module makes them testable. It
//! produces *seeded, reproducible* corruptions of the three artifact
//! kinds the toolchain ingests from the outside world — binary UPLN
//! corpus documents, append-only segment-store directories, and raw
//! mixed-source dumps — so a tier-1 test (and the CI smoke job, at a
//! pinned seed) can drive every mutation through the loaders and assert
//! the hardening contract: **no panic; either a bounded, descriptive
//! error or a salvage whose surviving plans fingerprint-match the
//! originals.**
//!
//! Binary mutations are planned over the document's
//! [`SectionBoundary`] map (header, each checksummed plan block, document
//! end), which is exactly the granularity at which the v3 codec can
//! recover: [`expected_recoverable`] computes, for the mutation classes
//! where the outcome is provably prefix-bounded, the *exact* number of
//! plans a salvage must recover — turning the fuzz-style sweep into a
//! precise oracle.

use std::io;
use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uplan_core::formats::binary::SectionBoundary;
use uplan_corpus::MANIFEST_FILE;

/// One reproducible corruption of a byte document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultMutation {
    /// Cut the document to its first `len` bytes.
    Truncate {
        /// Surviving prefix length.
        len: usize,
    },
    /// Invert one bit.
    BitFlip {
        /// Byte offset of the flipped bit.
        offset: usize,
        /// Bit index, 0–7.
        bit: u8,
    },
    /// Insert foreign bytes, shifting the remainder of the document.
    Splice {
        /// Insertion offset.
        at: usize,
        /// The inserted bytes.
        bytes: Vec<u8>,
    },
    /// Duplicate the byte range `start..end` immediately after itself —
    /// the shape a retried append or a doubled write produces.
    DuplicateBlock {
        /// First duplicated byte.
        start: usize,
        /// One past the last duplicated byte (also the insertion point).
        end: usize,
    },
}

impl FaultMutation {
    /// Applies the mutation to `doc`, returning the corrupted copy.
    /// Offsets beyond the document clamp to its end.
    pub fn apply(&self, doc: &[u8]) -> Vec<u8> {
        match self {
            FaultMutation::Truncate { len } => doc[..(*len).min(doc.len())].to_vec(),
            FaultMutation::BitFlip { offset, bit } => {
                let mut out = doc.to_vec();
                if let Some(byte) = out.get_mut(*offset) {
                    *byte ^= 1 << (bit & 7);
                }
                out
            }
            FaultMutation::Splice { at, bytes } => {
                let at = (*at).min(doc.len());
                let mut out = Vec::with_capacity(doc.len() + bytes.len());
                out.extend_from_slice(&doc[..at]);
                out.extend_from_slice(bytes);
                out.extend_from_slice(&doc[at..]);
                out
            }
            FaultMutation::DuplicateBlock { start, end } => {
                let end = (*end).min(doc.len());
                let start = (*start).min(end);
                let mut out = Vec::with_capacity(doc.len() + (end - start));
                out.extend_from_slice(&doc[..end]);
                out.extend_from_slice(&doc[start..end]);
                out.extend_from_slice(&doc[end..]);
                out
            }
        }
    }

    /// One-line human description (CI log output).
    pub fn describe(&self) -> String {
        match self {
            FaultMutation::Truncate { len } => format!("truncate to {len} bytes"),
            FaultMutation::BitFlip { offset, bit } => {
                format!("flip bit {bit} of byte {offset}")
            }
            FaultMutation::Splice { at, bytes } => {
                format!("splice {} bytes at {at}", bytes.len())
            }
            FaultMutation::DuplicateBlock { start, end } => {
                format!("duplicate bytes {start}..{end}")
            }
        }
    }
}

/// Byte offset of the version varint in a UPLN document (right after the
/// 4-byte magic). A fault here can silently re-route the decoder to a
/// different codec version, so no exact recovery count can be promised.
const VERSION_OFFSET: usize = 4;

/// Truncations at every section boundary of the document — the exact
/// offsets where the v3 codec promises clean prefix recovery.
pub fn truncation_plan(sections: &[SectionBoundary]) -> Vec<FaultMutation> {
    sections
        .iter()
        .map(|s| FaultMutation::Truncate { len: s.end })
        .collect()
}

/// `count` seeded single-bit flips spread over the document.
pub fn bitflip_sweep(doc_len: usize, seed: u64, count: usize) -> Vec<FaultMutation> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| FaultMutation::BitFlip {
            offset: rng.gen_range(0..doc_len.max(1)),
            bit: rng.gen_range(0..8u64) as u8,
        })
        .collect()
}

/// `count` seeded splices of 1–16 foreign bytes at random offsets.
pub fn splice_plan(doc_len: usize, seed: u64, count: usize) -> Vec<FaultMutation> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let len = rng.gen_range(1..17usize);
            FaultMutation::Splice {
                at: rng.gen_range(0..doc_len.max(1) + 1),
                bytes: (0..len).map(|_| rng.gen_range(0..256u64) as u8).collect(),
            }
        })
        .collect()
}

/// A seeded single-bit flip constrained past the header section, where
/// [`expected_recoverable`] is always exact (no version-byte blind spot).
/// `None` when the document has no bytes past its header.
pub fn bitflip_past_header(sections: &[SectionBoundary], seed: u64) -> Option<FaultMutation> {
    let lo = sections.first()?.end;
    let hi = sections.last()?.end;
    if lo >= hi {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    Some(FaultMutation::BitFlip {
        offset: rng.gen_range(lo..hi),
        bit: rng.gen_range(0..8u64) as u8,
    })
}

/// A seeded foreign-byte splice constrained past the header section (same
/// exactness guarantee as [`bitflip_past_header`]).
pub fn splice_past_header(sections: &[SectionBoundary], seed: u64) -> Option<FaultMutation> {
    let lo = sections.first()?.end;
    let hi = sections.last()?.end;
    if lo >= hi {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let len = rng.gen_range(1..17usize);
    Some(FaultMutation::Splice {
        at: rng.gen_range(lo..hi),
        bytes: (0..len).map(|_| rng.gen_range(0..256u64) as u8).collect(),
    })
}

/// One duplication per document section (each block replayed after
/// itself).
pub fn duplicate_block_plan(sections: &[SectionBoundary]) -> Vec<FaultMutation> {
    sections
        .windows(2)
        .map(|pair| FaultMutation::DuplicateBlock {
            start: pair[0].end,
            end: pair[1].end,
        })
        .collect()
}

/// The exact number of plans a salvage of the mutated document must
/// recover, when that number is provable from the section map:
///
/// * **Truncate** — always exact: the cumulative plan count of the last
///   section boundary at or before the cut (a cut mid-section loses that
///   whole section to its checksum/bounds check).
/// * **BitFlip / Splice** — exact everywhere except the version varint
///   (a fault there re-routes the decoder to another codec version with
///   no checksum to catch it): damage before the first boundary voids the
///   header (0 plans), damage inside block *k* is caught by block *k*'s
///   CRC (blocks before *k* survive), damage past the last block only
///   voids the index tail (all plans survive).
/// * **DuplicateBlock** — `None`: a duplicated block re-verifies (it is a
///   byte-exact valid block), so the decoded stream diverges from the
///   original sequence; the harness asserts only the no-panic/bounded
///   -error half of the contract.
pub fn expected_recoverable(sections: &[SectionBoundary], mutation: &FaultMutation) -> Option<u64> {
    let prefix_plans = |offset: usize| {
        sections
            .iter()
            .take_while(|s| s.end <= offset)
            .map(|s| s.plans)
            .max()
            .unwrap_or(0)
    };
    match mutation {
        FaultMutation::Truncate { len } => Some(prefix_plans(*len)),
        FaultMutation::BitFlip { offset, .. } => {
            (*offset != VERSION_OFFSET).then(|| prefix_plans(*offset))
        }
        FaultMutation::Splice { at, .. } => (*at != VERSION_OFFSET).then(|| prefix_plans(*at)),
        FaultMutation::DuplicateBlock { .. } => None,
    }
}

// ---------------------------------------------------------------------------
// Segment-store faults: per-file corruptions of an append-only store
// directory (`manifest.uplm` + `seg-*.upls`). The segment is the store's
// recovery unit — every segment file is CRC-covered end to end (header,
// checksummed plan blocks, index tail) — so a fault inside one file is
// exactly attributable, and [`expected_store_recovery`] turns a per-file
// sweep into a precise salvage oracle.
// ---------------------------------------------------------------------------

/// One reproducible corruption of a segment-store directory: a single
/// store file deleted, or byte-mutated in place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreFault {
    /// Delete one store file outright — a lost write or an unlinked file.
    Delete {
        /// File name relative to the store directory.
        file: String,
    },
    /// Apply a byte [`FaultMutation`] to one store file.
    Mutate {
        /// File name relative to the store directory.
        file: String,
        /// The byte-level corruption.
        mutation: FaultMutation,
    },
}

impl StoreFault {
    /// The store file this fault targets.
    pub fn file(&self) -> &str {
        match self {
            StoreFault::Delete { file } | StoreFault::Mutate { file, .. } => file,
        }
    }

    /// One-line human description (CI log output).
    pub fn describe(&self) -> String {
        match self {
            StoreFault::Delete { file } => format!("delete {file}"),
            StoreFault::Mutate { file, mutation } => {
                format!("{} of {file}", mutation.describe())
            }
        }
    }

    /// Applies the fault to the store at `dir` in place. Faults compose:
    /// applying several in sequence damages several files.
    pub fn apply(&self, dir: &Path) -> io::Result<()> {
        match self {
            StoreFault::Delete { file } => std::fs::remove_file(dir.join(file)),
            StoreFault::Mutate { file, mutation } => {
                let path = dir.join(file);
                let bytes = std::fs::read(&path)?;
                std::fs::write(&path, mutation.apply(&bytes))
            }
        }
    }

    /// Copies the store at `src` into `dst` (replaced if present) and
    /// applies the fault there, leaving `src` pristine.
    pub fn apply_to_copy(&self, src: &Path, dst: &Path) -> io::Result<()> {
        copy_store(src, dst)?;
        self.apply(dst)
    }
}

/// Copies every regular file of the store at `src` into a fresh `dst`
/// (replaced if present).
pub fn copy_store(src: &Path, dst: &Path) -> io::Result<()> {
    match std::fs::remove_dir_all(dst) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    std::fs::create_dir_all(dst)?;
    for (name, _) in store_files(src)? {
        std::fs::copy(src.join(&name), dst.join(&name))?;
    }
    Ok(())
}

/// The store's files — the manifest first (when present), then the
/// segment files in id order — each with its byte length. Deterministic,
/// so seeded planners over the listing are reproducible.
pub fn store_files(dir: &Path) -> io::Result<Vec<(String, u64)>> {
    let mut segments = Vec::new();
    let mut manifest = None;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        let len = entry.metadata()?.len();
        if name == MANIFEST_FILE {
            manifest = Some((name, len));
        } else if name.starts_with("seg-") && name.ends_with(".upls") {
            segments.push((name, len));
        }
    }
    segments.sort_unstable();
    let mut out = Vec::with_capacity(segments.len() + 1);
    out.extend(manifest);
    out.extend(segments);
    Ok(out)
}

/// One seeded single-bit flip per store file. Every byte of a store file
/// is CRC-covered (or is a CRC itself), so each flip voids exactly its
/// file: a segment flip drops that segment, a manifest flip forces the
/// symbol-chain rebuild.
pub fn store_bitflip_plan(dir: &Path, seed: u64) -> io::Result<Vec<StoreFault>> {
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(store_files(dir)?
        .into_iter()
        .map(|(file, len)| StoreFault::Mutate {
            file,
            mutation: FaultMutation::BitFlip {
                offset: rng.gen_range(0..len.max(1)) as usize,
                bit: rng.gen_range(0..8u64) as u8,
            },
        })
        .collect())
}

/// One seeded truncation per store file, each cut to a strict prefix.
/// A store file's self-description trails its data (manifest CRC,
/// segment index tail), so any strict prefix fails to parse whole.
pub fn store_truncate_plan(dir: &Path, seed: u64) -> io::Result<Vec<StoreFault>> {
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(store_files(dir)?
        .into_iter()
        .map(|(file, len)| StoreFault::Mutate {
            file,
            mutation: FaultMutation::Truncate {
                len: rng.gen_range(0..len.max(1)) as usize,
            },
        })
        .collect())
}

/// One deletion per store file.
pub fn store_delete_plan(dir: &Path) -> io::Result<Vec<StoreFault>> {
    Ok(store_files(dir)?
        .into_iter()
        .map(|(file, _)| StoreFault::Delete { file })
        .collect())
}

/// The exact salvage outcome a single [`StoreFault`] must produce, given
/// the store's per-segment plan census `(id, plans)`:
///
/// * **Manifest fault** — the chain rebuilds from segment deltas and
///   every segment survives: all plans recovered, nothing dropped.
/// * **Segment fault** — the segment is the recovery unit, so exactly
///   that segment's plans drop and every other segment survives (the
///   intact manifest decodes each one independently).
///
/// Exact because the planners above only produce faults that genuinely
/// damage their file (a bit flip always changes a CRC-covered byte; a
/// strict-prefix truncation always severs the trailing self-description).
/// The oracle covers **single** faults with the census's segments; for
/// composed faults (e.g. manifest loss *plus* a damaged symbol-carrying
/// segment) recovery cascades and must be asserted by hand.
pub fn expected_store_recovery(census: &[(u32, u64)], fault: &StoreFault) -> StoreRecovery {
    let total: u64 = census.iter().map(|(_, plans)| plans).sum();
    let victim = fault
        .file()
        .strip_prefix("seg-")
        .and_then(|rest| rest.strip_suffix(".upls"))
        .and_then(|id| id.parse::<u32>().ok());
    match victim {
        Some(id) => {
            let dropped: u64 = census
                .iter()
                .filter(|(seg, _)| *seg == id)
                .map(|(_, plans)| plans)
                .sum();
            StoreRecovery {
                manifest_ok: true,
                segments_recovered: census.len() - 1,
                recovered: total - dropped,
                dropped,
                dropped_segment: Some(id),
            }
        }
        None => StoreRecovery {
            manifest_ok: false,
            segments_recovered: census.len(),
            recovered: total,
            dropped: 0,
            dropped_segment: None,
        },
    }
}

/// What [`expected_store_recovery`] promises a salvage must report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreRecovery {
    /// Whether the manifest survives the fault.
    pub manifest_ok: bool,
    /// Segments recovered whole.
    pub segments_recovered: usize,
    /// Plans the salvage must recover.
    pub recovered: u64,
    /// Plans lost with the dropped segment.
    pub dropped: u64,
    /// The dropped segment's id (`None` for a manifest fault).
    pub dropped_segment: Option<u32>,
}

/// The garbage records a dirty fleet actually produces, one per failure
/// stage: an unterminated JSON string (classify: parse), a valid JSON
/// string no dialect claims (classify: detect), a JSON document no
/// dialect claims (classify: detect), and a table fragment that sniffs
/// as TiDB but fails conversion (convert).
pub const GARBAGE_LINES: [&str; 4] = [
    "\"unterminated",
    "\"not a plan of any dialect\"",
    "{\"dirty_fleet_garbage\": true}",
    "\"| id | estRows |\\n\"",
];

/// Injects `count` seeded garbage lines into a JSONL raw dump, returning
/// the dirty dump and the (1-based, ascending) line numbers of the
/// injected lines — the exact error census a lenient ingest must report.
pub fn inject_garbage_lines(dump: &str, seed: u64, count: usize) -> (String, Vec<usize>) {
    let lines: Vec<&str> = dump.lines().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut slots: Vec<usize> = (0..count)
        .map(|_| rng.gen_range(0..lines.len() + 1))
        .collect();
    slots.sort_unstable();

    let mut out = String::with_capacity(dump.len() + count * 32);
    let mut injected = Vec::with_capacity(count);
    let mut line_no = 0usize;
    let mut slot_iter = slots.into_iter().peekable();
    for i in 0..=lines.len() {
        while slot_iter.peek() == Some(&i) {
            slot_iter.next();
            let flavor = GARBAGE_LINES[rng.gen_range(0..GARBAGE_LINES.len())];
            out.push_str(flavor);
            out.push('\n');
            line_no += 1;
            injected.push(line_no);
        }
        if i < lines.len() {
            out.push_str(lines[i]);
            out.push('\n');
            line_no += 1;
        }
    }
    (out, injected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sections() -> Vec<SectionBoundary> {
        vec![
            SectionBoundary { end: 20, plans: 0 },
            SectionBoundary {
                end: 120,
                plans: 256,
            },
            SectionBoundary {
                end: 200,
                plans: 300,
            },
            SectionBoundary {
                end: 240,
                plans: 300,
            },
        ]
    }

    #[test]
    fn mutations_apply_reproducibly() {
        let doc: Vec<u8> = (0..=255).collect();
        assert_eq!(
            FaultMutation::Truncate { len: 10 }.apply(&doc),
            (0..10).collect::<Vec<u8>>()
        );
        let flipped = FaultMutation::BitFlip { offset: 3, bit: 0 }.apply(&doc);
        assert_eq!(flipped[3], 2);
        assert_eq!(flipped.len(), doc.len());
        let spliced = FaultMutation::Splice {
            at: 2,
            bytes: vec![0xAA, 0xBB],
        }
        .apply(&doc);
        assert_eq!(&spliced[..5], &[0, 1, 0xAA, 0xBB, 2]);
        let doubled = FaultMutation::DuplicateBlock { start: 1, end: 3 }.apply(&doc);
        assert_eq!(&doubled[..5], &[0, 1, 2, 1, 2]);
        assert_eq!(doubled.len(), doc.len() + 2);
        // Out-of-range offsets clamp instead of panicking.
        assert_eq!(FaultMutation::Truncate { len: 999 }.apply(&doc), doc);
        assert_eq!(
            FaultMutation::BitFlip {
                offset: 999,
                bit: 1
            }
            .apply(&doc),
            doc
        );
    }

    #[test]
    fn expected_recovery_is_prefix_bounded() {
        let sections = sections();
        let expect = |m: &FaultMutation| expected_recoverable(&sections, m);
        // Truncations: exact at and between boundaries.
        assert_eq!(expect(&FaultMutation::Truncate { len: 240 }), Some(300));
        assert_eq!(expect(&FaultMutation::Truncate { len: 200 }), Some(300));
        assert_eq!(expect(&FaultMutation::Truncate { len: 199 }), Some(256));
        assert_eq!(expect(&FaultMutation::Truncate { len: 120 }), Some(256));
        assert_eq!(expect(&FaultMutation::Truncate { len: 60 }), Some(0));
        assert_eq!(expect(&FaultMutation::Truncate { len: 0 }), Some(0));
        // Flips: header → 0, block k → blocks before k, tail → all.
        let flip = |offset| FaultMutation::BitFlip { offset, bit: 3 };
        assert_eq!(expect(&flip(10)), Some(0));
        assert_eq!(expect(&flip(150)), Some(256));
        assert_eq!(expect(&flip(220)), Some(300));
        // The version byte is the one blind spot.
        assert_eq!(expect(&flip(VERSION_OFFSET)), None);
        // Duplications are never exactly predictable.
        assert_eq!(
            expect(&FaultMutation::DuplicateBlock {
                start: 20,
                end: 120
            }),
            None
        );
    }

    #[test]
    fn plans_cover_every_section() {
        let sections = sections();
        let cuts = truncation_plan(&sections);
        assert_eq!(cuts.len(), 4);
        assert_eq!(cuts[0], FaultMutation::Truncate { len: 20 });
        let dups = duplicate_block_plan(&sections);
        assert_eq!(dups.len(), 3);
        assert_eq!(
            dups[0],
            FaultMutation::DuplicateBlock {
                start: 20,
                end: 120
            }
        );
        let flips = bitflip_sweep(240, 0xF00D, 48);
        assert_eq!(
            flips,
            bitflip_sweep(240, 0xF00D, 48),
            "seeded = reproducible"
        );
        assert_eq!(flips.len(), 48);
        assert!(flips.iter().all(|m| match m {
            FaultMutation::BitFlip { offset, bit } => *offset < 240 && *bit < 8,
            _ => false,
        }));
        // The past-header variants always have an exact expectation.
        for seed in 0..32u64 {
            let flip = bitflip_past_header(&sections, seed).unwrap();
            assert!(expected_recoverable(&sections, &flip).is_some(), "{flip:?}");
            let splice = splice_past_header(&sections, seed).unwrap();
            assert!(
                expected_recoverable(&sections, &splice).is_some(),
                "{splice:?}"
            );
        }
        let splices = splice_plan(240, 0xF00D, 8);
        assert_eq!(splices.len(), 8);
        assert!(splices.iter().all(|m| match m {
            FaultMutation::Splice { at, bytes } => {
                *at <= 240 && !bytes.is_empty() && bytes.len() <= 16
            }
            _ => false,
        }));
    }

    #[test]
    fn store_fault_plans_are_seeded_and_per_file() {
        // A store-shaped directory of synthetic files: listing order,
        // planner determinism and apply semantics need no real store.
        let dir =
            std::env::temp_dir().join(format!("uplan-inject-store-plan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("seg-00001.upls"), vec![0xBBu8; 90]).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), vec![0xAAu8; 40]).unwrap();
        std::fs::write(dir.join("seg-00000.upls"), vec![0xCCu8; 70]).unwrap();
        std::fs::write(dir.join("notes.txt"), b"not a store file").unwrap();

        // Manifest first, then segments by id; foreign files ignored.
        let files = store_files(&dir).unwrap();
        assert_eq!(
            files,
            vec![
                (MANIFEST_FILE.to_owned(), 40),
                ("seg-00000.upls".to_owned(), 70),
                ("seg-00001.upls".to_owned(), 90),
            ]
        );

        // Planners: one fault per file, seeded = reproducible, offsets
        // in range.
        let flips = store_bitflip_plan(&dir, 7).unwrap();
        assert_eq!(flips, store_bitflip_plan(&dir, 7).unwrap());
        assert_eq!(flips.len(), 3);
        for (fault, (file, len)) in flips.iter().zip(&files) {
            assert_eq!(fault.file(), file);
            match fault {
                StoreFault::Mutate {
                    mutation: FaultMutation::BitFlip { offset, bit },
                    ..
                } => assert!((*offset as u64) < *len && *bit < 8),
                other => panic!("unexpected fault {other:?}"),
            }
        }
        let cuts = store_truncate_plan(&dir, 7).unwrap();
        assert_eq!(cuts.len(), 3);
        for (fault, (_, len)) in cuts.iter().zip(&files) {
            match fault {
                StoreFault::Mutate {
                    mutation: FaultMutation::Truncate { len: cut },
                    ..
                } => assert!((*cut as u64) < *len, "strict prefix"),
                other => panic!("unexpected fault {other:?}"),
            }
        }
        let deletes = store_delete_plan(&dir).unwrap();
        assert_eq!(deletes.len(), 3);

        // apply_to_copy leaves the source pristine and damages exactly
        // the targeted file in the copy.
        let copy = dir.with_file_name(format!("uplan-inject-store-copy-{}", std::process::id()));
        deletes[0].apply_to_copy(&dir, &copy).unwrap();
        assert_eq!(store_files(&dir).unwrap(), files);
        assert_eq!(store_files(&copy).unwrap(), files[1..].to_vec());
        flips[1].apply_to_copy(&dir, &copy).unwrap();
        let seg0 = std::fs::read(copy.join("seg-00000.upls")).unwrap();
        assert_eq!(seg0.iter().filter(|b| **b != 0xCC).count(), 1);
        assert_eq!(
            std::fs::read(copy.join(MANIFEST_FILE)).unwrap(),
            vec![0xAAu8; 40]
        );
        assert_eq!(
            flips[1].describe(),
            format!(
                "{} of seg-00000.upls",
                match &flips[1] {
                    StoreFault::Mutate { mutation, .. } => mutation.describe(),
                    _ => unreachable!(),
                }
            )
        );

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&copy);
    }

    #[test]
    fn store_recovery_oracle_is_per_segment_exact() {
        let census = [(0u32, 40u64), (1, 30), (2, 50)];
        let seg = expected_store_recovery(
            &census,
            &StoreFault::Delete {
                file: "seg-00001.upls".into(),
            },
        );
        assert_eq!(
            seg,
            StoreRecovery {
                manifest_ok: true,
                segments_recovered: 2,
                recovered: 90,
                dropped: 30,
                dropped_segment: Some(1),
            }
        );
        let manifest = expected_store_recovery(
            &census,
            &StoreFault::Mutate {
                file: MANIFEST_FILE.into(),
                mutation: FaultMutation::Truncate { len: 3 },
            },
        );
        assert_eq!(
            manifest,
            StoreRecovery {
                manifest_ok: false,
                segments_recovered: 3,
                recovered: 120,
                dropped: 0,
                dropped_segment: None,
            }
        );
    }

    #[test]
    fn garbage_injection_reports_exact_line_numbers() {
        let dump = "line1\nline2\nline3\n";
        let (dirty, injected) = inject_garbage_lines(dump, 42, 5);
        let (again, injected_again) = inject_garbage_lines(dump, 42, 5);
        assert_eq!(dirty, again);
        assert_eq!(injected, injected_again);
        assert_eq!(injected.len(), 5);
        assert_eq!(dirty.lines().count(), 8);
        let lines: Vec<&str> = dirty.lines().collect();
        for (number, line) in lines.iter().enumerate().map(|(i, l)| (i + 1, l)) {
            if injected.contains(&number) {
                assert!(GARBAGE_LINES.contains(line), "line {number}: {line:?}");
            } else {
                assert!(line.starts_with("line"), "line {number}: {line:?}");
            }
        }
    }
}
