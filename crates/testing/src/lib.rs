//! # uplan-testing — QPG, CERT and TLP on unified plans (paper A.1)
//!
//! The paper's headline application: re-implementing Query Plan Guidance
//! (QPG, ICSE'23) and Cardinality Estimation Restriction Testing (CERT,
//! ICSE'24) **DBMS-agnostically**, by processing unified plans instead of
//! engine-specific EXPLAIN output. The pipeline per engine is exactly
//! paper Fig. 2:
//!
//! ```text
//! queries → engine → raw serialized plan → converter → unified plan → QPG/CERT
//! ```
//!
//! * [`pipeline`] — the raw-plan → unified-plan step for each engine profile;
//! * [`generator`] — SQLancer-style random schema/data/query generation;
//! * [`oracles`] — the correctness oracles: Ternary Logic Partitioning,
//!   a NoREC-style unoptimized-rewrite check for joins, and small
//!   aggregate/distinct/union checks;
//! * [`qpg`] — plan-fingerprint-guided generation with database mutation;
//! * [`cert`] — estimated-cardinality monotonicity checking;
//! * [`harness`] — the Table V campaign: all faults armed, both methods,
//!   three engines, deduplicated findings;
//! * [`inject`] — seeded fault injection (byte-level corpus mutations and
//!   raw-dump garbage) backing the dirty-fleet hardening tests;
//! * [`fixtures`] — the shared TPC-H-lite dialect fleet: one source of
//!   "this query, serialized in dialect X" for the raw-fixture CLI, the
//!   conversion-spine tests and the converter benches.

pub mod cert;
pub mod fixtures;
pub mod generator;
pub mod harness;
pub mod inject;
pub mod oracles;
pub mod pipeline;
pub mod qpg;

pub use harness::{run_campaign, CampaignConfig, CampaignReport, Finding};
