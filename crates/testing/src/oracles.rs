//! Correctness oracles: Ternary Logic Partitioning and companions.
//!
//! TLP (Rigger & Su, OOPSLA'20 — the oracle the paper's QPG campaign used)
//! partitions any predicate `p` into its three truth values: a query `Q`
//! must return exactly the bag union of `Q WHERE p`, `Q WHERE NOT p` and
//! `Q WHERE p IS NULL`. The base query runs without a WHERE clause, so it
//! takes the plain scan path; the partitions take (potentially buggy)
//! filtered/indexed paths — any disagreement is a genuine wrong-result bug.
//!
//! The companion oracles cover plan features TLP's shape cannot reach:
//! a NoREC-style *unoptimized rewrite* check for join results, an
//! empty-input aggregate check, and DISTINCT / UNION ALL bag checks.

use minidb::{Database, QueryResult};

/// A wrong-result finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleFailure {
    /// Which oracle fired.
    pub oracle: &'static str,
    /// The offending query.
    pub query: String,
    /// Human-readable discrepancy.
    pub detail: String,
}

/// TLP over `SELECT * FROM {from} WHERE {predicate}`.
///
/// Returns a failure if the three partitions don't reassemble the base bag.
pub fn tlp(db: &mut Database, from: &str, predicate: &str) -> Option<OracleFailure> {
    let base = db.execute(&format!("SELECT * FROM {from}")).ok()?;
    let p = db
        .execute(&format!("SELECT * FROM {from} WHERE {predicate}"))
        .ok()?;
    let not_p = db
        .execute(&format!("SELECT * FROM {from} WHERE NOT ({predicate})"))
        .ok()?;
    let null_p = db
        .execute(&format!("SELECT * FROM {from} WHERE ({predicate}) IS NULL"))
        .ok()?;
    let mut union = p.rows.clone();
    union.extend(not_p.rows.clone());
    union.extend(null_p.rows.clone());
    let combined = QueryResult {
        columns: base.columns.clone(),
        rows: union,
    };
    if combined.same_multiset(&base) {
        None
    } else {
        Some(OracleFailure {
            oracle: "TLP",
            query: format!("SELECT * FROM {from} WHERE {predicate}"),
            detail: format!(
                "base {} rows vs partitions {}+{}+{} rows",
                base.rows.len(),
                p.rows.len(),
                not_p.rows.len(),
                null_p.rows.len()
            ),
        })
    }
}

/// NoREC-style join check: the optimized join must agree with the
/// unoptimizable cross-product + client-side condition evaluation.
///
/// `left`/`right` are table names; the join condition is `left.c0 =
/// right.c0` (the generator's shape). The reference result is computed from
/// two plain scans, so no join-algorithm fault can affect it.
pub fn join_norec(db: &mut Database, left: &str, right: &str) -> Option<OracleFailure> {
    let sql = format!("SELECT * FROM {left} JOIN {right} ON {left}.c0 = {right}.c0");
    let optimized = db.execute(&sql).ok()?;
    let a = db.execute(&format!("SELECT * FROM {left}")).ok()?;
    let b = db.execute(&format!("SELECT * FROM {right}")).ok()?;
    // Reference: nested loops in the oracle itself.
    let mut reference = Vec::new();
    for ra in &a.rows {
        for rb in &b.rows {
            if ra[0].sql_eq(&rb[0]) == Some(true) {
                let mut row = ra.clone();
                row.extend(rb.clone());
                reference.push(row);
            }
        }
    }
    let reference = QueryResult {
        columns: optimized.columns.clone(),
        rows: reference,
    };
    if reference.same_multiset(&optimized) {
        None
    } else {
        Some(OracleFailure {
            oracle: "NoREC-join",
            query: sql,
            detail: format!(
                "optimized join returned {} rows, reference {}",
                optimized.rows.len(),
                reference.rows.len()
            ),
        })
    }
}

/// Empty-input aggregate check: `SUM` over zero rows is NULL, never 0.
pub fn empty_sum(db: &mut Database, table: &str) -> Option<OracleFailure> {
    let sql = format!("SELECT SUM(c0) FROM {table} WHERE c0 < c0");
    let result = db.execute(&sql).ok()?;
    let value = result.rows.first()?.first()?;
    if value.is_null() {
        None
    } else {
        Some(OracleFailure {
            oracle: "empty-SUM",
            query: sql,
            detail: format!("SUM over empty input returned {}", value.render()),
        })
    }
}

/// DISTINCT check against client-side deduplication.
pub fn distinct_check(db: &mut Database, table: &str) -> Option<OracleFailure> {
    let sql = format!("SELECT DISTINCT c0 FROM {table}");
    let distinct = db.execute(&sql).ok()?;
    let all = db.execute(&format!("SELECT c0 FROM {table}")).ok()?;
    let mut seen = std::collections::HashSet::new();
    let mut reference = Vec::new();
    for row in &all.rows {
        let key: Vec<minidb::datum::DatumKey> = row.iter().map(|d| d.group_key()).collect();
        if seen.insert(key) {
            reference.push(row.clone());
        }
    }
    let reference = QueryResult {
        columns: distinct.columns.clone(),
        rows: reference,
    };
    if reference.same_multiset(&distinct) {
        None
    } else {
        Some(OracleFailure {
            oracle: "DISTINCT",
            query: sql,
            detail: format!(
                "DISTINCT returned {} rows, reference {}",
                distinct.rows.len(),
                reference.rows.len()
            ),
        })
    }
}

/// UNION ALL check: `|Q UNION ALL Q| = 2·|Q|`.
pub fn union_all_check(db: &mut Database, table: &str, predicate: &str) -> Option<OracleFailure> {
    let single = db
        .execute(&format!("SELECT c0 FROM {table} WHERE {predicate}"))
        .ok()?;
    let sql = format!(
        "SELECT c0 FROM {table} WHERE {predicate} UNION ALL SELECT c0 FROM {table} WHERE {predicate}"
    );
    let doubled = db.execute(&sql).ok()?;
    if doubled.rows.len() == 2 * single.rows.len() {
        None
    } else {
        Some(OracleFailure {
            oracle: "UNION-ALL",
            query: sql,
            detail: format!(
                "expected {} rows, got {}",
                2 * single.rows.len(),
                doubled.rows.len()
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::faults::BugId;
    use minidb::profile::EngineProfile;

    fn mysql_db() -> Database {
        let mut db = Database::new(EngineProfile::MySql);
        db.execute("CREATE TABLE t0 (c0 INT, c1 INT)").unwrap();
        db.execute("INSERT INTO t0 VALUES (0, 1), (1, NULL), (2, 3), (NULL, 4)")
            .unwrap();
        db
    }

    #[test]
    fn tlp_passes_on_a_healthy_engine() {
        let mut db = mysql_db();
        assert!(tlp(&mut db, "t0", "t0.c0 < 2").is_none());
        assert!(tlp(&mut db, "t0", "t0.c1 IS NULL").is_none());
        assert!(tlp(&mut db, "t0", "t0.c0 IN (GREATEST(0.1, 0.2))").is_none());
    }

    #[test]
    fn tlp_catches_the_listing3_fault() {
        // Paper Listing 3 end to end: the fault needs the index to fire.
        let mut db = mysql_db();
        db.arm_fault(BugId::Mysql113302);
        db.execute("CREATE INDEX i0 ON t0(c1)").unwrap();
        db.execute("INSERT INTO t0(c1, c0) VALUES(0, 1)").unwrap();
        let failure = tlp(&mut db, "t0", "t0.c1 IN (GREATEST(0.1, 0.2))");
        assert!(failure.is_some(), "TLP must catch the indexed lookup bug");
        assert_eq!(failure.unwrap().oracle, "TLP");
        assert_eq!(db.take_fault_log(), vec![BugId::Mysql113302]);
    }

    #[test]
    fn tlp_catches_is_null_index_fault() {
        let mut db = mysql_db();
        db.arm_fault(BugId::Mysql113317);
        db.execute("CREATE INDEX i0 ON t0(c0)").unwrap();
        let failure = tlp(&mut db, "t0", "t0.c0 = 1 AND t0.c1 IS NULL");
        assert!(failure.is_some());
    }

    #[test]
    fn join_norec_catches_null_key_matching() {
        let mut db = mysql_db();
        db.execute("CREATE TABLE t1 (c0 INT, c1 INT)").unwrap();
        db.execute("INSERT INTO t1 VALUES (NULL, 7), (2, 8)")
            .unwrap();
        assert!(join_norec(&mut db, "t0", "t1").is_none(), "healthy first");
        db.arm_fault(BugId::Mysql114204);
        let failure = join_norec(&mut db, "t0", "t1");
        assert!(failure.is_some(), "NULL keys must not join");
    }

    #[test]
    fn empty_sum_catches_zero_instead_of_null() {
        let mut db = Database::new(EngineProfile::TiDb);
        db.execute("CREATE TABLE t0 (c0 INT)").unwrap();
        db.execute("INSERT INTO t0 VALUES (1)").unwrap();
        assert!(empty_sum(&mut db, "t0").is_none());
        db.arm_fault(BugId::Tidb49110);
        assert!(empty_sum(&mut db, "t0").is_some());
    }

    #[test]
    fn distinct_and_union_checks() {
        let mut db = mysql_db();
        assert!(distinct_check(&mut db, "t0").is_none());
        assert!(union_all_check(&mut db, "t0", "c0 < 2").is_none());
        db.arm_fault(BugId::Mysql114217);
        assert!(
            distinct_check(&mut db, "t0").is_some(),
            "NULL group dropped"
        );
        db.clear_faults();
        db.arm_fault(BugId::Mysql114218);
        assert!(union_all_check(&mut db, "t0", "c0 < 2").is_some());
    }
}
