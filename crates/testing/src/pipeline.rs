//! The Fig. 2 pipeline: engine → native serialized plan → unified plan.
//!
//! This is the single place where engine-specific logic survives; QPG and
//! CERT only ever see [`UnifiedPlan`]s. Per profile, the native format is
//! the one the paper's tooling consumed: PostgreSQL text, MySQL JSON, TiDB's
//! table (with fresh random operator suffixes per statement — the converter
//! must strip them), SQLite's EQP text.

use minidb::profile::EngineProfile;
use minidb::Database;
use uplan_convert::{self as convert, Source};
use uplan_core::{Result, UnifiedPlan};

/// Statement counter feeding TiDB's per-statement operator suffixes.
#[derive(Debug, Default)]
pub struct PlanPipeline {
    statements: u32,
}

impl PlanPipeline {
    /// A fresh pipeline.
    pub fn new() -> PlanPipeline {
        PlanPipeline::default()
    }

    /// Plans `sql` on `db`, serializes natively, converts to a unified plan.
    pub fn unified_plan(&mut self, db: &mut Database, sql: &str) -> Result<UnifiedPlan> {
        let plan = db
            .explain(sql)
            .map_err(|e| uplan_core::Error::Semantic(format!("engine: {e}")))?;
        self.statements += 1;
        let (source, raw) = match db.profile() {
            EngineProfile::Postgres => (Source::PostgresText, dialects::postgres::to_text(&plan)),
            EngineProfile::MySql => (Source::MySqlJson, dialects::mysql::to_json(&plan)),
            EngineProfile::TiDb => (
                Source::TidbTable,
                dialects::tidb::to_table(&plan, self.statements * 7),
            ),
            EngineProfile::Sqlite => (Source::SqliteEqp, dialects::sqlite::to_text(&plan)),
        };
        convert::convert(source, &raw)
    }

    /// The root estimated cardinality of a unified plan — what CERT reads.
    ///
    /// Walks from the root until a node carrying a Cardinality `rows`
    /// property appears (distributed wrappers and projections may not carry
    /// estimates).
    pub fn estimated_rows(plan: &UnifiedPlan) -> Option<f64> {
        let mut found = None;
        plan.walk(&mut |node| {
            if found.is_some() {
                return;
            }
            if let Some(p) = node.property("rows") {
                if p.category == uplan_core::PropertyCategory::Cardinality {
                    found = p.value.as_f64();
                }
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(profile: EngineProfile) -> Database {
        let mut db = Database::new(profile);
        db.execute("CREATE TABLE t0 (c0 INT, c1 INT)").unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t0 VALUES ({i}, {})", i % 5))
                .unwrap();
        }
        db
    }

    #[test]
    fn all_profiles_produce_unified_plans() {
        for profile in EngineProfile::ALL {
            let mut db = seeded(profile);
            let mut pipeline = PlanPipeline::new();
            let plan = pipeline
                .unified_plan(&mut db, "SELECT c0 FROM t0 WHERE c0 < 10")
                .unwrap_or_else(|e| panic!("{profile}: {e}"));
            assert!(plan.operation_count() >= 1, "{profile}");
        }
    }

    #[test]
    fn fig2_plans_differ_across_engines_but_unify() {
        // The same query produces different raw plans per engine, yet all
        // of them include a Producer scanning t0 after conversion.
        use uplan_core::OperationCategory;
        for profile in EngineProfile::ALL {
            let mut db = seeded(profile);
            let mut pipeline = PlanPipeline::new();
            let plan = pipeline
                .unified_plan(&mut db, "SELECT * FROM t0 WHERE c0 < 5")
                .unwrap();
            let counts = uplan_core::stats::CategoryCounts::of(&plan);
            assert!(
                counts.get(&OperationCategory::Producer) >= 1,
                "{profile}: {plan:#?}"
            );
        }
    }

    #[test]
    fn tidb_fingerprints_are_stable_across_statements() {
        // Fresh random suffixes each statement; fingerprints must agree.
        let mut db = seeded(EngineProfile::TiDb);
        let mut pipeline = PlanPipeline::new();
        let a = pipeline
            .unified_plan(&mut db, "SELECT c0 FROM t0 WHERE c0 < 10")
            .unwrap();
        let b = pipeline
            .unified_plan(&mut db, "SELECT c0 FROM t0 WHERE c0 < 10")
            .unwrap();
        assert_eq!(
            uplan_core::fingerprint::fingerprint(&a),
            uplan_core::fingerprint::fingerprint(&b)
        );
    }

    #[test]
    fn estimated_rows_are_extracted() {
        let mut db = seeded(EngineProfile::Postgres);
        let mut pipeline = PlanPipeline::new();
        let plan = pipeline
            .unified_plan(&mut db, "SELECT c0 FROM t0 WHERE c0 < 10")
            .unwrap();
        let est = PlanPipeline::estimated_rows(&plan).unwrap();
        assert!(est > 0.0);
    }
}
