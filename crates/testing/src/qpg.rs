//! Query Plan Guidance, DBMS-agnostic (paper A.1).
//!
//! QPG's loop (Ba & Rigger, ICSE'23): generate random queries; observe each
//! query's plan; when no *structurally new* plan has been seen for a window
//! of queries, mutate the database state (add an index, change data) to
//! unlock new plan shapes; check every query with the oracles. The paper's
//! contribution is that "evaluating whether a query plan is structurally
//! different" now happens on **unified plans** — one implementation for
//! every engine, with TiDB's random operator identifiers neutralized by the
//! representation, not by per-DBMS string hacks.
//!
//! Campaign plans are observed through a [`PlanCorpus`] — since the
//! corpus-sharding rework, a fingerprint-prefix-sharded store: fingerprint
//! dedup answers "is this plan exactly new?", and the per-shard TED-metric
//! BK-trees let [`QpgConfig::novelty_radius`] raise the bar to "is this
//! plan unlike anything seen?" — near-duplicate shapes (one index condition
//! swapped, one wrapper inserted) stop resetting the stall window, so the
//! campaign mutates state sooner and spends its query budget on genuinely
//! new coverage. The whole observed corpus comes back in
//! [`QpgOutcome::corpus`] for persistence (`repro corpus campaign`,
//! indexed save → index-free reload) and cross-run diffing; campaign
//! *replays* of persisted observation streams go through the corpus's
//! parallel ingest.

use minidb::faults::BugId;
use minidb::Database;
use uplan_core::fingerprint::FingerprintOptions;
use uplan_corpus::PlanCorpus;

use crate::generator::Generator;
use crate::oracles::{self, OracleFailure};
use crate::pipeline::PlanPipeline;

/// QPG configuration.
#[derive(Debug, Clone, Copy)]
pub struct QpgConfig {
    /// Queries to generate.
    pub queries: usize,
    /// Mutate the database after this many queries without a new plan.
    pub stall_window: usize,
    /// Disable plan guidance (ablation: blind random generation).
    pub guidance: bool,
    /// Fingerprint options (the buggy non-stripping variant reproduces the
    /// original QPG TiDB parser bug).
    pub fingerprints: FingerprintOptions,
    /// Tree-edit-distance radius for novelty: 0 (the default) counts every
    /// fingerprint-new plan as novel; `r > 0` additionally requires the
    /// plan to be more than `r` tree edits from every stored plan before it
    /// resets the stall window.
    pub novelty_radius: u32,
}

impl Default for QpgConfig {
    fn default() -> Self {
        QpgConfig {
            queries: 300,
            stall_window: 12,
            guidance: true,
            fingerprints: FingerprintOptions::default(),
            novelty_radius: 0,
        }
    }
}

/// QPG run outcome.
#[derive(Debug)]
pub struct QpgOutcome {
    /// Oracle failures observed (wrong results).
    pub failures: Vec<OracleFailure>,
    /// Faults that fired (campaign accounting, from the engine's log).
    pub fired: Vec<BugId>,
    /// Distinct plans observed.
    pub distinct_plans: usize,
    /// Database mutations applied.
    pub mutations: usize,
    /// Queries executed.
    pub queries: usize,
    /// Every distinct plan the campaign observed, metric-indexed — save it
    /// with [`PlanCorpus::save`] to persist the campaign's coverage.
    pub corpus: PlanCorpus,
}

/// Runs QPG against a prepared database.
pub fn run(db: &mut Database, generator: &mut Generator, config: QpgConfig) -> QpgOutcome {
    let mut pipeline = PlanPipeline::new();
    let mut corpus = PlanCorpus::with_options(config.fingerprints);
    let mut failures = Vec::new();
    let mut fired = std::collections::BTreeSet::new();
    let mut stall = 0usize;
    let mut mutations = 0usize;

    for i in 0..config.queries {
        let query = generator.query();

        // Observe the plan through the unified pipeline into the corpus.
        if config.guidance {
            if let Ok(plan) = pipeline.unified_plan(db, &query.sql) {
                if corpus.observe_novel(&plan, config.novelty_radius) {
                    stall = 0;
                } else {
                    stall += 1;
                }
            }
            if stall >= config.stall_window {
                generator.mutate(db);
                mutations += 1;
                stall = 0;
            }
        } else if i % 40 == 39 {
            // Ablation: mutate on a fixed schedule instead.
            generator.mutate(db);
            mutations += 1;
        }

        // Oracles.
        let checks = [
            oracles::tlp(db, &query.from, &query.predicate),
            if query.has_join {
                let mut parts = query.from.split(" JOIN ");
                let left = parts.next().unwrap_or_default().to_owned();
                let right = parts
                    .next()
                    .and_then(|r| r.split_whitespace().next())
                    .unwrap_or_default()
                    .to_owned();
                oracles::join_norec(db, &left, &right)
            } else {
                None
            },
            if i % 11 == 0 {
                let table = query
                    .from
                    .split_whitespace()
                    .next()
                    .unwrap_or_default()
                    .to_owned();
                oracles::empty_sum(db, &table)
            } else {
                None
            },
            if i % 13 == 0 {
                let table = query
                    .from
                    .split_whitespace()
                    .next()
                    .unwrap_or_default()
                    .to_owned();
                oracles::distinct_check(db, &table)
            } else {
                None
            },
            if i % 17 == 0 && !query.has_join {
                oracles::union_all_check(db, &query.from, &query.predicate)
            } else {
                None
            },
        ];
        failures.extend(checks.into_iter().flatten());
        fired.extend(db.take_fault_log());
    }

    QpgOutcome {
        failures,
        fired: fired.into_iter().collect(),
        distinct_plans: corpus.len(),
        mutations,
        queries: config.queries,
        corpus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::profile::EngineProfile;

    #[test]
    fn healthy_engines_report_nothing() {
        for profile in [
            EngineProfile::Postgres,
            EngineProfile::MySql,
            EngineProfile::TiDb,
        ] {
            let mut db = Database::new(profile);
            let mut generator = Generator::new(11);
            generator.create_schema(&mut db, 2);
            let outcome = run(
                &mut db,
                &mut generator,
                QpgConfig {
                    queries: 60,
                    ..QpgConfig::default()
                },
            );
            assert!(
                outcome.failures.is_empty(),
                "{profile}: {:?}",
                outcome.failures.first()
            );
            assert!(outcome.distinct_plans > 1);
        }
    }

    #[test]
    fn qpg_finds_mysql_faults() {
        let mut db = Database::new(EngineProfile::MySql);
        db.arm_all_faults();
        let mut generator = Generator::new(23);
        generator.create_schema(&mut db, 2);
        let outcome = run(
            &mut db,
            &mut generator,
            QpgConfig {
                queries: 250,
                ..QpgConfig::default()
            },
        );
        assert!(!outcome.failures.is_empty(), "some oracle must fire");
        assert!(!outcome.fired.is_empty());
        assert!(outcome.mutations > 0, "state mutation is part of QPG");
    }

    #[test]
    fn guidance_observes_distinct_plans() {
        let mut db = Database::new(EngineProfile::TiDb);
        let mut generator = Generator::new(5);
        generator.create_schema(&mut db, 2);
        let outcome = run(
            &mut db,
            &mut generator,
            QpgConfig {
                queries: 80,
                ..QpgConfig::default()
            },
        );
        assert!(outcome.distinct_plans >= 3, "{}", outcome.distinct_plans);
    }

    #[test]
    fn outcome_carries_the_observed_corpus() {
        let mut db = Database::new(EngineProfile::Postgres);
        let mut generator = Generator::new(3);
        generator.create_schema(&mut db, 2);
        let outcome = run(
            &mut db,
            &mut generator,
            QpgConfig {
                queries: 40,
                ..QpgConfig::default()
            },
        );
        assert_eq!(outcome.corpus.len(), outcome.distinct_plans);
        assert!(outcome.corpus.observed() > outcome.corpus.len() as u64);
        // The campaign observes through the sharded store.
        assert!(outcome.corpus.shard_count() > 1);
        // The corpus round-trips through the binary codec, so a campaign
        // can be persisted and resumed.
        let reloaded =
            uplan_corpus::PlanCorpus::from_binary(&outcome.corpus.to_binary().unwrap()).unwrap();
        assert_eq!(reloaded.len(), outcome.corpus.len());
        // Indexed persistence resumes the campaign without re-running a
        // single TED evaluation to rebuild the metric index.
        let resumed =
            uplan_corpus::PlanCorpus::from_binary(&outcome.corpus.to_binary_indexed().unwrap())
                .unwrap();
        assert_eq!(resumed.len(), outcome.corpus.len());
        assert_eq!(resumed.index_evals(), 0);
        assert!(resumed.has_persisted_index());
    }

    #[test]
    fn campaign_replay_through_parallel_ingest_matches_observation() {
        // Re-ingesting a campaign's observation stream in parallel must
        // reproduce the exact corpus the sequential campaign built — the
        // determinism contract QPG fleets rely on when merging per-worker
        // streams.
        let mut db = Database::new(EngineProfile::TiDb);
        let mut generator = Generator::new(41);
        generator.create_schema(&mut db, 2);
        let mut pipeline = crate::pipeline::PlanPipeline::new();
        let mut stream = Vec::new();
        let mut corpus = PlanCorpus::new();
        for _ in 0..60 {
            let query = generator.query();
            if let Ok(plan) = pipeline.unified_plan(&mut db, &query.sql) {
                corpus.observe(&plan);
                stream.push(plan);
            }
        }
        let mut replay = PlanCorpus::new();
        replay.ingest_parallel(&stream, 4);
        assert_eq!(
            replay.to_binary_indexed().unwrap(),
            corpus.to_binary_indexed().unwrap()
        );
    }

    #[test]
    fn novelty_radius_mutates_at_least_as_often() {
        // Near-duplicate plans stop resetting the stall window under a
        // radius, so the campaign can only mutate state more (or equally)
        // often — never less.
        let run_with = |radius: u32| {
            let mut db = Database::new(EngineProfile::Postgres);
            let mut generator = Generator::new(17);
            generator.create_schema(&mut db, 2);
            run(
                &mut db,
                &mut generator,
                QpgConfig {
                    queries: 120,
                    novelty_radius: radius,
                    ..QpgConfig::default()
                },
            )
        };
        let exact = run_with(0);
        let radius = run_with(2);
        assert!(
            radius.mutations >= exact.mutations,
            "radius {} vs exact {}",
            radius.mutations,
            exact.mutations
        );
        // Distinct storage is unaffected by the novelty bar: every
        // fingerprint-new plan is still stored.
        assert!(!radius.corpus.is_empty());
    }

    #[test]
    fn unified_pipeline_neutralizes_tidb_suffixes() {
        // The original QPG implementation parsed TiDB plans with string
        // hacks and was bitten by the random operator suffixes. Through the
        // unified pipeline the converter maps names to unified identifiers,
        // so even the *buggy* fingerprint options (no suffix stripping)
        // observe the same plan count — the representation itself prevents
        // the bug. (The raw-fingerprint divergence is demonstrated in
        // uplan-core's fingerprint tests.)
        let run_with = |strip: bool| {
            let mut db = Database::new(EngineProfile::TiDb);
            let mut generator = Generator::new(9);
            generator.create_schema(&mut db, 2);
            run(
                &mut db,
                &mut generator,
                QpgConfig {
                    queries: 60,
                    fingerprints: FingerprintOptions {
                        strip_numeric_suffixes: strip,
                        ..FingerprintOptions::default()
                    },
                    ..QpgConfig::default()
                },
            )
        };
        let healthy = run_with(true);
        let buggy = run_with(false);
        assert_eq!(buggy.distinct_plans, healthy.distinct_plans);
    }
}
