//! # uplan-viz — generic plan visualization over unified plans (paper A.2)
//!
//! The paper adapted PEV2 (a PostgreSQL-only visualizer) to consume the
//! unified representation, making one tool serve five DBMSs. This crate is
//! the same idea as a library: every renderer consumes **only**
//! [`UnifiedPlan`], so any DBMS with a converter is visualizable:
//!
//! * [`ascii`] — boxed node tree for terminals (the Fig. 3 look);
//! * [`dot`] — Graphviz digraph;
//! * [`svg`] — self-contained SVG;
//! * [`html`] — standalone HTML page with nested, styled nodes;
//! * [`effort`] — the Section A.2 implementation-effort model (24,559 LoC /
//!   188 days vs an 800-line adaptation).

use uplan_core::{PlanNode, PropertyCategory, UnifiedPlan};

/// ASCII rendering: each operation as a `Category→Name` box with its
/// properties, children indented beneath (the Fig. 3 node look).
pub mod ascii {
    use super::*;

    /// Renders the plan as boxed ASCII.
    pub fn render(plan: &UnifiedPlan, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {title} ==\n"));
        if let Some(root) = &plan.root {
            node(root, 0, &mut out);
        }
        for p in &plan.properties {
            out.push_str(&format!("[plan] {}: {}\n", p.identifier, p.value));
        }
        out
    }

    fn node(n: &PlanNode, depth: usize, out: &mut String) {
        let indent = "    ".repeat(depth);
        let label = format!(
            "{}\u{2192}{}",
            n.operation.category.name(),
            n.operation.identifier.as_str().replace('_', " ")
        );
        let props: Vec<String> = n
            .properties
            .iter()
            .filter(|p| p.category != PropertyCategory::Status)
            .take(3)
            .map(|p| format!("{}: {}", p.identifier, p.value))
            .collect();
        let width = label
            .chars()
            .count()
            .max(props.iter().map(|p| p.chars().count()).max().unwrap_or(0))
            + 2;
        out.push_str(&format!("{indent}+{}+\n", "-".repeat(width)));
        out.push_str(&format!("{indent}| {label:<w$}|\n", w = width - 1));
        for p in &props {
            out.push_str(&format!("{indent}| {p:<w$}|\n", w = width - 1));
        }
        out.push_str(&format!("{indent}+{}+\n", "-".repeat(width)));
        for child in &n.children {
            node(child, depth + 1, out);
        }
    }
}

/// Near-duplicate cluster report: renders the outcome of a corpus
/// clustering query (`uplan-corpus`'s greedy leader clustering, or any
/// other grouping of plans) as a text table and a DOT overview, so a
/// campaign's plan population is inspectable at a glance.
///
/// Like every renderer in this crate, the input is engine-agnostic: a
/// cluster is just a leader [`UnifiedPlan`] plus counts, so the report
/// works for any corpus regardless of which converters filled it.
pub mod cluster {
    use super::*;

    /// One cluster as the report consumes it.
    pub struct ClusterView<'a> {
        /// Short stable label (e.g. the leader's plan id or fingerprint).
        pub label: String,
        /// The cluster's representative plan.
        pub leader: &'a UnifiedPlan,
        /// Number of member plans, leader included.
        pub size: usize,
        /// Largest TED distance from the leader to a member.
        pub spread: u32,
    }

    /// A one-line structural summary of a plan: root operation and size.
    fn summary(plan: &UnifiedPlan) -> String {
        match &plan.root {
            Some(root) => format!(
                "{} ({} ops)",
                root.operation.identifier,
                plan.operation_count()
            ),
            None => format!("(no tree, {} plan props)", plan.properties.len()),
        }
    }

    /// Renders the clusters as an aligned text table, largest first.
    pub fn render_text(clusters: &[ClusterView<'_>], title: &str) -> String {
        let mut rows: Vec<&ClusterView> = clusters.iter().collect();
        rows.sort_by(|a, b| b.size.cmp(&a.size).then_with(|| a.label.cmp(&b.label)));
        let members: usize = clusters.iter().map(|c| c.size).sum();
        let mut out = format!(
            "== {title}: {} clusters over {} plans ==\n{:<10} {:>6} {:>7}  representative\n",
            clusters.len(),
            members,
            "cluster",
            "size",
            "spread"
        );
        for c in rows {
            out.push_str(&format!(
                "{:<10} {:>6} {:>7}  {}\n",
                c.label,
                c.size,
                c.spread,
                summary(c.leader)
            ));
        }
        out
    }

    /// Renders the clusters as a DOT digraph: one box per cluster, size
    /// encoded in the peripheries and the label.
    pub fn render_dot(clusters: &[ClusterView<'_>], name: &str) -> String {
        let mut out =
            format!("digraph \"{name}\" {{\n  node [shape=box, fontname=\"monospace\"];\n");
        for (i, c) in clusters.iter().enumerate() {
            let peripheries = if c.size > 1 { 2 } else { 1 };
            out.push_str(&format!(
                "  c{i} [label=\"{}\\n{}\\nsize={} spread={}\", peripheries={peripheries}];\n",
                c.label.replace('"', "\\\""),
                summary(c.leader).replace('"', "\\\""),
                c.size,
                c.spread,
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// Graphviz DOT rendering.
pub mod dot {
    use super::*;

    /// Renders the plan as a `digraph`.
    pub fn render(plan: &UnifiedPlan, name: &str) -> String {
        let mut out = format!(
            "digraph \"{name}\" {{\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n"
        );
        if let Some(root) = &plan.root {
            let mut counter = 0usize;
            node(root, &mut counter, &mut out);
        }
        out.push_str("}\n");
        out
    }

    fn node(n: &PlanNode, counter: &mut usize, out: &mut String) -> usize {
        let id = *counter;
        *counter += 1;
        let mut label = format!(
            "{}\\n{}",
            n.operation.category.name(),
            n.operation.identifier.as_str().replace('_', " ")
        );
        if let Some(rows) = n.property("rows") {
            label.push_str(&format!("\\nrows={}", rows.value));
        }
        out.push_str(&format!("  n{id} [label=\"{label}\"];\n"));
        for child in &n.children {
            let child_id = node(child, counter, out);
            // Data flows child → parent.
            out.push_str(&format!("  n{child_id} -> n{id};\n"));
        }
        id
    }
}

/// SVG rendering: a vertical tree of labelled boxes.
pub mod svg {
    use super::*;

    const BOX_WIDTH: usize = 260;
    const BOX_HEIGHT: usize = 46;
    const GAP_Y: usize = 26;
    const GAP_X: usize = 20;

    /// Renders the plan as a standalone SVG document.
    pub fn render(plan: &UnifiedPlan, title: &str) -> String {
        let mut boxes: Vec<(usize, usize, String, String)> = Vec::new();
        let mut next_x = 0usize;
        if let Some(root) = &plan.root {
            layout(root, 0, &mut next_x, &mut boxes);
        }
        let width = next_x.max(1) * (BOX_WIDTH + GAP_X) + GAP_X;
        let depth = boxes.iter().map(|(_, d, _, _)| *d).max().unwrap_or(0);
        let height = (depth + 1) * (BOX_HEIGHT + GAP_Y) + GAP_Y + 30;
        let mut out = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" font-family=\"monospace\">\n<text x=\"10\" y=\"20\" font-size=\"14\">{}</text>\n",
            escape(title)
        );
        for (slot, depth, label, detail) in &boxes {
            let x = slot * (BOX_WIDTH + GAP_X) + GAP_X;
            let y = depth * (BOX_HEIGHT + GAP_Y) + 30;
            out.push_str(&format!(
                "<rect x=\"{x}\" y=\"{y}\" width=\"{BOX_WIDTH}\" height=\"{BOX_HEIGHT}\" fill=\"#eef\" stroke=\"#336\"/>\n<text x=\"{tx}\" y=\"{ty1}\" font-size=\"12\">{}</text>\n<text x=\"{tx}\" y=\"{ty2}\" font-size=\"10\" fill=\"#555\">{}</text>\n",
                escape(label),
                escape(detail),
                tx = x + 6,
                ty1 = y + 18,
                ty2 = y + 34,
            ));
        }
        out.push_str("</svg>\n");
        out
    }

    fn layout(
        n: &PlanNode,
        depth: usize,
        next_x: &mut usize,
        boxes: &mut Vec<(usize, usize, String, String)>,
    ) -> usize {
        let slot = if n.children.is_empty() {
            let s = *next_x;
            *next_x += 1;
            s
        } else {
            let child_slots: Vec<usize> = n
                .children
                .iter()
                .map(|c| layout(c, depth + 1, next_x, boxes))
                .collect();
            child_slots[0]
        };
        let label = format!(
            "{}\u{2192}{}",
            n.operation.category.name(),
            n.operation.identifier.as_str().replace('_', " ")
        );
        let detail = n
            .property("name_object")
            .map(|p| p.value.to_string())
            .or_else(|| n.property("rows").map(|p| format!("rows={}", p.value)))
            .unwrap_or_default();
        boxes.push((slot, depth, label, detail));
        slot
    }

    fn escape(s: &str) -> String {
        s.replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
    }
}

/// HTML rendering: nested `<div>` boxes with category-colored headers.
pub mod html {
    use super::*;

    /// Renders a standalone HTML page with one section per plan.
    pub fn render(plans: &[(&str, &UnifiedPlan)]) -> String {
        let mut out = String::from(
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>UPlan</title>\n<style>\n\
             body { font-family: monospace; background: #fafafa; }\n\
             .node { border: 1px solid #336; margin: 6px 0 6px 24px; padding: 4px 8px; background: #fff; }\n\
             .cat { font-weight: bold; }\n\
             .cat-Producer { color: #066; } .cat-Join { color: #606; } .cat-Folder { color: #660; }\n\
             .cat-Combinator { color: #036; } .cat-Executor { color: #555; } .cat-Projector { color: #360; }\n\
             .cat-Consumer { color: #900; }\n\
             .prop { color: #777; font-size: 90%; }\n\
             h2 { margin-bottom: 2px; }\n</style></head><body>\n",
        );
        for (title, plan) in plans {
            out.push_str(&format!("<h2>{title}</h2>\n"));
            if let Some(root) = &plan.root {
                node(root, &mut out);
            }
            for p in &plan.properties {
                out.push_str(&format!(
                    "<div class=\"prop\">plan {}: {}</div>\n",
                    p.identifier, p.value
                ));
            }
        }
        out.push_str("</body></html>\n");
        out
    }

    fn node(n: &PlanNode, out: &mut String) {
        let category = n.operation.category.name();
        out.push_str(&format!(
            "<div class=\"node\"><span class=\"cat cat-{category}\">{category}\u{2192}{}</span>",
            n.operation.identifier.as_str().replace('_', " ")
        ));
        for p in n.properties.iter().take(4) {
            out.push_str(&format!(
                "<div class=\"prop\">{}: {}</div>",
                p.identifier, p.value
            ));
        }
        for child in &n.children {
            node(child, out);
        }
        out.push_str("</div>\n");
    }
}

/// The Section A.2 effort model.
///
/// "Developers of PEV2 committed 24,559 lines of code within the 188 days
/// between the initial commit and the first release" → ≈130 LoC/day.
/// Building DBMS-specific tools for *n* DBMSs costs `188·n` days; adapting
/// one tool to UPlan costs `188 + 800/130` days.
pub mod effort {
    /// PEV2 lines of code at first release.
    pub const PEV2_LOC: f64 = 24_559.0;
    /// Days from initial commit to first release.
    pub const PEV2_DAYS: f64 = 188.0;
    /// Lines changed to adapt PEV2 to UPlan (paper measurement).
    pub const ADAPTATION_LOC: f64 = 800.0;

    /// Average development speed (LoC/day).
    pub fn loc_per_day() -> f64 {
        PEV2_LOC / PEV2_DAYS
    }

    /// Days to build `n` DBMS-specific visualizers.
    pub fn specific_tools_days(n: usize) -> f64 {
        PEV2_DAYS * n as f64
    }

    /// Days to build one tool plus a UPlan adaptation.
    pub fn uplan_days() -> f64 {
        PEV2_DAYS + ADAPTATION_LOC / loc_per_day()
    }

    /// Effort reduction for `n` DBMSs (the paper reports ≈80% for n = 5).
    pub fn reduction(n: usize) -> f64 {
        1.0 - uplan_days() / specific_tools_days(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uplan_core::{PlanNode, Property};

    fn sample() -> UnifiedPlan {
        let scan = PlanNode::producer("Full_Table_Scan")
            .with_property(Property::configuration("name_object", "lineitem"))
            .with_property(Property::cardinality("rows", 6000));
        let agg = PlanNode::folder("Hash_Aggregate")
            .with_property(Property::configuration("group_key", "l_returnflag"))
            .with_child(scan);
        UnifiedPlan::with_root(PlanNode::combinator("Sort").with_child(agg))
            .with_plan_property(Property::status("planning_time_ms", 0.2))
    }

    #[test]
    fn ascii_contains_fig3_elements() {
        let text = ascii::render(&sample(), "PostgreSQL q1");
        assert!(text.contains("== PostgreSQL q1 =="));
        assert!(text.contains("Combinator\u{2192}Sort"), "{text}");
        assert!(text.contains("Producer\u{2192}Full Table Scan"), "{text}");
        assert!(text.contains("name_object: lineitem"), "{text}");
        assert!(text.contains("[plan] planning_time_ms"), "{text}");
    }

    #[test]
    fn dot_is_well_formed() {
        let text = dot::render(&sample(), "q1");
        assert!(text.starts_with("digraph \"q1\""));
        assert_eq!(text.matches("[label=").count(), 3);
        assert_eq!(text.matches("->").count(), 2);
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn svg_is_well_formed() {
        let text = svg::render(&sample(), "q1 <PostgreSQL>");
        assert!(text.starts_with("<svg"));
        assert!(text.trim_end().ends_with("</svg>"));
        assert_eq!(text.matches("<rect").count(), 3);
        assert!(text.contains("&lt;PostgreSQL&gt;"), "titles are escaped");
    }

    #[test]
    fn html_renders_multiple_plans() {
        let a = sample();
        let b = sample();
        let page = html::render(&[("PostgreSQL", &a), ("MongoDB", &b)]);
        assert!(page.contains("<h2>PostgreSQL</h2>"));
        assert!(page.contains("<h2>MongoDB</h2>"));
        assert_eq!(page.matches("class=\"node\"").count(), 6);
        assert!(page.contains("cat-Producer"));
    }

    #[test]
    fn effort_model_matches_the_paper() {
        assert!((effort::loc_per_day() - 130.0).abs() < 1.0);
        assert_eq!(effort::specific_tools_days(5), 940.0);
        assert!((effort::uplan_days() - 194.0).abs() < 1.0);
        let reduction = effort::reduction(5);
        assert!(
            (reduction - 0.79).abs() < 0.02,
            "paper reports ~80%, model gives {reduction:.2}"
        );
        // "The percentage of effort reduction would increase as the number
        // of supported DBMSs grows."
        assert!(effort::reduction(9) > effort::reduction(5));
    }

    #[test]
    fn cluster_report_renders_text_and_dot() {
        let join = UnifiedPlan::with_root(
            PlanNode::join("Hash_Join")
                .with_child(PlanNode::producer("Full_Table_Scan"))
                .with_child(PlanNode::producer("Index_Scan")),
        );
        let props_only = UnifiedPlan::properties_only(vec![]);
        let clusters = [
            cluster::ClusterView {
                label: "#0".into(),
                leader: &join,
                size: 5,
                spread: 2,
            },
            cluster::ClusterView {
                label: "#7".into(),
                leader: &props_only,
                size: 1,
                spread: 0,
            },
        ];
        let text = cluster::render_text(&clusters, "campaign");
        assert!(text.contains("2 clusters over 6 plans"), "{text}");
        assert!(text.contains("Hash_Join (3 ops)"), "{text}");
        assert!(text.contains("(no tree, 0 plan props)"), "{text}");
        // Largest cluster first.
        assert!(text.find("#0").unwrap() < text.find("#7").unwrap());
        let dot = cluster::render_dot(&clusters, "campaign");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("size=5 spread=2"), "{dot}");
        assert!(dot.contains("peripheries=2"), "{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn empty_plans_render() {
        let empty = UnifiedPlan::new();
        assert!(ascii::render(&empty, "t").contains("== t =="));
        assert!(dot::render(&empty, "t").contains("digraph"));
        assert!(svg::render(&empty, "t").starts_with("<svg"));
    }

    #[test]
    fn works_on_converted_plans_from_any_dialect() {
        // The A.2 claim: one tool, many DBMSs — renderers only ever see
        // unified plans, so a converted TiDB plan renders like a PG one.
        let tidb_table = "\
+-----------------------+---------+-----------+---------------+---------------+
| id                    | estRows | task      | access object | operator info |
+-----------------------+---------+-----------+---------------+---------------+
| TableReader_7         | 5.00    | root      |               |               |
| └─TableFullScan_5     | 100.00  | cop[tikv] | table:t0      |               |
+-----------------------+---------+-----------+---------------+---------------+
";
        let plan = uplan_convert::convert(uplan_convert::Source::TidbTable, tidb_table).unwrap();
        let text = ascii::render(&plan, "TiDB");
        assert!(text.contains("Executor\u{2192}Collect"), "{text}");
        assert!(text.contains("Producer\u{2192}Full Table Scan"), "{text}");
    }
}
