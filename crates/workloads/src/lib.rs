//! # uplan-workloads — TPC-H-lite, YCSB-lite and WDBench-lite (paper A.3)
//!
//! The benchmarking application compares unified plans across DBMSs over
//! three workloads. These are *lite* editions: same table/collection/graph
//! structure and the same per-query table-reference shapes (which determine
//! the operation census of Tables VI/VII and the Fig. 4 variance), at
//! laptop-friendly scale.
//!
//! * [`tpch`] — the 8 TPC-H tables, a scale-factor data generator, the 22
//!   queries in this workspace's SQL subset, MQL rewrites of q1/q3/q4 for
//!   the document engine, and Cypher-ish rewrites of q1–14, 16–19 for the
//!   graph engine — mirroring the paper's benchmark setup;
//! * [`ycsb`] — point-read/update workload for the document engine;
//! * [`wdbench`] — graph pattern queries for the graph engine.

pub mod tpch;
pub mod wdbench;
pub mod ycsb;
