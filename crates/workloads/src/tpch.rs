//! TPC-H-lite: schema, data generator and the 22 queries.
//!
//! The queries keep the original FROM-clause structure (which tables are
//! referenced how often — the quantity behind the paper's Table VI and
//! Fig. 4) while fitting this workspace's SQL subset. Query 11 keeps its
//! HAVING scalar subquery over the same three tables verbatim, because the
//! paper's §A.3 case analysis (PostgreSQL's six scans vs TiDB's shared
//! three-scan plan, Listing 4) hinges on it.

use minidb::profile::EngineProfile;
use minidb::Database;
use minidoc::{Accumulator, Condition, DocStore, FilterOp, GroupSpec, Request};
use minigraph::{GraphAgg, GraphStore, PatternQuery, PropPredicate, PropValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uplan_core::formats::json::{object, JsonValue};

/// The eight TPC-H tables (lite column subsets, original names).
pub const SCHEMA: &[&str] = &[
    "CREATE TABLE region (r_regionkey INT PRIMARY KEY, r_name TEXT)",
    "CREATE TABLE nation (n_nationkey INT PRIMARY KEY, n_regionkey INT, n_name TEXT)",
    "CREATE TABLE supplier (s_suppkey INT PRIMARY KEY, s_nationkey INT, s_acctbal FLOAT, s_name TEXT)",
    "CREATE TABLE customer (c_custkey INT PRIMARY KEY, c_nationkey INT, c_acctbal FLOAT, c_mktsegment TEXT)",
    "CREATE TABLE part (p_partkey INT PRIMARY KEY, p_size INT, p_retailprice FLOAT, p_type TEXT)",
    "CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT, ps_availqty INT, ps_supplycost FLOAT)",
    "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_custkey INT, o_totalprice FLOAT, o_orderdate DATE, o_orderpriority TEXT)",
    "CREATE TABLE lineitem (l_orderkey INT, l_partkey INT, l_suppkey INT, l_quantity INT, l_extendedprice FLOAT, l_discount FLOAT, l_shipdate DATE, l_returnflag TEXT, l_linestatus TEXT)",
];

/// Secondary indexes the paper's engines would have (keys + join columns).
pub const INDEXES: &[&str] = &[
    "CREATE INDEX idx_ps_partkey ON partsupp(ps_partkey)",
    "CREATE INDEX idx_ps_suppkey ON partsupp(ps_suppkey)",
    "CREATE INDEX idx_l_orderkey ON lineitem(l_orderkey)",
    "CREATE INDEX idx_l_partkey ON lineitem(l_partkey)",
    "CREATE INDEX idx_o_custkey ON orders(o_custkey)",
    "CREATE INDEX idx_s_nationkey ON supplier(s_nationkey)",
    "CREATE INDEX idx_c_nationkey ON customer(c_nationkey)",
    "CREATE INDEX idx_n_regionkey ON nation(n_regionkey)",
];

/// Row counts at `scale` = 1 (multiplied by the scale factor).
const BASE_ROWS: [(&str, usize); 8] = [
    ("region", 5),
    ("nation", 25),
    ("supplier", 20),
    ("customer", 30),
    ("part", 40),
    ("partsupp", 80),
    ("orders", 150),
    ("lineitem", 600),
];

const SEGMENTS: [&str; 3] = ["BUILDING", "AUTOMOBILE", "MACHINERY"];
const FLAGS: [&str; 3] = ["A", "N", "R"];
const PRIORITIES: [&str; 3] = ["1-URGENT", "2-HIGH", "3-MEDIUM"];
const TYPES: [&str; 4] = [
    "ECONOMY BRASS",
    "STANDARD BRASS",
    "PROMO STEEL",
    "SMALL COPPER",
];

/// Loads schema, indexes and data into a relational engine instance.
pub fn load_relational(db: &mut Database, scale: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for ddl in SCHEMA {
        db.execute(ddl).expect("TPC-H DDL");
    }
    let counts: std::collections::HashMap<&str, usize> =
        BASE_ROWS.iter().map(|(t, n)| (*t, n * scale)).collect();
    let date = |rng: &mut StdRng| {
        format!(
            "19{}-{:02}-{:02}",
            92 + rng.gen_range(0..7),
            rng.gen_range(1..13),
            rng.gen_range(1..29)
        )
    };

    let mut batch: Vec<String> = Vec::new();
    let flush = |db: &mut Database, table: &str, batch: &mut Vec<String>| {
        if !batch.is_empty() {
            db.execute(&format!("INSERT INTO {table} VALUES {}", batch.join(",")))
                .expect("TPC-H load");
            batch.clear();
        }
    };

    for i in 0..counts["region"] {
        batch.push(format!("({i}, 'REGION{}')", i % 5));
    }
    flush(db, "region", &mut batch);
    for i in 0..counts["nation"] {
        batch.push(format!(
            "({i}, {}, 'NATION{}')",
            i % counts["region"],
            i % 25
        ));
    }
    flush(db, "nation", &mut batch);
    for i in 0..counts["supplier"] {
        batch.push(format!(
            "({i}, {}, {:.2}, 'Supplier{}')",
            rng.gen_range(0..counts["nation"]),
            rng.gen_range(-100.0..10000.0f64),
            i
        ));
    }
    flush(db, "supplier", &mut batch);
    for i in 0..counts["customer"] {
        batch.push(format!(
            "({i}, {}, {:.2}, '{}')",
            rng.gen_range(0..counts["nation"]),
            rng.gen_range(-100.0..10000.0f64),
            SEGMENTS[rng.gen_range(0..SEGMENTS.len())]
        ));
    }
    flush(db, "customer", &mut batch);
    for i in 0..counts["part"] {
        batch.push(format!(
            "({i}, {}, {:.2}, '{}')",
            rng.gen_range(1..51),
            rng.gen_range(100.0..2000.0f64),
            TYPES[rng.gen_range(0..TYPES.len())]
        ));
    }
    flush(db, "part", &mut batch);
    for i in 0..counts["partsupp"] {
        batch.push(format!(
            "({}, {}, {}, {:.2})",
            i % counts["part"],
            rng.gen_range(0..counts["supplier"]),
            rng.gen_range(1..1000),
            rng.gen_range(1.0..100.0f64)
        ));
    }
    flush(db, "partsupp", &mut batch);
    for i in 0..counts["orders"] {
        batch.push(format!(
            "({i}, {}, {:.2}, '{}', '{}')",
            rng.gen_range(0..counts["customer"]),
            rng.gen_range(100.0..40000.0f64),
            date(&mut rng),
            PRIORITIES[rng.gen_range(0..PRIORITIES.len())]
        ));
        if batch.len() >= 200 {
            flush(db, "orders", &mut batch);
        }
    }
    flush(db, "orders", &mut batch);
    for _ in 0..counts["lineitem"] {
        batch.push(format!(
            "({}, {}, {}, {}, {:.2}, {:.2}, '{}', '{}', '{}')",
            rng.gen_range(0..counts["orders"]),
            rng.gen_range(0..counts["part"]),
            rng.gen_range(0..counts["supplier"]),
            rng.gen_range(1..50),
            rng.gen_range(100.0..5000.0f64),
            rng.gen_range(0.0..0.1f64),
            date(&mut rng),
            FLAGS[rng.gen_range(0..FLAGS.len())],
            if rng.gen_bool(0.5) { "O" } else { "F" }
        ));
        if batch.len() >= 200 {
            flush(db, "lineitem", &mut batch);
        }
    }
    flush(db, "lineitem", &mut batch);
    for ddl in INDEXES {
        db.execute(ddl).expect("TPC-H index");
    }
    db.execute("ANALYZE").expect("TPC-H analyze");
}

/// A fully loaded relational instance.
pub fn relational(profile: EngineProfile, scale: usize) -> Database {
    let mut db = Database::new(profile);
    load_relational(&mut db, scale, 42);
    db
}

/// The 22 TPC-H-lite queries (SQL subset, original FROM structures).
pub fn queries() -> Vec<(&'static str, String)> {
    vec![
        ("q1", "SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), AVG(l_discount), COUNT(*) FROM lineitem WHERE l_shipdate <= '1998-09-02' GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag".into()),
        ("q2", "SELECT s_acctbal, s_name, p_partkey FROM part, supplier, partsupp, nation, region WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND p_size = 15 AND ps_supplycost < (SELECT MIN(ps_supplycost) + 20.0 FROM partsupp, supplier, nation, region WHERE s_suppkey = ps_suppkey AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey) ORDER BY s_acctbal DESC LIMIT 100".into()),
        ("q3", "SELECT l_orderkey, SUM(l_extendedprice), o_orderdate FROM customer, orders, lineitem WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey AND o_orderdate < '1995-03-15' GROUP BY l_orderkey, o_orderdate ORDER BY 2 DESC LIMIT 10".into()),
        ("q4", "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem WHERE l_orderkey = o_orderkey AND o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01' GROUP BY o_orderpriority ORDER BY o_orderpriority".into()),
        ("q5", "SELECT n_name, SUM(l_extendedprice) FROM customer, orders, lineitem, supplier, nation, region WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND o_orderdate >= '1994-01-01' GROUP BY n_name ORDER BY 2 DESC".into()),
        ("q6", "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24".into()),
        ("q7", "SELECT n1.n_name, n2.n_name, SUM(l_extendedprice) FROM supplier, lineitem, orders, customer, nation AS n1, nation AS n2 WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey AND l_shipdate BETWEEN '1995-01-01' AND '1996-12-31' GROUP BY n1.n_name, n2.n_name ORDER BY 3 DESC".into()),
        ("q8", "SELECT o_orderdate, SUM(l_extendedprice) FROM part, supplier, lineitem, orders, customer, nation AS n1, nation AS n2, region WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey AND o_custkey = c_custkey AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey AND s_nationkey = n2.n_nationkey AND p_type = 'ECONOMY BRASS' GROUP BY o_orderdate ORDER BY o_orderdate".into()),
        ("q9", "SELECT n_name, SUM(l_extendedprice) FROM part, supplier, lineitem, partsupp, orders, nation WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey AND p_partkey = l_partkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey AND p_type LIKE '%BRASS%' GROUP BY n_name ORDER BY n_name".into()),
        ("q10", "SELECT c_custkey, SUM(l_extendedprice), n_name FROM customer, orders, lineitem, nation WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND o_orderdate >= '1993-10-01' AND l_returnflag = 'R' AND c_nationkey = n_nationkey GROUP BY c_custkey, n_name ORDER BY 2 DESC LIMIT 20".into()),
        // q11: the §A.3 / Listing 4 query — HAVING scalar subquery over the
        // same three tables.
        ("q11", "SELECT ps_partkey, SUM(ps_supplycost) AS total FROM partsupp, supplier, nation WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey GROUP BY ps_partkey HAVING SUM(ps_supplycost) > (SELECT SUM(ps_supplycost) * 0.0001 FROM partsupp, supplier, nation WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey) ORDER BY total DESC".into()),
        ("q12", "SELECT l_returnflag, COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey AND l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' GROUP BY l_returnflag ORDER BY l_returnflag".into()),
        ("q13", "SELECT c_custkey, COUNT(o_orderkey) FROM customer LEFT JOIN orders ON c_custkey = o_custkey GROUP BY c_custkey ORDER BY 2 DESC LIMIT 50".into()),
        ("q14", "SELECT SUM(l_extendedprice) FROM lineitem, part WHERE l_partkey = p_partkey AND l_shipdate >= '1995-09-01' AND l_shipdate < '1995-10-01'".into()),
        ("q15", "SELECT s_suppkey, s_name, r.revenue FROM supplier, (SELECT l_suppkey AS sk, SUM(l_extendedprice) AS revenue FROM lineitem WHERE l_shipdate >= '1996-01-01' GROUP BY l_suppkey) AS r WHERE s_suppkey = r.sk AND r.revenue > (SELECT AVG(l_extendedprice) FROM lineitem) ORDER BY r.revenue DESC".into()),
        ("q16", "SELECT p_type, p_size, COUNT(ps_suppkey) FROM partsupp, part, supplier WHERE p_partkey = ps_partkey AND ps_suppkey = s_suppkey AND p_size BETWEEN 1 AND 25 GROUP BY p_type, p_size ORDER BY 3 DESC".into()),
        ("q17", "SELECT SUM(l_extendedprice) FROM lineitem, part WHERE p_partkey = l_partkey AND p_type = 'PROMO STEEL' AND l_quantity < (SELECT AVG(l_quantity) FROM lineitem)".into()),
        ("q18", "SELECT c_custkey, o_orderkey, SUM(l_quantity) FROM customer, orders, lineitem WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey GROUP BY c_custkey, o_orderkey HAVING SUM(l_quantity) > 120 ORDER BY 3 DESC LIMIT 100".into()),
        ("q19", "SELECT SUM(l_extendedprice) FROM lineitem, part WHERE p_partkey = l_partkey AND p_size BETWEEN 1 AND 15 AND l_quantity BETWEEN 1 AND 30".into()),
        ("q20", "SELECT s_name, COUNT(*) FROM supplier, nation, partsupp WHERE s_nationkey = n_nationkey AND ps_suppkey = s_suppkey AND ps_availqty > 50 GROUP BY s_name ORDER BY s_name".into()),
        ("q21", "SELECT s_name, COUNT(*) FROM supplier, lineitem, orders, nation WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey AND l_returnflag = 'R' GROUP BY s_name ORDER BY 2 DESC LIMIT 100".into()),
        ("q22", "SELECT c_mktsegment, COUNT(*), SUM(c_acctbal) FROM customer WHERE c_acctbal > (SELECT AVG(c_acctbal) FROM customer WHERE c_acctbal > 0.0) GROUP BY c_mktsegment ORDER BY c_mktsegment".into()),
    ]
}

// ---------------------------------------------------------------------------
// MongoDB rewrites (paper: q1, q3, q4 in MQL over one denormalized document)
// ---------------------------------------------------------------------------

/// Loads the denormalized single-collection model ("we embedded all entities
/// in one document").
pub fn load_document(store: &mut DocStore, scale: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let collection = store.collection_mut("lineitem");
    for i in 0..600 * scale {
        collection.insert(object([
            ("_id", JsonValue::Int(i as i64)),
            (
                "l_returnflag",
                JsonValue::from(FLAGS[rng.gen_range(0..FLAGS.len())]),
            ),
            ("l_quantity", JsonValue::Int(rng.gen_range(1..50))),
            (
                "l_extendedprice",
                JsonValue::Float(rng.gen_range(100.0..5000.0)),
            ),
            (
                "l_shipdate",
                JsonValue::from(format!(
                    "19{}-{:02}-{:02}",
                    92 + rng.gen_range(0..7),
                    rng.gen_range(1..13),
                    rng.gen_range(1..29)
                )),
            ),
            (
                "o_orderdate",
                JsonValue::from(format!(
                    "199{}-{:02}-01",
                    rng.gen_range(2..8),
                    rng.gen_range(1..13)
                )),
            ),
            (
                "o_orderpriority",
                JsonValue::from(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
            ),
            (
                "c_mktsegment",
                JsonValue::from(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
            ),
        ]));
    }
}

/// The paper's three MQL rewrites (q1, q3, q4).
pub fn mongo_queries() -> Vec<(&'static str, Request)> {
    vec![
        (
            "q1",
            Request {
                collection: "lineitem".into(),
                filter: vec![Condition {
                    field: "l_shipdate".into(),
                    op: FilterOp::Lte,
                    value: JsonValue::from("1998-09-02"),
                }],
                projection: Some(vec!["_id".into(), "sum_qty".into(), "count".into()]),
                sort: None,
                limit: None,
                group: Some(GroupSpec {
                    key: Some("l_returnflag".into()),
                    accumulators: vec![
                        ("sum_qty".into(), Accumulator::Sum("l_quantity".into())),
                        ("count".into(), Accumulator::Count),
                    ],
                }),
            },
        ),
        (
            "q3",
            Request {
                collection: "lineitem".into(),
                filter: vec![
                    Condition {
                        field: "c_mktsegment".into(),
                        op: FilterOp::Eq,
                        value: JsonValue::from("BUILDING"),
                    },
                    Condition {
                        field: "o_orderdate".into(),
                        op: FilterOp::Lt,
                        value: JsonValue::from("1995-03-15"),
                    },
                ],
                projection: Some(vec!["_id".into(), "revenue".into()]),
                sort: None,
                limit: None,
                group: Some(GroupSpec {
                    key: Some("o_orderdate".into()),
                    accumulators: vec![(
                        "revenue".into(),
                        Accumulator::Sum("l_extendedprice".into()),
                    )],
                }),
            },
        ),
        (
            "q4",
            Request {
                collection: "lineitem".into(),
                filter: vec![
                    Condition {
                        field: "o_orderdate".into(),
                        op: FilterOp::Gte,
                        value: JsonValue::from("1993-07-01"),
                    },
                    Condition {
                        field: "o_orderdate".into(),
                        op: FilterOp::Lt,
                        value: JsonValue::from("1993-10-01"),
                    },
                ],
                projection: Some(vec!["_id".into(), "count".into()]),
                sort: None,
                limit: None,
                group: Some(GroupSpec {
                    key: Some("o_orderpriority".into()),
                    accumulators: vec![("count".into(), Accumulator::Count)],
                }),
            },
        ),
    ]
}

// ---------------------------------------------------------------------------
// Neo4j rewrites (paper: q1–14, 16–19; nodes = rows, edges = foreign keys)
// ---------------------------------------------------------------------------

/// Loads the TPC-H graph model.
pub fn load_graph(graph: &mut GraphStore, scale: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let customers: Vec<usize> = (0..30 * scale)
        .map(|i| {
            graph.add_node(
                &["Customer"],
                vec![
                    ("custkey", PropValue::Int(i as i64)),
                    (
                        "mktsegment",
                        PropValue::Str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].into()),
                    ),
                ],
            )
        })
        .collect();
    let orders: Vec<usize> = (0..150 * scale)
        .map(|i| {
            graph.add_node(
                &["Order"],
                vec![
                    ("orderkey", PropValue::Int(i as i64)),
                    (
                        "orderdate",
                        PropValue::Str(format!("199{}-01-01", rng.gen_range(2..8))),
                    ),
                    (
                        "orderpriority",
                        PropValue::Str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())].into()),
                    ),
                ],
            )
        })
        .collect();
    let suppliers: Vec<usize> = (0..20 * scale)
        .map(|i| graph.add_node(&["Supplier"], vec![("suppkey", PropValue::Int(i as i64))]))
        .collect();
    for (i, &order) in orders.iter().enumerate() {
        let customer = customers[i % customers.len()];
        graph.add_rel(customer, order, "PLACED", vec![]);
    }
    for i in 0..600 * scale {
        let order = orders[rng.gen_range(0..orders.len())];
        let supplier = suppliers[rng.gen_range(0..suppliers.len())];
        graph.add_rel(
            order,
            supplier,
            "SUPPLIED_BY",
            vec![
                ("quantity", PropValue::Int(rng.gen_range(1..50))),
                (
                    "extendedprice",
                    PropValue::Float(rng.gen_range(100.0..5000.0)),
                ),
                (
                    "returnflag",
                    PropValue::Str(FLAGS[rng.gen_range(0..FLAGS.len())].into()),
                ),
                ("lineno", PropValue::Int(i as i64)),
            ],
        );
    }
}

/// The 18 Cypher-ish rewrites (q1–q14, q16–q19).
pub fn graph_queries() -> Vec<(&'static str, PatternQuery)> {
    let rel_query = |flag: Option<&str>, agg: bool, limit: Option<usize>| {
        let mut q = PatternQuery {
            rel_type: Some("SUPPLIED_BY".into()),
            undirected: false,
            ..PatternQuery::default()
        };
        if let Some(f) = flag {
            q.rel_predicates.push(PropPredicate::Eq(
                "returnflag".into(),
                PropValue::Str(f.into()),
            ));
        }
        if agg {
            q.aggregates = vec![GraphAgg::Count];
        }
        q.limit = limit;
        if limit.is_some() {
            q.order_desc = Some(true);
        }
        q
    };
    let placed = |label: Option<&str>, agg: bool| PatternQuery {
        rel_type: Some("PLACED".into()),
        src_label: label.map(str::to_owned),
        dst_label: Some("Order".into()),
        aggregates: if agg { vec![GraphAgg::Count] } else { vec![] },
        ..PatternQuery::default()
    };
    vec![
        ("q1", rel_query(Some("A"), true, None)),
        (
            "q2",
            PatternQuery {
                src_label: Some("Supplier".into()),
                return_props: vec!["suppkey".into()],
                order_desc: Some(true),
                limit: Some(100),
                ..PatternQuery::default()
            },
        ),
        ("q3", placed(Some("Customer"), true)),
        (
            "q4",
            PatternQuery {
                src_label: Some("Order".into()),
                src_predicates: vec![PropPredicate::Eq(
                    "orderpriority".into(),
                    PropValue::Str("1-URGENT".into()),
                )],
                aggregates: vec![GraphAgg::Count],
                group_by: Some("orderpriority".into()),
                ..PatternQuery::default()
            },
        ),
        ("q5", rel_query(None, true, None)),
        ("q6", rel_query(Some("N"), true, None)),
        ("q7", rel_query(None, false, Some(50))),
        ("q8", rel_query(Some("R"), false, Some(20))),
        ("q9", rel_query(None, false, None)),
        ("q10", placed(Some("Customer"), false)),
        ("q11", rel_query(Some("A"), false, Some(10))),
        ("q12", rel_query(Some("R"), true, None)),
        ("q13", placed(None, true)),
        ("q14", rel_query(None, false, Some(5))),
        (
            "q16",
            PatternQuery {
                src_label: Some("Supplier".into()),
                aggregates: vec![GraphAgg::Count],
                ..PatternQuery::default()
            },
        ),
        ("q17", rel_query(Some("N"), false, Some(1))),
        ("q18", placed(Some("Customer"), false)),
        ("q19", rel_query(Some("A"), false, None)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_loads_and_counts_scale() {
        let db = relational(EngineProfile::Postgres, 1);
        assert_eq!(db.row_count("region"), 5);
        assert_eq!(db.row_count("lineitem"), 600);
        assert_eq!(db.row_count("partsupp"), 80);
    }

    #[test]
    fn all_22_queries_plan_and_run_on_all_profiles() {
        for profile in [
            EngineProfile::Postgres,
            EngineProfile::MySql,
            EngineProfile::TiDb,
            EngineProfile::Sqlite,
        ] {
            let mut db = relational(profile, 1);
            for (name, sql) in queries() {
                let plan = db
                    .explain(&sql)
                    .unwrap_or_else(|e| panic!("{profile} {name}: {e}"));
                assert!(plan.root.node_count() >= 1);
                let result = db
                    .execute(&sql)
                    .unwrap_or_else(|e| panic!("{profile} {name}: {e}"));
                let _ = result;
            }
        }
    }

    #[test]
    fn q1_returns_grouped_rows() {
        let mut db = relational(EngineProfile::Postgres, 1);
        let r = db.execute(&queries()[0].1).unwrap();
        assert!(!r.rows.is_empty());
        assert!(r.rows.len() <= 6, "at most |flags|×|status| groups");
    }

    #[test]
    fn q11_subquery_dedup_reduces_tidb_scans() {
        // The §A.3 case analysis: PostgreSQL plans the HAVING subquery
        // separately (6 table accesses), TiDB shares it (3 accesses).
        let q11 = &queries()[10].1;
        let mut pg = relational(EngineProfile::Postgres, 1);
        let pg_plan = pg.explain(q11).unwrap();
        let pg_scans = pg_plan.root.scan_count()
            + pg_plan
                .subplans
                .iter()
                .map(|s| s.scan_count())
                .sum::<usize>();
        let mut tidb = relational(EngineProfile::TiDb, 1);
        let tidb_plan = tidb.explain(q11).unwrap();
        let tidb_scans = tidb_plan.root.scan_count()
            + tidb_plan
                .subplans
                .iter()
                .map(|s| s.scan_count())
                .sum::<usize>();
        assert_eq!(pg_scans, 6, "paper: six scans in PostgreSQL");
        assert_eq!(tidb_scans, 3, "paper: three scans in TiDB");
        assert!(tidb_plan.subplans.is_empty(), "subquery shared in-pass");
        // And both return the same rows.
        let pg_rows = pg.execute(q11).unwrap();
        let tidb_rows = tidb.execute(q11).unwrap();
        assert!(pg_rows.same_multiset(&tidb_rows));
    }

    #[test]
    fn document_rewrites_run() {
        let mut store = DocStore::new();
        load_document(&mut store, 1, 42);
        for (name, request) in mongo_queries() {
            let (docs, plan) = store.find(&request);
            assert!(!docs.is_empty(), "{name}");
            assert_eq!(
                plan.winning.stage_count(),
                2,
                "{name}: COLLSCAN + PROJECTION"
            );
        }
    }

    #[test]
    fn graph_rewrites_run() {
        let mut graph = GraphStore::new();
        load_graph(&mut graph, 1, 42);
        assert_eq!(graph_queries().len(), 18, "q1–14 and q16–19");
        for (name, query) in graph_queries() {
            let (_, plan) = graph.run(&query);
            assert!(!plan.operators.is_empty(), "{name}");
        }
    }
}
