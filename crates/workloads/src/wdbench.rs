//! WDBench-lite: the Wikidata-style graph query benchmark the paper ran
//! against Neo4j for Table VII.
//!
//! WDBench consists of basic graph patterns (single/multiple triple
//! patterns); the paper's census found relationship-driven plans with *no*
//! Combinator or Folder operations — matching its note that the benchmark
//! "mainly consider\[s\] input diversity instead of internal execution
//! diversity".

use minigraph::{GraphStore, PatternQuery, PropPredicate, PropValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PROPERTIES: [&str; 4] = ["P31", "P279", "P106", "P361"];

/// Loads a Wikidata-ish entity graph.
pub fn load(graph: &mut GraphStore, entities: usize, statements: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes: Vec<usize> = (0..entities)
        .map(|i| {
            graph.add_node(
                &["Entity"],
                vec![
                    ("qid", PropValue::Str(format!("Q{i}"))),
                    ("label", PropValue::Str(format!("entity {i} item"))),
                ],
            )
        })
        .collect();
    for _ in 0..statements {
        let s = nodes[rng.gen_range(0..nodes.len())];
        let o = nodes[rng.gen_range(0..nodes.len())];
        let p = PROPERTIES[rng.gen_range(0..PROPERTIES.len())];
        graph.add_rel(s, o, p, vec![("rank", PropValue::Int(rng.gen_range(0..3)))]);
    }
}

/// Generates `count` basic-graph-pattern queries.
pub fn queries(count: usize, seed: u64) -> Vec<PatternQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut q = PatternQuery {
                rel_type: Some(PROPERTIES[rng.gen_range(0..PROPERTIES.len())].to_owned()),
                undirected: rng.gen_bool(0.3),
                ..PatternQuery::default()
            };
            if rng.gen_bool(0.4) {
                q.rel_predicates.push(PropPredicate::Eq(
                    "rank".into(),
                    PropValue::Int(rng.gen_range(0..3)),
                ));
            }
            if rng.gen_bool(0.3) {
                q.dst_label = Some("Entity".into());
            }
            if rng.gen_bool(0.25) {
                q.limit = Some(rng.gen_range(1..100));
            }
            q
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_run_and_avoid_folder_combinator() {
        let mut graph = GraphStore::new();
        load(&mut graph, 50, 300, 5);
        for query in queries(30, 6) {
            let (_, plan) = graph.run(&query);
            for op in &plan.operators {
                assert_ne!(op.name, "EagerAggregation", "no Folder ops in WDBench");
                assert_ne!(op.name, "Sort", "no Combinator sorts in WDBench");
                assert_ne!(op.name, "Union");
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(queries(5, 9), queries(5, 9));
    }
}
