//! YCSB-lite: the cloud-serving point-read/update workload the paper ran
//! against MongoDB for Table VII.
//!
//! YCSB "mainly consider\[s\] input diversity instead of internal execution
//! diversity": its read operations are `_id` point lookups, whose plans are
//! single `IDHACK` operations — one Producer, nothing else, which is exactly
//! the Table VII MongoDB row (1.00 / 0 / ... / 1.00).

use minidoc::{Condition, DocStore, FilterOp, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uplan_core::formats::json::{object, JsonValue};

/// Loads the `usertable` collection with `records` documents.
pub fn load(store: &mut DocStore, records: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let collection = store.collection_mut("usertable");
    for i in 0..records {
        collection.insert(object([
            ("_id", JsonValue::Int(i as i64)),
            ("field0", JsonValue::Int(rng.gen_range(0..1000))),
            (
                "field1",
                JsonValue::from(format!("value{}", rng.gen_range(0..100))),
            ),
        ]));
    }
    collection.create_index("_id");
}

/// Generates the read requests of a workload-B-like mix (reads dominate;
/// updates don't expose query plans and are not part of the census).
pub fn read_requests(count: usize, records: usize, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| Request {
            collection: "usertable".into(),
            filter: vec![Condition {
                field: "_id".into(),
                op: FilterOp::Eq,
                value: JsonValue::Int(rng.gen_range(0..records as i64)),
            }],
            ..Request::default()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_reads_are_single_op_plans() {
        let mut store = DocStore::new();
        load(&mut store, 100, 1);
        for request in read_requests(20, 100, 2) {
            let (docs, plan) = store.find(&request);
            assert_eq!(docs.len(), 1);
            assert_eq!(plan.winning.stage_count(), 1, "Table VII: one producer");
            assert_eq!(plan.winning.name, "IDHACK");
        }
    }

    #[test]
    fn deterministic_generation() {
        assert_eq!(read_requests(5, 10, 3), read_requests(5, 10, 3));
    }
}
