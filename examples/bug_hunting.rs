//! Bug hunting with QPG + CERT on unified plans (paper A.1, Table V).
//!
//! Arms the Table V fault catalog on the three campaign engines and runs a
//! short QPG/CERT campaign; findings print as Table V rows.
//!
//! ```sh
//! cargo run --example bug_hunting
//! ```

use uplan::testing::{run_campaign, CampaignConfig};

fn main() {
    println!("running the QPG/CERT campaign (3 engines, all faults armed)...\n");
    let report = run_campaign(CampaignConfig {
        seed: 0xBEEF,
        qpg_queries: 400,
        cert_queries: 250,
    });

    println!(
        "{:<12} {:<9} {:<8} {:<10} {:<12}",
        "DBMS", "Found by", "Bug ID", "Status", "Severity"
    );
    for f in &report.findings {
        println!(
            "{:<12} {:<9} {:<8} {:<10} {:<12}",
            f.dbms, f.found_by, f.tracker_id, f.status, f.severity
        );
    }
    println!(
        "\n{} of the 17 catalogued faults rediscovered ({} raw oracle failures before dedup)",
        report.findings.len(),
        report.raw_failures
    );
    for (engine, plans) in &report.distinct_plans {
        println!("distinct unified plans observed on {engine}: {plans}");
    }
}
