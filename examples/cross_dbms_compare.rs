//! Cross-DBMS plan comparison (paper A.3): the TPC-H q11 analysis.
//!
//! Plans the same query on the PostgreSQL- and TiDB-profile engines,
//! converts both to unified plans, counts Producer operations, computes
//! tree similarity, and measures the actual time spent in the subquery's
//! extra scans — the paper's "27% of the overall execution time" insight.
//!
//! ```sh
//! cargo run --example cross_dbms_compare
//! ```

use minidb::profile::EngineProfile;
use uplan::convert::{convert, Source};
use uplan::core::stats::CategoryCounts;
use uplan::core::OperationCategory;
use uplan::workloads::tpch;

fn main() {
    let q11 = &tpch::queries()[10].1;
    println!("TPC-H q11:\n  {q11}\n");

    let mut unified_plans = Vec::new();
    for profile in [EngineProfile::Postgres, EngineProfile::TiDb] {
        let mut db = tpch::relational(profile, 2);
        let plan = db.explain(q11).unwrap();
        let scans =
            plan.root.scan_count() + plan.subplans.iter().map(|s| s.scan_count()).sum::<usize>();
        let (source, raw) = match profile {
            EngineProfile::Postgres => (Source::PostgresText, dialects::postgres::to_text(&plan)),
            _ => (Source::TidbTable, dialects::tidb::to_table(&plan, 11)),
        };
        let unified = convert(source, &raw).unwrap();
        let counts = CategoryCounts::of(&unified);
        println!(
            "{profile}: {scans} table scans, {} Producer ops, {} total ops",
            counts.get(&OperationCategory::Producer),
            counts.total()
        );
        print!("{}", uplan::core::display::to_display(&unified));
        println!();
        unified_plans.push(unified);
    }

    let similarity = uplan::core::ted::similarity(&unified_plans[0], &unified_plans[1]);
    println!("tree similarity (PostgreSQL vs TiDB): {similarity:.2}");

    // The paper's quantitative estimate: time spent in the subquery's scans.
    let mut pg = tpch::relational(EngineProfile::Postgres, 4);
    let (plan, _) = pg.explain_analyze(q11).unwrap();
    let total = plan.execution_time_ms.unwrap_or(0.0);
    let mut subquery_scan_time = 0.0;
    for sub in &plan.subplans {
        sub.walk(&mut |n| {
            if n.op.scanned_table().is_some() {
                subquery_scan_time += n.actual.map_or(0.0, |a| a.time_ms);
            }
        });
    }
    if total > 0.0 {
        println!(
            "PostgreSQL EXPLAIN ANALYZE: {total:.2} ms total; subquery scans {subquery_scan_time:.2} ms ({:.0}%) — avoidable with plan sharing (paper: 27%)",
            100.0 * subquery_scan_time / total
        );
    }
}
