//! Quickstart: the paper's Fig. 2 pipeline in a dozen lines.
//!
//! Run a query on three emulated engines, serialize each native plan the
//! way the real DBMS would, convert every one into the unified
//! representation, and process them with a single implementation.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use minidb::profile::EngineProfile;
use minidb::Database;
use uplan::convert::{convert, Source};
use uplan::core::fingerprint::fingerprint;

fn main() {
    for profile in [
        EngineProfile::Postgres,
        EngineProfile::MySql,
        EngineProfile::TiDb,
    ] {
        // An engine with a small table.
        let mut db = Database::new(profile);
        db.execute("CREATE TABLE t0 (c0 INT)").unwrap();
        for i in 0..100 {
            db.execute(&format!("INSERT INTO t0 VALUES ({i})")).unwrap();
        }

        // The engine-specific part: EXPLAIN in the engine's native format.
        let plan = db.explain("SELECT * FROM t0 WHERE c0 < 5").unwrap();
        let (source, raw) = match profile {
            EngineProfile::Postgres => (Source::PostgresText, dialects::postgres::to_text(&plan)),
            EngineProfile::MySql => (Source::MySqlTable, dialects::mysql::to_table(&plan)),
            _ => (Source::TidbTable, dialects::tidb::to_table(&plan, 4)),
        };
        println!("---- {profile}: raw serialized plan ----\n{raw}");

        // The DBMS-agnostic part: one converter call, then any processing.
        let unified = convert(source, &raw).unwrap();
        println!("---- {profile}: unified plan ----");
        print!("{}", uplan::core::display::to_display(&unified));
        println!(
            "strict grammar form: {}",
            uplan::core::text::to_text(&unified)
        );
        println!("fingerprint: {}\n", fingerprint(&unified));
    }
}
